"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison (visible with ``pytest -s``); assertions pin
the reproduction targets so a silent regression fails the bench run.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tables import render_table


def report(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print one comparison table."""
    print()
    print(render_table(headers, rows, title=title))
