"""Ablation: what drives the Table 2 optima.

Removes the memory bound and sweeps the effective collective bandwidth to
show which constraint produces which row of Table 2: LLM2's symmetric
optimum is memory-forced; LLM1's extreme asymmetry is communication-
driven and strengthens as bandwidth tightens.
"""

import pytest

import repro.ml.parallelism as parallelism
from repro.ml.models import LLM_ZOO
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import SliceShapeSearch

from .conftest import report


def run_ablation():
    out = {}
    # 1. Memory bound removed (weights fully shardable over data).
    original = parallelism.WEIGHT_SHARD_BYTES_PER_PARAM
    parallelism.WEIGHT_SHARD_BYTES_PER_PARAM = 0.01
    try:
        search = SliceShapeSearch(TrainingStepModel())
        out["no_memory_bound"] = {
            k: search.search(LLM_ZOO[k]).best_shape for k in LLM_ZOO
        }
    finally:
        parallelism.WEIGHT_SHARD_BYTES_PER_PARAM = original
    # 2. Bandwidth sweep with the memory bound back in place.
    out["bw_sweep"] = {}
    for bw in (0.5, 1.0, 4.0):
        search = SliceShapeSearch(TrainingStepModel(link_gbytes_per_s=bw))
        result = search.search(LLM_ZOO["llm1"])
        out["bw_sweep"][bw] = (result.best_shape, result.speedup_vs_baseline)
    return out


def test_bench_ablation_shape_search(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report(
        "Ablation: optima without the HBM memory bound",
        ["model", "with bound (Table 2)", "without bound"],
        [
            ["LLM0", "8x16x32", "x".join(map(str, results["no_memory_bound"]["llm0"]))],
            ["LLM1", "4x4x256", "x".join(map(str, results["no_memory_bound"]["llm1"]))],
            ["LLM2", "16x16x16", "x".join(map(str, results["no_memory_bound"]["llm2"]))],
        ],
    )
    report(
        "Ablation: LLM1 vs effective collective bandwidth",
        ["bandwidth (GB/s)", "optimal shape", "speedup vs 16^3"],
        [
            [f"{bw:g}", "x".join(map(str, shape)), f"{speedup:.2f}x"]
            for bw, (shape, speedup) in sorted(results["bw_sweep"].items())
        ],
    )
    # LLM2's 16x16x16 is memory-forced: without the bound it collapses to
    # a smaller tensor dimension like the others.
    assert results["no_memory_bound"]["llm2"][0] < 16
    # LLM1 keeps its asymmetric optimum across the bandwidth sweep, and
    # the speedup grows as communication tightens.
    speedups = [s for _, (_, s) in sorted(results["bw_sweep"].items())]
    assert speedups == sorted(speedups, reverse=True)
    for _, (shape, _) in results["bw_sweep"].items():
        assert shape[0] == 4
