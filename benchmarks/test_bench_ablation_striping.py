"""Ablation: trunk striping and the single-OCS blast radius.

§3.2.2 calls out the OCSes' "large blast radius" as the reason for deep
control/monitoring integration.  This ablation quantifies the placement
half of that story on a 64-AB spine-free fabric: packing trunks OCS by
OCS leaves some pair losing *all* its capacity to one failure, while
round-robin striping bounds any pair's loss to one trunk per OCS.
"""

import numpy as np
import pytest

from repro.dcn.spinefree import uniform_mesh_trunks
from repro.dcn.striping import (
    blast_radius_comparison,
    packed_striping,
    round_robin_striping,
)

from .conftest import report

NUM_BLOCKS = 16
UPLINKS = 60  # 4 trunks per peer pair
NUM_OCSES = 16
OCS_PORTS = 32


def run_ablation():
    trunks = uniform_mesh_trunks(NUM_BLOCKS, UPLINKS)
    radii = blast_radius_comparison(trunks, NUM_OCSES, OCS_PORTS)
    striped = round_robin_striping(trunks, NUM_OCSES, OCS_PORTS)
    packed = packed_striping(trunks, NUM_OCSES, OCS_PORTS)
    loads = {
        "striped": [striped.trunks_on_ocs(o) for o in range(NUM_OCSES)],
        "packed": [packed.trunks_on_ocs(o) for o in range(NUM_OCSES)],
    }
    return radii, loads


def test_bench_ablation_striping(benchmark):
    radii, loads = benchmark(run_ablation)
    report(
        "Ablation: worst pair capacity loss under one OCS failure",
        ["placement", "worst-pair loss", "max OCS load", "min OCS load"],
        [
            [
                scheme,
                f"{radii[scheme]:.0%}",
                max(loads[scheme]),
                min(loads[scheme]),
            ]
            for scheme in ("packed", "striped")
        ],
    )
    assert radii["packed"] == 1.0  # some pair dies entirely
    assert radii["striped"] <= 0.26  # 4 trunks/pair spread over the fleet
    # Striping also balances the fleet load.
    assert max(loads["striped"]) - min(loads["striped"]) <= max(
        loads["packed"]
    ) - min(loads["packed"])
