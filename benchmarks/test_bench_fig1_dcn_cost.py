"""Fig 1 / §2.1: spine-free DCN saves ~30% CapEx and ~41% power.

Workload: a 64-AB fabric with 64 uplinks per block; the Clos baseline
uses 16 spine blocks.  Regenerates the headline savings of the evolved
(Fig 1b) architecture over the traditional (Fig 1a) one.
"""

import pytest

from repro.dcn.blocks import AggregationBlock
from repro.dcn.clos import ClosFabric
from repro.dcn.costmodel import DcnCostModel
from repro.dcn.spinefree import SpineFreeFabric

from .conftest import report

PAPER_CAPEX_SAVING = 0.30
PAPER_POWER_SAVING = 0.41


def build_and_compare():
    blocks = [AggregationBlock(i, uplinks=64) for i in range(64)]
    clos = ClosFabric(blocks, num_spines=16)
    spinefree = SpineFreeFabric.uniform(blocks)
    return DcnCostModel().savings(clos, spinefree)


def test_bench_fig1_dcn_cost(benchmark):
    savings = benchmark(build_and_compare)
    report(
        "Fig 1: spine-full Clos vs spine-free lightwave DCN",
        ["metric", "paper", "measured"],
        [
            ["CapEx saving", f"{PAPER_CAPEX_SAVING:.0%}", f"{savings['capex_saving']:.1%}"],
            ["Power saving", f"{PAPER_POWER_SAVING:.0%}", f"{savings['power_saving']:.1%}"],
        ],
    )
    assert savings["capex_saving"] == pytest.approx(PAPER_CAPEX_SAVING, abs=0.02)
    assert savings["power_saving"] == pytest.approx(PAPER_POWER_SAVING, abs=0.02)
