"""Fig 8 / Fig 9: the WDM transceiver roadmap and the custom bidi modules.

Workload: walk the generation registry from 40G QSFP+ to 800G OSFP,
verifying the paper's 20x aggregate-bandwidth growth with improving
energy efficiency, plus backward compatibility along the chain and the
bidi modules' fiber economics.
"""

import pytest

from repro.optics.transceiver import (
    TRANSCEIVER_GENERATIONS,
    bandwidth_growth_factor,
    interoperable,
    transceiver,
)

from .conftest import report

DUPLEX_CHAIN = ("qsfp_40g", "qsfp28_100g", "qsfp56_200g", "osfp_400g", "osfp_800g")
BIDI_MODULES = ("bidi_dcn_cwdm4", "bidi_2x400g_cwdm4", "bidi_800g_cwdm8")


def collect_roadmap():
    rows = []
    for key in DUPLEX_CHAIN + BIDI_MODULES:
        spec = transceiver(key)
        rows.append(
            [
                spec.name,
                spec.year,
                f"{spec.max_rate_gbps:g}G",
                f"{spec.grid.name} x{spec.lanes}",
                f"{spec.energy_pj_per_bit:.1f} pJ/b",
                spec.fibers_per_module,
            ]
        )
    return rows


def test_bench_fig8_roadmap(benchmark):
    rows = benchmark(collect_roadmap)
    report(
        "Fig 8/9: WDM transceiver roadmap (paper: 20x growth, better pJ/bit)",
        ["module", "year", "rate", "grid", "efficiency", "fibers"],
        rows,
    )
    # 20x aggregate bandwidth growth over the roadmap.
    assert bandwidth_growth_factor() == pytest.approx(20.0)
    # Monotone energy-efficiency improvement along the duplex chain.
    eff = [transceiver(k).energy_pj_per_bit for k in DUPLEX_CHAIN]
    assert eff == sorted(eff, reverse=True)
    # §3.3.1 backward compatibility: adjacent generations interoperate.
    for a, b in zip(DUPLEX_CHAIN[1:], DUPLEX_CHAIN[2:]):
        assert interoperable(transceiver(a), transceiver(b))
    # Fig 9: the CWDM8 bidi module needs a single fiber per 800G link --
    # a quarter of the duplex 2xCWDM4 module's plant.
    assert transceiver("bidi_800g_cwdm8").fibers_per_module == 1
    assert transceiver("osfp_800g").fibers_per_module == 4
