"""Fig 10: Palomar OCS insertion-loss histogram and return loss.

Workload: fabricate one Palomar OCS and sample all 136x136 = 18,496
cross-connection insertion losses (Fig 10a) plus the 136 per-port return
losses (Fig 10b).
"""

import numpy as np
import pytest

from repro.analysis.histogram import ascii_histogram
from repro.ocs.optics_model import (
    INSERTION_LOSS_MAX_DB,
    RETURN_LOSS_SPEC_DB,
    summarize_insertion_loss,
)
from repro.ocs.palomar import PalomarOcs

from .conftest import report


def sample_ocs_optics():
    ocs = PalomarOcs.build(seed=42)
    return ocs.insertion_loss_matrix_db(), ocs.return_loss_profile_db()


def test_bench_fig10_ocs_optics(benchmark):
    insertion, return_loss = benchmark(sample_ocs_optics)
    summary = summarize_insertion_loss(insertion)
    report(
        "Fig 10a: insertion loss across all 136x136 paths",
        ["metric", "paper", "measured"],
        [
            ["typical (median)", "< 2 dB", f"{summary['median_db']:.2f} dB"],
            ["fraction < 2 dB", "most", f"{summary['fraction_below_2db']:.1%}"],
            ["tail (p99)", "~3 dB", f"{summary['p99_db']:.2f} dB"],
        ],
    )
    print()
    print("Insertion-loss histogram (dB):")
    print(ascii_histogram(insertion.ravel(), bins=14, fmt="{:5.2f}"))
    report(
        "Fig 10b: return loss per port",
        ["metric", "paper", "measured"],
        [
            ["typical", "-46 dB", f"{np.median(return_loss):.1f} dB"],
            ["spec", "<= -38 dB", f"worst {return_loss.max():.1f} dB"],
        ],
    )
    assert summary["median_db"] < 2.0
    assert summary["fraction_below_2db"] > 0.7
    assert summary["max_db"] < INSERTION_LOSS_MAX_DB + 1.0
    assert np.median(return_loss) == pytest.approx(-46.0, abs=1.5)
    assert np.all(return_loss <= RETURN_LOSS_SPEC_DB)
