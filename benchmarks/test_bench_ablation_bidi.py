"""Ablation: what the bidirectional transceivers actually buy.

Sweeps the transceiver technology (duplex CWDM4 -> bidi CWDM4 -> bidi
CWDM8) and stacks up every consequence the paper attributes to bidi
operation: OCS count, fabric availability, deployment hardware, and the
Table 1 cost structure.
"""

import pytest

from repro.availability.model import TRANSCEIVER_TECHS, fabric_availability
from repro.optics.transceiver import transceiver
from repro.tpu.costmodel import FabricCostModel, NUM_CONNECTIONS

from .conftest import report


def run_ablation():
    rows = []
    for key, label, module_key in (
        ("cwdm4_duplex", "CWDM4 duplex", "osfp_800g"),
        ("cwdm4_bidi", "CWDM4 bidi", "bidi_2x400g_cwdm4"),
        ("cwdm8_bidi", "CWDM8 bidi", "bidi_800g_cwdm8"),
    ):
        tech = TRANSCEIVER_TECHS[key]
        spec = transceiver(module_key)
        ocses = tech.num_ocses
        rows.append(
            {
                "label": label,
                "strands": tech.strands_per_connection,
                "ocses": ocses,
                "availability": fabric_availability(ocses, 0.999),
                "fibers": NUM_CONNECTIONS * tech.strands_per_connection,
                "circulators": spec.num_circulators,
            }
        )
    return rows


def test_bench_ablation_bidi(benchmark):
    rows = benchmark(run_ablation)
    model = FabricCostModel()
    ocs_cost = {r["label"]: r["ocses"] * model.ocs_cost_usd / 1e6 for r in rows}
    report(
        "Ablation: transceiver technology stack-up (full 64-cube pod)",
        ["technology", "strands/conn", "OCSes", "fibers", "fabric avail", "OCS CapEx"],
        [
            [
                r["label"],
                r["strands"],
                r["ocses"],
                r["fibers"],
                f"{r['availability']:.1%}",
                f"${ocs_cost[r['label']]:.2f}M",
            ]
            for r in rows
        ],
    )
    duplex, bidi4, bidi8 = rows
    # Each halving of strands halves OCSes and fibers...
    assert duplex["ocses"] == 2 * bidi4["ocses"] == 4 * bidi8["ocses"]
    assert duplex["fibers"] == 2 * bidi4["fibers"] == 4 * bidi8["fibers"]
    # ...and monotonically raises fabric availability.
    assert duplex["availability"] < bidi4["availability"] < bidi8["availability"]
    # The bidi modules carry the circulators that make it possible.
    assert duplex["circulators"] == 0
    assert bidi4["circulators"] == 2 and bidi8["circulators"] == 1
