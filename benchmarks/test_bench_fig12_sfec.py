"""Fig 12: concatenated soft-decision FEC sensitivity gain.

Workload: the 50G PAM4 lane without OIM, under two MPI conditions; the
inner soft FEC relaxes the slicer BER the KP4 outer code needs, buying
receiver sensitivity.  Paper headline: 1.6 dB at MPI = -32 dB.
"""

import pytest

from repro.optics.ber import LinkBerSimulator
from repro.optics.fec import KP4_BER_THRESHOLD, ConcatenatedFec

from .conftest import report

PAPER_GAIN_DB = 1.6


def run_fig12():
    sim = LinkBerSimulator()
    return {
        -36.0: sim.sfec_sensitivity_gain_db(-36.0),
        -32.0: sim.sfec_sensitivity_gain_db(-32.0),
    }, sim.fec


def test_bench_fig12_sfec(benchmark):
    gains, fec = benchmark(run_fig12)
    report(
        "Fig 12: receiver sensitivity improvement from concatenated SFEC",
        ["MPI condition", "paper", "measured"],
        [
            ["-36 dB", "~1.4 dB", f"{gains[-36.0]:.2f} dB"],
            ["-32 dB", f"{PAPER_GAIN_DB:.1f} dB", f"{gains[-32.0]:.2f} dB"],
        ],
    )
    report(
        "Inner soft FEC properties",
        ["property", "paper", "measured"],
        [
            ["latency", "< 20 ns @ 200G", f"{fec.inner.latency_ns:.0f} ns"],
            ["relaxed slicer BER", "-", f"{fec.inner_input_threshold():.2e}"],
            ["KP4-only threshold", "2e-4", f"{KP4_BER_THRESHOLD:.0e}"],
        ],
    )
    assert gains[-32.0] == pytest.approx(PAPER_GAIN_DB, abs=0.5)
    assert gains[-32.0] > gains[-36.0] > 0.8
    assert fec.inner.latency_ns < 20.0
