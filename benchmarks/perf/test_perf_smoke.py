"""Smoke tests for the perf harness: every case builds, runs, and the
vectorized kernel matches its scalar oracle within the 1e-12 contract.

Wall-time regression checking is deliberately left to the CLI
(``python -m benchmarks.perf.run --smoke --check``) so this test stays
deterministic under pytest; here we only pin numerical parity and the
report/baseline plumbing.
"""

import json

import pytest

from benchmarks.perf.cases import CASES
from benchmarks.perf.harness import (
    check_against_baselines,
    filter_cases,
    load_baselines,
    write_report,
)

#: The vectorized-kernel numerical contract from the issue: results match
#: the scalar oracles to 1e-12 relative.
PARITY_RTOL = 1e-12


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_case_parity_at_smoke_size(case):
    pair = case.build(True)
    err = pair.parity(pair.vectorized(), pair.reference())
    assert err <= PARITY_RTOL, f"{case.name}: max rel err {err:.2e}"


@pytest.mark.parametrize(
    "case", [c for c in CASES if c.requires_cores > 1],
    ids=[c.name for c in CASES if c.requires_cores > 1],
)
def test_parallel_cases_parity_with_two_workers(case):
    """Parallel sweeps stay bit-identical under an explicit worker count
    even on one core (the pool path still runs)."""
    pair = case.build(True, 2)
    err = pair.parity(pair.vectorized(), pair.reference())
    assert err == 0.0, f"{case.name}: parallel result diverged"


def test_every_case_has_baselines():
    baselines = load_baselines()
    for case in CASES:
        assert set(baselines[case.name]) == {"smoke", "full"}


def test_report_and_regression_check(tmp_path):
    results = [
        {"case": c.name, "mode": "smoke", "speedup": 1e9} for c in CASES
    ]
    path = write_report(results, smoke=True, path=tmp_path / "BENCH_PERF.json")
    payload = json.loads(path.read_text())
    assert payload["mode"] == "smoke"
    assert len(payload["results"]) == len(CASES)
    assert check_against_baselines(results) == []


def test_regression_check_flags_slowdowns():
    results = [{"case": CASES[0].name, "mode": "smoke", "speedup": 0.01}]
    failures = check_against_baselines(results)
    assert len(failures) == 1 and CASES[0].name in failures[0]


def test_regression_check_flags_missing_baseline():
    failures = check_against_baselines(
        [{"case": "brand_new_case", "mode": "smoke", "speedup": 100.0}]
    )
    assert failures and "no smoke baseline" in failures[0]


def test_regression_check_skips_core_gated_cases():
    """A requires_cores=2 case is not held to its baseline on one core."""
    results = [
        {
            "case": "chaos_ensemble_pmap",
            "mode": "smoke",
            "speedup": 0.5,
            "requires_cores": 2,
            "cpu_count": 1,
        }
    ]
    assert check_against_baselines(results) == []
    results[0]["cpu_count"] = 2
    failures = check_against_baselines(results)
    assert len(failures) == 1 and "chaos_ensemble_pmap" in failures[0]


def test_run_case_emits_skip_record_on_small_machines(monkeypatch):
    """A core-gated case on a too-small machine yields an explicit
    ``skipped: insufficient_cores`` record instead of a noise speedup,
    and the baseline check exempts it."""
    import os

    from benchmarks.perf import harness

    gated = next(c for c in CASES if c.requires_cores > 1)
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    monkeypatch.setattr(harness.os, "cpu_count", lambda: 1)
    record = harness.run_case(gated, smoke=True)
    assert record["skipped"] == "insufficient_cores"
    assert record["requires_cores"] == gated.requires_cores
    assert record["cpu_count"] == 1
    assert "speedup" not in record
    assert check_against_baselines([record]) == []


def test_filter_cases():
    assert [c.name for c in filter_cases("pmap")] == [
        "chaos_ensemble_pmap",
        "mc_ber_grid_pmap",
        "pmap_shm",
    ]
    assert filter_cases(None) == list(CASES)
    assert filter_cases("no_such_case") == []
