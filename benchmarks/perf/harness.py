"""Timing, reporting, and baseline-regression logic for the perf suite."""

from __future__ import annotations

import json
import os
import resource
import sys
import timeit
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from benchmarks.perf.cases import CASES, PerfCase
from repro.obs import Observability

#: A case fails the regression check when its measured speedup drops more
#: than 30% below the committed baseline (speedup ratios are much more
#: stable across machines than absolute wall times).
REGRESSION_TOLERANCE = 0.30

_BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"
_REPORT_PATH = Path(__file__).resolve().parents[2] / "BENCH_PERF.json"


def measure_seconds(fn, repeats: int = 3, slow_threshold_s: float = 2.0) -> float:
    """Best-of wall time per call.

    ``timeit.autorange`` calibrates an inner-loop count so sub-millisecond
    kernels are measured over >=0.2 s of work; slow reference paths (one
    call already above ``slow_threshold_s``) are not re-run.
    """
    timer = timeit.Timer(fn)
    number, total = timer.autorange()
    per_call = total / number
    if per_call >= slow_threshold_s:
        return per_call
    best = total
    for _ in range(repeats - 1):
        best = min(best, timer.timeit(number))
    return best / number


def peak_rss_mb() -> float:
    """Process-wide peak resident set size, in MB.

    ``ru_maxrss`` is a high-water mark, so per-case readings within one
    suite run are monotonic; a flat-memory case is one whose reading
    does not grow past the cases before it.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB, macOS bytes.
    scale = 1e-6 if sys.platform == "darwin" else 1e-3
    return round(peak * scale, 3)


def run_case(
    case: PerfCase, smoke: bool, jobs: Optional[int] = None
) -> Dict[str, object]:
    """Build, parity-check, and time one case.

    Each stage runs under a wall-clock span so the report entry carries a
    per-phase breakdown; the spans wrap the measurement loops from the
    outside and never touch the timed callables themselves.  ``jobs``
    sets the worker count for parallel-sweep cases (None = cpu count).

    A case whose ``requires_cores`` exceeds this machine's core count is
    not run at all: a parallel speedup measured on too few cores is
    noise, and silently recording it would look like coverage.  The
    report instead carries an explicit ``skipped: insufficient_cores``
    record.
    """
    available = os.cpu_count() or 1
    if available < case.requires_cores:
        return {
            "case": case.name,
            "figure": case.figure,
            "mode": "smoke" if smoke else "full",
            "skipped": "insufficient_cores",
            "target_speedup": case.target_speedup,
            "requires_cores": case.requires_cores,
            "cpu_count": available,
            "jobs": jobs,
        }
    obs = Observability.wall()
    with obs.tracer.span("perf.build", case=case.name):
        pair = case.build(smoke, jobs)
    with obs.tracer.span("perf.parity", case=case.name):
        vec_result = pair.vectorized()
        ref_result = pair.reference()
        max_rel_err = pair.parity(vec_result, ref_result)
    with obs.tracer.span("perf.time_vectorized", case=case.name):
        vec_s = measure_seconds(pair.vectorized)
    with obs.tracer.span("perf.time_reference", case=case.name):
        ref_s = measure_seconds(pair.reference)
    # Normalized to seconds like every other *_s field in the report
    # (these were milliseconds through PR 9).
    phases_s = {
        span.name.removeprefix("perf."): round(span.duration_ms / 1e3, 6)
        for span in obs.tracer.spans()
    }
    ref_scale = float(getattr(pair, "ref_scale", 1.0))
    return {
        "case": case.name,
        "figure": case.figure,
        "mode": "smoke" if smoke else "full",
        "size": pair.size,
        "vectorized_s": vec_s,
        "reference_s": ref_s,
        "ref_scale": ref_scale,
        "vectorized_ops_per_s": 1.0 / vec_s,
        "reference_ops_per_s": 1.0 / ref_s,
        "speedup": ref_s * ref_scale / vec_s,
        "target_speedup": case.target_speedup,
        "parity_max_rel_err": max_rel_err,
        "requires_cores": case.requires_cores,
        "cpu_count": os.cpu_count() or 1,
        "jobs": jobs,
        "peak_rss_mb": peak_rss_mb(),
        "phases_s": phases_s,
    }


def filter_cases(
    pattern: Optional[str], cases: Sequence[PerfCase] = CASES
) -> List[PerfCase]:
    """Cases whose name contains ``pattern`` (None/empty = all)."""
    if not pattern:
        return list(cases)
    return [case for case in cases if pattern in case.name]


def run_suite(
    smoke: bool = False,
    cases: Sequence[PerfCase] = CASES,
    verbose: bool = True,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    results = []
    for case in cases:
        if verbose:
            print(f"[perf] {case.name} ({'smoke' if smoke else 'full'}) ...", flush=True)
        result = run_case(case, smoke, jobs)
        if verbose:
            if result.get("skipped"):
                print(
                    f"[perf]   SKIPPED ({result['skipped']}): needs "
                    f"{result['requires_cores']} cores, have "
                    f"{result['cpu_count']}",
                    flush=True,
                )
            else:
                print(
                    f"[perf]   vec {result['vectorized_s']:.4f}s "
                    f"ref {result['reference_s']:.4f}s "
                    f"speedup {result['speedup']:.1f}x "
                    f"parity {result['parity_max_rel_err']:.2e}",
                    flush=True,
                )
        results.append(result)
    return results


def write_report(
    results: Sequence[Dict[str, object]],
    smoke: bool,
    path: Optional[Path] = None,
) -> Path:
    """Write the ``BENCH_PERF.json`` artifact."""
    out = path or _REPORT_PATH
    payload = {
        "suite": "benchmarks/perf",
        "mode": "smoke" if smoke else "full",
        "regression_tolerance": REGRESSION_TOLERANCE,
        "results": list(results),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def load_baselines(path: Optional[Path] = None) -> Dict[str, Dict[str, float]]:
    source = path or _BASELINES_PATH
    return json.loads(source.read_text())


def check_against_baselines(
    results: Sequence[Dict[str, object]],
    baselines: Optional[Dict[str, Dict[str, float]]] = None,
) -> List[str]:
    """Compare measured speedups against the committed baselines.

    Returns a list of human-readable failures (empty when everything is
    within tolerance).  A missing baseline entry is itself a failure so
    new cases must be baselined when added.  Results carrying an
    explicit ``skipped`` marker (``requires_cores`` gating on a small
    machine -- a parallel sweep cannot beat its serial oracle on one
    core) are exempt, so those baselines only bind on CI runners with
    enough cores.
    """
    if baselines is None:
        baselines = load_baselines()
    failures = []
    for result in results:
        name, mode = str(result["case"]), str(result["mode"])
        if result.get("skipped"):
            continue
        required = int(result.get("requires_cores", 1) or 1)
        available = int(result.get("cpu_count", os.cpu_count() or 1) or 1)
        if available < required:
            continue
        baseline = baselines.get(name, {}).get(mode)
        if baseline is None:
            failures.append(f"{name}: no {mode} baseline recorded")
            continue
        floor = baseline * (1.0 - REGRESSION_TOLERANCE)
        speedup = float(result["speedup"])
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below floor {floor:.2f}x "
                f"(baseline {baseline:.2f}x, tolerance {REGRESSION_TOLERANCE:.0%})"
            )
    return failures
