"""CLI entry point: ``python -m benchmarks.perf.run [--smoke] [--check]
[--jobs N] [--filter SUBSTR]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from benchmarks.perf.harness import (
    check_against_baselines,
    filter_cases,
    run_suite,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run at reduced CI sizes instead of the pinned full sizes",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when any speedup regresses >30%% vs benchmarks/perf/baselines.json",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write BENCH_PERF.json (default: repo root)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for parallel-sweep cases (default: cpu count)",
    )
    parser.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTR",
        help="only run cases whose name contains SUBSTR",
    )
    args = parser.parse_args(argv)

    cases = filter_cases(args.filter)
    if not cases:
        print(f"[perf] no cases match --filter {args.filter!r}", file=sys.stderr)
        return 2
    results = run_suite(smoke=args.smoke, cases=cases, jobs=args.jobs)
    report = write_report(results, smoke=args.smoke, path=args.output)
    print(f"[perf] wrote {report}")

    if args.check:
        failures = check_against_baselines(results)
        if failures:
            for failure in failures:
                print(f"[perf] REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("[perf] all cases within regression tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
