"""The pinned perf cases: optimized path vs reference oracle.

Each case builds a deterministic workload at one of two sizes (``full``
for the committed ``BENCH_PERF.json``, ``smoke`` for CI) and exposes an
optimized thunk (vectorized kernel, parallel sweep, or warm cache), a
reference thunk, and a parity function measuring the maximum relative
error between the two results.

Builders take ``(smoke, jobs=None)``; ``jobs`` is the engine worker
count for the parallel-sweep cases (None = ``os.cpu_count()``) and is
ignored by the single-process kernel cases.  Cases with
``requires_cores > 1`` only have meaningful speedups on machines with at
least that many cores -- the harness records the machine's
``cpu_count`` in each result and the baseline check skips gated cases
on smaller machines.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.dcn.flowsim import (
    FlowSimulator,
    generate_flows,
    max_min_rates,
    max_min_rates_reference,
)
from repro.dcn.spinefree import AggregationBlock, SpineFreeFabric
from repro.dcn.traffic import gravity_matrix
from repro.dcn.traffic_engineering import RoutingSolution, route_demand
from repro.optics.ber import (
    LinkBerSimulator,
    receiver_sensitivity_batch,
    receiver_sensitivity_reference,
)
from repro.optics.fleet import SUPERPOD_RX_PORTS, FleetBerSampler
from repro.optics.mc_sweep import monte_carlo_ber_grid, monte_carlo_ber_grid_serial
from repro.optics.pam4 import DEFAULT_THERMAL_NOISE_W, Pam4LinkModel
from repro.faults.ensemble import chaos_ensemble, chaos_ensemble_serial
from repro.obs.metrics import MetricsRegistry
from repro.parallel import ResultCache, SweepEngine
from repro.serve import FabricService, ServeConfig, ServeWorkload
from repro.serve.drill import build_fault_timeline, drill_config, run_serve_drill
from repro.serve.requests import RequestKind
from repro.faults.injector import FaultInjector


class CasePair(NamedTuple):
    """One built workload: thunks to time plus the parity check.

    ``ref_scale`` declares that the reference thunk runs a problem
    ``ref_scale`` times smaller than the vectorized one (a reference too
    slow to run at full size); the harness multiplies the measured
    reference time by it before computing the speedup, and the case's
    parity check is responsible for pinning equality at the reference's
    own scale (the extrapolation check).
    """

    vectorized: Callable[[], object]
    reference: Callable[[], object]
    parity: Callable[[object, object], float]
    size: Dict[str, object]
    ref_scale: float = 1.0


@dataclass(frozen=True)
class PerfCase:
    """A named benchmark with its acceptance floor.

    ``requires_cores`` gates the baseline check: a parallel-speedup case
    cannot beat its serial oracle on fewer cores, so machines below the
    floor record the measurement but are not held to the baseline.
    """

    name: str
    figure: str
    target_speedup: float
    build: Callable[..., CasePair]
    requires_cores: int = 1


def _max_rel_err(a: np.ndarray, b: np.ndarray) -> float:
    a, b = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    scale = np.maximum(np.abs(b), 1e-300)
    return float(np.max(np.abs(a - b) / scale)) if a.size else 0.0


# --------------------------------------------------------------------- #
# Fig 13: fleet BER sweep (6,144 superpod ports in one ber_batch pass)
# --------------------------------------------------------------------- #


def _build_fleet(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # single-process kernel case
    ports = 768 if smoke else SUPERPOD_RX_PORTS
    sampler = FleetBerSampler(num_ports=ports, seed=7)
    return CasePair(
        vectorized=sampler.sample,
        reference=sampler.sample_reference,
        parity=_max_rel_err,
        size={"ports": ports},
    )


# --------------------------------------------------------------------- #
# Fig 11/12: BER waterfall generation (MPI sweep + SFEC curves)
# --------------------------------------------------------------------- #

_FIG11_MPI_LEVELS: Tuple[object, ...] = (None, -35.0, -32.0, -29.0)
_FIG12_MPI_LEVELS: Tuple[float, ...] = (-36.0, -32.0)


def _curves_reference(
    sim: LinkBerSimulator, powers: np.ndarray
) -> Dict[Tuple[object, bool, str], np.ndarray]:
    """Scalar re-derivation of mpi_sweep + sfec_curves: one ``ber`` call
    per (curve, power) point, one ``output_ber`` call per SFEC point."""
    out: Dict[Tuple[object, bool, str], np.ndarray] = {}
    for mpi_db in _FIG11_MPI_LEVELS:
        for oim_on in (False, True):
            model = sim._model(mpi_db, oim_on)
            out[(mpi_db, oim_on, "fig11")] = np.array(
                [model.ber(float(p)) for p in powers]
            )
    for mpi_db in _FIG12_MPI_LEVELS:
        model = sim._model(mpi_db, oim_on=False)
        raw = np.array([model.ber(float(p)) for p in powers])
        out[(mpi_db, False, "fig12")] = raw
        out[(mpi_db, True, "fig12")] = np.array(
            [sim.fec.inner.output_ber(float(min(b, 0.5))) for b in raw]
        )
    return out


def _curves_vectorized(
    sim: LinkBerSimulator, powers: np.ndarray
) -> Dict[Tuple[object, bool, str], np.ndarray]:
    fig11 = sim.mpi_sweep(mpi_levels_db=_FIG11_MPI_LEVELS, rx_powers_dbm=powers)
    fig12 = sim.sfec_curves(mpi_levels_db=_FIG12_MPI_LEVELS, rx_powers_dbm=powers)
    out = {(mpi, oim, "fig11"): c.bers for (mpi, oim), c in fig11.items()}
    out.update({(mpi, sfec, "fig12"): c.bers for (mpi, sfec), c in fig12.items()})
    return out


def _curves_parity(vec: object, ref: object) -> float:
    assert isinstance(vec, dict) and isinstance(ref, dict)
    assert vec.keys() == ref.keys()
    return max(_max_rel_err(vec[k], ref[k]) for k in vec)


def _build_curves(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # single-process kernel case
    points = 33 if smoke else 241
    powers = np.linspace(-15.0, -2.0, points)
    sim = LinkBerSimulator()
    return CasePair(
        vectorized=lambda: _curves_vectorized(sim, powers),
        reference=lambda: _curves_reference(sim, powers),
        parity=_curves_parity,
        size={"power_points": points, "curves": 2 * len(_FIG11_MPI_LEVELS) + 4},
    )


# --------------------------------------------------------------------- #
# Receiver-sensitivity solves: batched bisection vs scalar bisection
# --------------------------------------------------------------------- #


def _build_sensitivity(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # single-process kernel case
    n_mpi, n_thermal = (8, 6) if smoke else (32, 16)
    models = [
        Pam4LinkModel(
            mpi_db=float(mpi),
            thermal_noise_w=DEFAULT_THERMAL_NOISE_W * float(mult),
        )
        for mpi in np.linspace(-40.0, -30.0, n_mpi)
        for mult in np.linspace(0.8, 1.2, n_thermal)
    ]
    return CasePair(
        vectorized=lambda: receiver_sensitivity_batch(models),
        reference=lambda: np.array(
            [receiver_sensitivity_reference(m) for m in models]
        ),
        parity=_max_rel_err,
        size={"models": len(models)},
    )


# --------------------------------------------------------------------- #
# Max-min fair allocation: incidence-matrix kernel vs dict loop
# --------------------------------------------------------------------- #


def _random_allocation_instance(
    num_flows: int, num_links: int, seed: int
) -> Tuple[Dict[int, List[Tuple[int, int]]], Dict[Tuple[int, int], float]]:
    rng = np.random.default_rng(seed)
    links = [(int(i), int(i + 1)) for i in range(num_links)]
    capacity = {link: float(c) for link, c in zip(links, rng.uniform(10.0, 400.0, num_links))}
    flow_paths: Dict[int, List[Tuple[int, int]]] = {}
    for fid in range(num_flows):
        hops = int(rng.integers(1, 6))
        picks = rng.choice(num_links, size=min(hops, num_links), replace=False)
        flow_paths[fid] = [links[int(p)] for p in picks]
    return flow_paths, capacity


def _build_max_min(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # single-process kernel case
    num_flows, num_links = (600, 120) if smoke else (8000, 600)
    flow_paths, capacity = _random_allocation_instance(num_flows, num_links, seed=11)

    def _rates_array(rates: Dict[int, float]) -> np.ndarray:
        return np.array([rates[fid] for fid in sorted(rates)])

    return CasePair(
        vectorized=lambda: max_min_rates(flow_paths, capacity),
        reference=lambda: max_min_rates_reference(flow_paths, capacity),
        parity=lambda a, b: _max_rel_err(_rates_array(a), _rates_array(b)),
        size={"flows": num_flows, "links": num_links},
    )


# --------------------------------------------------------------------- #
# Fluid flow simulation: incremental incidence run vs per-event dict loop
# --------------------------------------------------------------------- #


def _build_flowsim(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # single-process kernel case
    num_flows = 400 if smoke else 2000
    fabric = SpineFreeFabric.uniform(
        [AggregationBlock(i, uplinks=16) for i in range(16)]
    )
    tm = gravity_matrix(16, 3000.0, seed=3)
    routing = route_demand(fabric, tm)
    flows = generate_flows(
        tm.demand_gbps, num_flows, mean_size_gbit=2000.0, duration_s=0.25, seed=9
    )

    def _records_parity(vec: object, ref: object) -> float:
        assert [r.flow.flow_id for r in vec] == [r.flow.flow_id for r in ref]
        return _max_rel_err(
            np.array([r.finish_s for r in vec]), np.array([r.finish_s for r in ref])
        )

    return CasePair(
        vectorized=lambda: FlowSimulator(fabric, routing, seed=7).run(flows),
        reference=lambda: FlowSimulator(fabric, routing, seed=7).run_reference(flows),
        parity=_records_parity,
        size={"flows": num_flows, "blocks": 16, "uplinks": 16},
    )


# --------------------------------------------------------------------- #
# 100k-flow / 65k-port FCT: incremental frontier engine vs per-event
# full solve
# --------------------------------------------------------------------- #


def _metro_routing(
    blocks: int, seed: int
) -> Tuple[SpineFreeFabric, RoutingSolution, np.ndarray]:
    """A synthetic engineered metro at ``blocks`` x 64 uplinks.

    ``route_demand`` is O(n^3) per matrix and infeasible at 1024 blocks,
    so the routing solution is constructed directly: blocks form
    8-block neighborhoods with an in-group ring (1-hop pairs), 2-hop
    paths that bridge adjacent ring links, and a low-rate 2-hop
    cross-group path per neighborhood.  Link sharing -- the thing the
    incremental engine's frontier walk follows -- therefore stays
    mostly neighborhood-local, which is the locality structure
    engineered fabrics actually exhibit.  Trunk capacities come in
    three discrete rates (mixed 300/400/500G bundles, as real metros
    stripe them) rather than a continuum: tied links freeze in shared
    water-filling rounds, which keeps the per-event full solve's round
    count -- and therefore the reference path's wall time at 1,024
    blocks -- bounded.
    """
    group = 8
    rng = np.random.default_rng(seed)
    capacity = np.zeros((blocks, blocks))
    demand = np.zeros((blocks, blocks))
    paths: Dict[Tuple[int, int], List[Tuple[Tuple[int, ...], float]]] = {}
    for base in range(0, blocks, group):
        for k in range(group):
            b = base + k
            n1 = base + (k + 1) % group
            n2 = base + (k + 2) % group
            capacity[b, n1] = float(rng.choice([300.0, 400.0, 500.0]))
            paths[(b, n1)] = [((b, n1), 1.0)]
            demand[b, n1] = 3.0
            paths[(b, n2)] = [((b, n1, n2), 1.0)]
            demand[b, n2] = 2.0
        nxt = (base + group) % blocks
        capacity[base + group - 1, nxt] = float(rng.choice([300.0, 400.0, 500.0]))
        paths[(base + group - 2, nxt)] = [
            ((base + group - 2, base + group - 1, nxt), 1.0)
        ]
        demand[base + group - 2, nxt] = 0.3
    fabric = SpineFreeFabric.uniform(
        [AggregationBlock(i, uplinks=64) for i in range(blocks)]
    )
    routing = RoutingSolution(
        served_gbps=demand.copy(),
        residual_gbps=np.zeros_like(demand),
        link_load_gbps=np.zeros_like(capacity),
        link_capacity_gbps=capacity,
        paths=paths,
    )
    return fabric, routing, demand


def _build_flowsim_100k(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # single-process kernel case
    blocks, num_flows, duration_s = (64, 3_000, 15.0) if smoke else (
        1024,
        100_000,
        30.0,
    )
    fabric, routing, demand = _metro_routing(blocks, seed=17)
    flows = generate_flows(
        demand, num_flows, mean_size_gbit=15.0, duration_s=duration_s, seed=23
    )

    def _records_parity(vec: object, ref: object) -> float:
        assert [r.flow.flow_id for r in vec] == [r.flow.flow_id for r in ref]
        return _max_rel_err(
            np.array([r.finish_s for r in vec]), np.array([r.finish_s for r in ref])
        )

    def _sim() -> FlowSimulator:
        # crossover=0 pins the full-solve baseline to the vectorized
        # matrix kernel (its fastest honest configuration at this scale;
        # the dict kernel would copy a multi-thousand-entry capacity
        # dict per event).
        return FlowSimulator(fabric, routing, seed=7, dict_kernel_crossover=0)

    return CasePair(
        vectorized=lambda: _sim().run(flows),
        reference=lambda: _sim().run_full_solve(flows),
        parity=_records_parity,
        size={
            "flows": num_flows,
            "blocks": blocks,
            "ports": blocks * 64,
            "links": int(np.count_nonzero(routing.link_capacity_gbps)),
        },
    )


# --------------------------------------------------------------------- #
# Parallel sweeps: SweepEngine fan-out vs the serial oracle
# --------------------------------------------------------------------- #


def _sweep_jobs(jobs: Optional[int]) -> int:
    return jobs if jobs is not None else (os.cpu_count() or 1)


def _exact_parity(vec: object, ref: object) -> float:
    """Sweeps are bit-identical by contract: equal -> 0.0, else inf."""
    import pickle

    vec_list, ref_list = list(vec), list(ref)
    same = len(vec_list) == len(ref_list) and all(
        pickle.dumps(a) == pickle.dumps(b) for a, b in zip(vec_list, ref_list)
    )
    return 0.0 if same else float("inf")


def _build_chaos_ensemble(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    workers = _sweep_jobs(jobs)
    # The crash-recovery sweep is the heaviest scenario per member
    # (~50-100 ms), so per-chunk work dominates pool startup.
    scenario = "controller_crash_recovery"
    num_seeds = 4 if smoke else 8
    seeds = list(range(num_seeds))
    kwargs = {} if smoke else {"num_ocses": 4, "links_per_ocs": 8}
    engine = SweepEngine(workers=workers, chunk_size=1)

    def _digests(reports) -> np.ndarray:
        return np.array([int(r.digest()[:15], 16) for r in reports], dtype=float)

    return CasePair(
        vectorized=lambda: chaos_ensemble(
            scenario, seeds, kwargs=kwargs, engine=engine
        ),
        reference=lambda: chaos_ensemble_serial(scenario, seeds, kwargs=kwargs),
        parity=lambda a, b: _max_rel_err(_digests(a), _digests(b)),
        size={"scenario": scenario, "seeds": num_seeds, "jobs": workers},
    )


def _build_mc_ber_grid(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    workers = _sweep_jobs(jobs)
    points, symbols = (8, 500_000) if smoke else (8, 2_000_000)
    model = Pam4LinkModel()
    powers = np.linspace(-12.0, -6.0, points)
    engine = SweepEngine(workers=workers, chunk_size=1)
    return CasePair(
        vectorized=lambda: monte_carlo_ber_grid(
            model, powers, num_symbols=symbols, seed=7, engine=engine
        ),
        reference=lambda: monte_carlo_ber_grid_serial(
            model, powers, num_symbols=symbols, seed=7
        ),
        parity=_exact_parity,
        size={"points": points, "symbols": symbols, "jobs": workers},
    )


# --------------------------------------------------------------------- #
# Zero-copy task shipping: shm arena vs per-chunk pickling
# --------------------------------------------------------------------- #


def _shm_row_stat(task: Dict[str, object], seed) -> float:
    """A cheap per-task statistic over one row of the shared grid --
    shipping cost, not compute, must dominate this case."""
    rng = np.random.default_rng(seed)
    grid = task["grid"]
    row = grid[int(task["row"]) % grid.shape[0]]
    idx = rng.integers(0, row.size, size=4096)
    return float(row[idx].sum() + np.quantile(row, 0.5))


def _build_pmap_shm(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    workers = _sweep_jobs(jobs)
    side, num_tasks = (512, 8) if smoke else (1448, 16)
    rng = np.random.default_rng(13)
    # One grid shared by every task: the pickle engine re-ships it with
    # every chunk (chunk_size=1 -> num_tasks copies through the pipe);
    # the shm engine packs it into the arena once.
    grid = rng.standard_normal((side, side))
    tasks = [{"grid": grid, "row": i} for i in range(num_tasks)]
    shm_engine = SweepEngine(workers=workers, chunk_size=1, ship="shm")
    pickle_engine = SweepEngine(workers=workers, chunk_size=1)
    return CasePair(
        vectorized=lambda: shm_engine.pmap(_shm_row_stat, tasks, seed=5),
        reference=lambda: pickle_engine.pmap(_shm_row_stat, tasks, seed=5),
        parity=_exact_parity,
        size={
            "grid_mb": round(grid.nbytes / 1e6, 1),
            "tasks": num_tasks,
            "jobs": workers,
        },
    )


# --------------------------------------------------------------------- #
# Result cache: warm content-addressed lookups vs recomputation
# --------------------------------------------------------------------- #


def _build_cache_warm(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # warm lookups are serial either way
    points, symbols = (6, 50_000) if smoke else (8, 200_000)
    model = Pam4LinkModel()
    powers = np.linspace(-12.0, -6.0, points)
    # The tempdir handle rides in the closures so the cache outlives
    # the builder; it is reclaimed when the CasePair is dropped.
    tmp = tempfile.TemporaryDirectory(prefix="perf-sweep-cache-")
    monte_carlo_ber_grid(
        model, powers, num_symbols=symbols, seed=7,
        engine=SweepEngine(workers=1, cache=ResultCache(tmp.name)),
    )

    def warm(_tmp=tmp):
        engine = SweepEngine(workers=1, cache=ResultCache(_tmp.name))
        return monte_carlo_ber_grid(
            model, powers, num_symbols=symbols, seed=7, engine=engine
        )

    return CasePair(
        vectorized=warm,
        reference=lambda: monte_carlo_ber_grid_serial(
            model, powers, num_symbols=symbols, seed=7
        ),
        parity=_exact_parity,
        size={"points": points, "symbols": symbols},
    )


# --------------------------------------------------------------------- #
# Serving soak: brownout (cached telemetry) vs fresh digests per query
# --------------------------------------------------------------------- #


def _build_serve_soak(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # the serving loop is serial by design (deterministic)
    primaries = 600 if smoke else 4_000
    # Below-capacity, fault-free soak.  The mix has no retargeting ops,
    # so both brownout levels commit the same intents in the same order
    # and the final fabric digests must match bit for bit; the only
    # difference is how telemetry is answered (cached vs a fresh
    # ``state_digest`` hash per query -- the dominant soak-path cost).
    workload = ServeWorkload(
        seed=7,
        rate_per_s=250.0,
        num_tenants=64,
        mix={RequestKind.TELEMETRY_QUERY: 0.92, RequestKind.SLICE_ALLOC: 0.08},
        deadlines_s={
            RequestKind.TELEMETRY_QUERY: 5.0,
            RequestKind.SLICE_ALLOC: 5.0,
            RequestKind.SLICE_RELEASE: 5.0,
        },
        slice_cubes=(1, 2),
        slice_hold_mean_s=1.0,
    )
    requests = workload.generate(primaries)

    def _soak(pinned_level: int):
        config = ServeConfig(
            num_tenants=64,
            global_rate_per_s=10_000.0,
            global_burst=2_000.0,
            tenant_rate_per_s=1_000.0,
            tenant_burst=200.0,
            queue_capacity=4_096,
            pinned_brownout=pinned_level,
            seed=7,
        )
        report = FabricService(config).run(requests)
        return (report.state_digest, len(report.commit_log))

    return CasePair(
        vectorized=lambda: _soak(2),
        reference=lambda: _soak(0),
        parity=_exact_parity,
        size={"primaries": primaries, "requests": len(requests)},
    )


# --------------------------------------------------------------------- #
# Million-request serving drill: fast calendar + streaming sink vs the
# per-request reference loop
# --------------------------------------------------------------------- #

_SERVE_1M_TENANTS = 2_048
_SERVE_1M_PARITY_PRIMARIES = 10_000


def _serve_1m_fast(num_primaries: int) -> Dict[str, object]:
    return run_serve_drill(
        seed=7,
        smoke=True,
        num_primaries=num_primaries,
        num_tenants=_SERVE_1M_TENANTS,
        streaming=True,
    )["summary"]


def _serve_1m_reference() -> Dict[str, object]:
    """The pre-calendar loop (``run_reference``) over the parity-scale
    prefix of the same drill: same workload, faults, and config."""
    config = drill_config(seed=7, num_tenants=_SERVE_1M_TENANTS)
    workload = ServeWorkload(
        seed=7, rate_per_s=1_200.0, num_tenants=_SERVE_1M_TENANTS
    )
    requests = workload.generate(_SERVE_1M_PARITY_PRIMARIES)
    injector = FaultInjector(seed=7)
    build_fault_timeline(
        injector, workload.horizon_s(_SERVE_1M_PARITY_PRIMARIES)
    )
    report = FabricService(config).run_reference(requests, faults=injector)
    return {
        "outcomes_digest": report.outcomes_digest(),
        "state_digest": report.state_digest,
        "commits": len(report.commit_log),
    }


def _build_serve_1m(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # one core by design: the tentpole target is single-core
    full_primaries = (
        _SERVE_1M_PARITY_PRIMARIES if smoke else 1_000_000
    )
    ref_scale = full_primaries / _SERVE_1M_PARITY_PRIMARIES

    def _parity(vec: object, ref: object) -> float:
        assert isinstance(ref, dict)
        if ref_scale != 1.0:
            # Extrapolation check: the timed vectorized run is bigger
            # than the reference can afford, so digest equality is
            # re-pinned at the reference's own scale.
            vec = _serve_1m_fast(_SERVE_1M_PARITY_PRIMARIES)
        assert isinstance(vec, dict)
        same = all(vec[k] == ref[k] for k in ref)
        return 0.0 if same else float("inf")

    return CasePair(
        vectorized=lambda: _serve_1m_fast(full_primaries),
        reference=_serve_1m_reference,
        parity=_parity,
        size={
            "primaries": full_primaries,
            "tenants": _SERVE_1M_TENANTS,
            "reference_primaries": _SERVE_1M_PARITY_PRIMARIES,
        },
        ref_scale=ref_scale,
    )


# --------------------------------------------------------------------- #
# Metrics hot path: bound series handles vs per-call name resolution
# --------------------------------------------------------------------- #


def _build_metrics_hot_path(smoke: bool, jobs: Optional[int] = None) -> CasePair:
    del jobs  # single-process micro-bench
    increments = 20_000 if smoke else 200_000

    def _bound() -> float:
        registry = MetricsRegistry()
        counter = registry.handle("counter", "bench.hot", outcome="ok")
        for _ in range(increments):
            counter.inc()
        return registry.value("bench.hot", outcome="ok")

    def _named() -> float:
        registry = MetricsRegistry()
        for _ in range(increments):
            registry.counter("bench.hot", outcome="ok").inc()
        return registry.value("bench.hot", outcome="ok")

    return CasePair(
        vectorized=_bound,
        reference=_named,
        parity=_max_rel_err,
        size={"increments": increments},
    )


CASES: Tuple[PerfCase, ...] = (
    PerfCase("fleet_ber_fig13", "Fig 13", 20.0, _build_fleet),
    PerfCase("ber_curves_fig11_12", "Fig 11/12", 5.0, _build_curves),
    PerfCase("receiver_sensitivity", "Fig 11/12 solves", 5.0, _build_sensitivity),
    PerfCase("max_min_rates", "§5 flow fairness", 5.0, _build_max_min),
    PerfCase("flowsim_run", "§5 FCT simulation", 5.0, _build_flowsim),
    PerfCase("flowsim_100k", "§5 FCT at 100k flows", 20.0, _build_flowsim_100k),
    PerfCase(
        "chaos_ensemble_pmap", "chaos ensembles", 1.7, _build_chaos_ensemble,
        requires_cores=2,
    ),
    PerfCase(
        "mc_ber_grid_pmap", "Fig 11a MC grid", 1.7, _build_mc_ber_grid,
        requires_cores=2,
    ),
    PerfCase(
        "pmap_shm", "zero-copy shipping", 1.5, _build_pmap_shm,
        requires_cores=2,
    ),
    PerfCase("sweep_cache_warm", "result cache", 5.0, _build_cache_warm),
    PerfCase("serve_soak", "serving brownout", 1.2, _build_serve_soak),
    PerfCase("serve_1m", "\u00a712 serving drill", 5.0, _build_serve_1m),
    PerfCase("metrics_hot_path", "obs hot loops", 1.5, _build_metrics_hot_path),
)
