"""Perf-regression harness for the vectorized hot-path kernels.

Every case times a vectorized kernel against the scalar reference
implementation it replaced (the scalar paths are kept in-tree as
numerical oracles) on a pinned workload size, checks numerical parity,
and reports ops/sec, wall time, and speedup.

Entry points:

- ``python -m benchmarks.perf.run`` -- full pinned sizes, writes
  ``BENCH_PERF.json`` at the repo root.
- ``python -m benchmarks.perf.run --smoke --check`` -- reduced sizes for
  CI; fails when any case regresses more than 30% against the committed
  ``benchmarks/perf/baselines.json``.
- ``pytest benchmarks/perf`` -- the same smoke suite as a test.
"""

from benchmarks.perf.harness import (
    REGRESSION_TOLERANCE,
    check_against_baselines,
    run_suite,
    write_report,
)
from benchmarks.perf.cases import CASES, PerfCase

__all__ = [
    "CASES",
    "PerfCase",
    "REGRESSION_TOLERANCE",
    "check_against_baselines",
    "run_suite",
    "write_report",
]
