"""Fig 13: production per-lane BER across the superpod fleet.

Workload: all 6144 receiving ports (16 per face x 6 faces x 64 cubes)
with manufacturing/link spread, OIM and SFEC active.  Paper: every lane
below the 2e-4 KP4 threshold with ~two orders of magnitude of margin.
"""

import numpy as np
import pytest

from repro.analysis.histogram import ascii_histogram
from repro.optics.fec import KP4_BER_THRESHOLD
from repro.optics.fleet import SUPERPOD_RX_PORTS, FleetBerSampler

from .conftest import report


def sample_fleet():
    sampler = FleetBerSampler(num_ports=SUPERPOD_RX_PORTS, seed=7)
    bers = sampler.sample()
    return sampler.summarize(bers), bers


def test_bench_fig13_fleet_ber(benchmark):
    summary, bers = benchmark(sample_fleet)
    report(
        "Fig 13: fleet BER distribution (OIM + SFEC active)",
        ["metric", "paper", "measured"],
        [
            ["ports", "6144", str(summary["ports"])],
            ["all < 2e-4", "yes", str(summary["all_below_threshold"])],
            ["median BER", "~1e-6..1e-7", f"{summary['median_ber']:.2e}"],
            ["worst-lane margin", "~2 decades", f"{summary['worst_margin_decades']:.2f} decades"],
        ],
    )
    print()
    print("log10(BER) histogram:")
    print(ascii_histogram(np.log10(np.maximum(bers, 1e-30)), bins=12, fmt="{:6.1f}"))
    assert summary["ports"] == 6144
    assert summary["all_below_threshold"]
    assert summary["worst_margin_decades"] > 1.0
    assert summary["median_margin_decades"] > 2.0
