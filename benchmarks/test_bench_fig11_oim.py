"""Fig 11: BER vs received power with MPI, ± optical interference mitigation.

Workload: one 50 Gb/s PAM4 lane of a 200G CWDM4 link; MPI levels -inf,
-35, -32, -29 dB; analytic waterfalls plus a Monte-Carlo spot check.
Headline: OIM recovers more than 1 dB of receiver sensitivity at
MPI = -32 dB and the KP4 threshold of 2e-4.
"""

import numpy as np
import pytest

from repro.optics.ber import LinkBerSimulator, receiver_sensitivity_dbm
from repro.optics.fec import KP4_BER_THRESHOLD
from repro.optics.pam4 import Pam4LinkModel

from .conftest import report

PAPER_MIN_OIM_GAIN_DB = 1.0


def run_fig11():
    sim = LinkBerSimulator()
    # Extend the power axis so the heavily-penalized -29 dB curve still
    # crosses the KP4 threshold inside the sweep.
    powers = np.linspace(-14.0, -2.0, 25)
    curves = sim.mpi_sweep(
        mpi_levels_db=(None, -35.0, -32.0, -29.0), rx_powers_dbm=powers
    )
    gains = {
        mpi: sim.oim_sensitivity_gain_db(mpi) for mpi in (-35.0, -32.0, -29.0)
    }
    return sim, curves, gains


def test_bench_fig11_oim(benchmark):
    sim, curves, gains = benchmark(run_fig11)
    clean = receiver_sensitivity_dbm(Pam4LinkModel())
    rows = []
    for mpi in (-35.0, -32.0, -29.0):
        off = curves[(mpi, False)].power_at_ber(KP4_BER_THRESHOLD)
        on = curves[(mpi, True)].power_at_ber(KP4_BER_THRESHOLD)
        rows.append([f"{mpi:g} dB", f"{off:.2f} dBm", f"{on:.2f} dBm", f"{gains[mpi]:.2f} dB"])
    report(
        "Fig 11: sensitivity at BER=2e-4 (clean link: "
        f"{clean:.2f} dBm); paper: OIM gain > 1 dB at MPI -32 dB",
        ["MPI", "OIM off", "OIM on", "gain"],
        rows,
    )
    # Monte-Carlo agreement at one point (Fig 11a is simulated, 11b measured).
    model = Pam4LinkModel(mpi_db=-32.0)
    analytic = model.ber(-11.0)
    mc = model.monte_carlo_ber(-11.0, num_symbols=200_000, seed=9)
    print(f"\nMonte-Carlo check at -11 dBm, MPI -32: analytic {analytic:.3e} vs MC {mc:.3e}")
    assert gains[-32.0] > PAPER_MIN_OIM_GAIN_DB
    assert gains[-35.0] < gains[-32.0] < gains[-29.0]
    assert mc == pytest.approx(analytic, rel=0.3)
