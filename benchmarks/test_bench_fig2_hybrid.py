"""Fig 2 / §2.2.2: hybrid ICI-DCN cross-pod collectives.

Workload: a 4-superpod cluster running the two-level all-reduce of Fig 2
(intra-pod ICI reduce-scatter, inter-pod DCN all-reduce, intra-pod
all-gather) over a 70B model's data-parallel gradients.  Quantifies the
paper's observations: the ICI provides 50-100x the DCN bandwidth per TPU
and the DCN phase dominates the critical path.
"""

import pytest

from repro.ml.hybrid import (
    HybridClusterSpec,
    cross_pod_all_reduce_time_s,
    dcn_critical_path_fraction,
)

from .conftest import report


def run_hybrid():
    spec = HybridClusterSpec(num_pods=4)
    # 70B parameters bf16, sharded over tensor=4: per-chip gradient bytes.
    volume = 2.0 * 70e9 / (4 * 1024)
    rows = []
    for dcn in (0.2, 0.4, 0.8, 1.6):
        s = HybridClusterSpec(num_pods=4, dcn_gbytes_per_chip_s=dcn)
        rows.append(
            (
                dcn,
                s.ici_to_dcn_ratio,
                cross_pod_all_reduce_time_s(s, volume),
                dcn_critical_path_fraction(s, volume),
            )
        )
    return spec, rows


def test_bench_fig2_hybrid(benchmark):
    spec, rows = benchmark(run_hybrid)
    report(
        "Fig 2: two-level all-reduce across 4 superpods (per-chip shard)",
        ["DCN GB/s/chip", "ICI:DCN ratio", "collective (ms)", "DCN fraction"],
        [
            [f"{dcn:.1f}", f"{ratio:.0f}x", f"{t * 1e3:.2f}", f"{frac:.0%}"]
            for dcn, ratio, t, frac in rows
        ],
    )
    # The default cluster sits in the paper's 50-100x gap.
    assert 50 <= spec.ici_to_dcn_ratio <= 100
    # DCN transfers dominate the critical path at low DCN bandwidth...
    assert rows[0][3] > 0.5
    # ...and topology-engineering more DCN bandwidth to the pods helps.
    times = [t for _, _, t, _ in rows]
    assert times == sorted(times, reverse=True)
