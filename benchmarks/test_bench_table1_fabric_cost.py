"""Table 1: cost and power of three fabrics for 4096 TPU v4 chips.

Workload: full bills of materials for the DCN (EPS Clos), lightwave
(bidi + 48 OCSes), and static direct-connect fabrics, normalized to the
static baseline.
"""

import pytest

from repro.tpu.costmodel import FABRIC_KINDS, FabricCostModel

from .conftest import report

PAPER = {"dcn": (1.24, 1.10), "lightwave": (1.06, 1.01), "static": (1.00, 1.00)}


def build_table():
    model = FabricCostModel()
    return model.relative_table(), model.lightwave_premium_fraction()


def test_bench_table1_fabric_cost(benchmark):
    table, premium = benchmark(build_table)
    rows = []
    for kind in FABRIC_KINDS:
        cost, power = table[kind]
        p_cost, p_power = PAPER[kind]
        rows.append(
            [kind, f"{p_cost:.2f}x / {p_power:.2f}x", f"{cost:.2f}x / {power:.2f}x"]
        )
    report(
        "Table 1: relative cost / power (normalized to static)",
        ["fabric", "paper", "measured"],
        rows,
    )
    print(f"\nLightwave premium over static: {premium:.1%} of system cost (paper: < 6%)")
    for kind in FABRIC_KINDS:
        cost, power = table[kind]
        assert cost == pytest.approx(PAPER[kind][0], abs=0.03)
        assert power == pytest.approx(PAPER[kind][1], abs=0.02)
    assert premium < 0.065
