"""Ablation (§6): higher-dimensional tori and the 300x300 OCS.

Quantifies the future-work claims: at fixed chip count, 4D/6D tori raise
bisection and cut latency versus 3D -- at the price of more ICI ports and
OCSes -- and a 300x300 switch more than doubles the pod envelope.
"""

import pytest

from repro.availability.model import TRANSCEIVER_TECHS
from repro.ocs.scaling import OCS_GENERATIONS, superpod_scaling_table
from repro.tpu.higher_torus import compare_dimensionalities, ocses_for_torus

from .conftest import report


def run_study():
    return (
        compare_dimensionalities(4096, dims_options=(2, 3, 4, 6)),
        superpod_scaling_table(TRANSCEIVER_TECHS["cwdm4_bidi"]),
    )


def test_bench_ablation_torus_dims(benchmark):
    torus, scaling = benchmark(run_study)
    report(
        "§6 ablation: torus dimensionality at 4096 chips",
        ["dims", "shape", "diameter", "avg hops", "bisection", "ports/chip", "OCSes"],
        [
            [
                d,
                "x".join(map(str, torus[d].shape)),
                torus[d].diameter,
                f"{torus[d].average_hops:.1f}",
                torus[d].bisection_links,
                torus[d].links_per_chip,
                ocses_for_torus(torus[d].shape),
            ]
            for d in (2, 3, 4, 6)
        ],
    )
    report(
        "§6 ablation: OCS generation scaling (CWDM4 bidi)",
        ["generation", "max cubes", "max chips", "BF16 EFLOPS"],
        [
            [
                OCS_GENERATIONS[k].name,
                int(scaling[k]["max_cubes"]),
                int(scaling[k]["max_chips"]),
                f"{scaling[k]['exaflops_bf16']:.1f}",
            ]
            for k in ("palomar", "next_gen")
        ],
    )
    # §6's claims, asserted:
    assert torus[4].bisection_links > torus[3].bisection_links
    assert torus[6].bisection_links > torus[4].bisection_links
    assert torus[4].diameter < torus[3].diameter
    assert torus[4].links_per_chip > torus[3].links_per_chip
    assert scaling["next_gen"]["max_chips"] > 2 * scaling["palomar"]["max_chips"]
