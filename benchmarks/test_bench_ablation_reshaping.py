"""Ablation (§6): mid-training slice reshaping.

A run with a data-parallel-heavy phase (LLM1-like) and a dense large-
model phase (LLM2-like) has per-phase optima 4x4x256 and 16x16x16.  The
study answers §6's open balance: reshaping wins as long as one reshape
(checkpoint + OCS reconfigure + re-init) costs less than the break-even.
"""

import pytest

from repro.ml.models import LLM_ZOO
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.reshaping import ReshapingStudy, TrainingPhase

from .conftest import report


def run_study():
    phases = [
        TrainingPhase("dp-heavy", LLM_ZOO["llm1"], steps=150),
        TrainingPhase("dense", LLM_ZOO["llm2"], steps=150),
    ]
    rows = []
    for cost in (30.0, 120.0, 600.0, 3600.0):
        plan = ReshapingStudy(TrainingStepModel(), reshape_cost_s=cost).plan(phases)
        rows.append((cost, plan))
    return rows


def test_bench_ablation_reshaping(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    base_plan = rows[0][1]
    report(
        "§6 ablation: reshape between phases vs one fixed shape",
        ["reshape cost", "fixed shape", "reshaped", "speedup"],
        [
            [
                f"{cost:g} s",
                "x".join(map(str, plan.fixed_shape)),
                " -> ".join("x".join(map(str, s)) for s in plan.phase_shapes),
                f"{plan.speedup:.2f}x",
            ]
            for cost, plan in rows
        ],
    )
    print(
        f"\nBreak-even reshape cost: {base_plan.breakeven_reshape_cost_s:,.0f} s "
        "(OCS reconfiguration itself is ~25 ms; checkpoint/restore dominates)"
    )
    # The per-phase optima are the Table 2 shapes.
    assert base_plan.phase_shapes == ((4, 4, 256), (16, 16, 16))
    # Cheap reshapes win; the speedup decays monotonically with cost.
    speedups = [plan.speedup for _, plan in rows]
    assert speedups[0] > 1.0
    assert speedups == sorted(speedups, reverse=True)
    # The break-even sits far above the fabric's millisecond switch time.
    assert base_plan.breakeven_reshape_cost_s > 1.0
