"""§4.2 DCN summary: topology+traffic engineering vs uniform mesh.

Workload: a 16-AB spine-free fabric under a skewed (gravity) long-lived
traffic matrix.  Topology engineering allocates trunks to demand; the
flow-level simulator measures flow completion time and delivered
throughput against the demand-oblivious uniform mesh.  Paper: ~10%
better flow completion and ~30% more throughput.
"""

import pytest

from repro.dcn.blocks import AggregationBlock
from repro.dcn.flowsim import FlowSimulator, fct_stats, generate_flows
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.topology_engineering import engineer_trunks
from repro.dcn.traffic import gravity_matrix
from repro.dcn.traffic_engineering import average_hop_count, route_demand

from .conftest import report

NUM_BLOCKS = 16
UPLINKS = 16


def run_comparison():
    blocks = [AggregationBlock(i, uplinks=UPLINKS) for i in range(NUM_BLOCKS)]
    tm = gravity_matrix(NUM_BLOCKS, total_gbps=90_000.0, concentration=1.0, seed=3)
    flows = generate_flows(
        tm.demand_gbps, num_flows=150, mean_size_gbit=200.0, duration_s=5.0, seed=2
    )
    out = {}
    for label, fabric in (
        ("uniform", SpineFreeFabric.uniform(blocks)),
        ("engineered", SpineFreeFabric(blocks, engineer_trunks(blocks, tm))),
    ):
        routing = route_demand(fabric, tm)
        records = FlowSimulator(fabric, routing).run(flows)
        stats = fct_stats(records)
        makespan = max(r.finish_s for r in records)
        delivered = sum(r.flow.size_gbit for r in records)
        out[label] = {
            "fct": stats,
            "throughput_gbps": delivered / makespan,
            "hops": average_hop_count(routing),
            "served_fraction": routing.throughput_fraction,
        }
    return out


def test_bench_dcn_traffic_efficiency(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    uni, eng = results["uniform"], results["engineered"]
    fct_gain = 1.0 - eng["fct"]["mean_s"] / uni["fct"]["mean_s"]
    tput_gain = eng["throughput_gbps"] / uni["throughput_gbps"] - 1.0
    report(
        "§4.2 DCN: engineered vs uniform mesh on skewed traffic",
        ["metric", "paper", "measured"],
        [
            ["FCT improvement", "~10%", f"{fct_gain:.1%}"],
            ["throughput increase", "~30%", f"{tput_gain:.1%}"],
            ["mean hops (uniform)", "-", f"{uni['hops']:.2f}"],
            ["mean hops (engineered)", "-", f"{eng['hops']:.2f}"],
        ],
    )
    # Shape targets: both metrics improve; magnitudes are load-dependent.
    assert fct_gain > 0.10
    assert tput_gain > 0.10
