"""§4.2.3: deployment speed and modularity.

Workload: a 64-rack build-out at one rack/day.  The lightwave pod brings
each rack online as it is verified; the static pod waits for the last
cable plus a whole-pod verification pass (the TPU v3 experience).  Also
reports the bidi-transceiver hardware savings (48 vs 96 OCSes).
"""

import pytest

from repro.scheduler.deployment import DeploymentModel, ocs_and_fiber_savings

from .conftest import report


def run_deployment():
    model = DeploymentModel(
        racks=64, rack_interval_d=1.0, rack_verify_d=2.0, pod_verify_d=14.0,
        horizon_d=120.0,
    )
    return model, model.incremental_outcome(), model.static_outcome()


def test_bench_deployment(benchmark):
    model, incremental, static = benchmark(run_deployment)
    duplex, bidi, saving = ocs_and_fiber_savings()
    report(
        "§4.2.3: deployment timeline (64 racks, 1 rack/day, 120-day window)",
        ["metric", "incremental (lightwave)", "static (v3-style)"],
        [
            ["first usable capacity", f"day {incremental.time_to_first_capacity_d:.0f}",
             f"day {static.time_to_first_capacity_d:.0f}"],
            ["full pod", f"day {incremental.completion_d:.0f}", f"day {static.completion_d:.0f}"],
            ["cube-days in window", f"{incremental.integrated_cube_days:.0f}",
             f"{static.integrated_cube_days:.0f}"],
        ],
    )
    report(
        "§4.2.3: bidi transceiver hardware savings",
        ["metric", "paper", "measured"],
        [
            ["OCSes (duplex -> bidi)", "96 -> 48", f"{duplex} -> {bidi}"],
            ["OCS + fiber saving", "50%", f"{saving:.0%}"],
        ],
    )
    assert incremental.time_to_first_capacity_d < static.time_to_first_capacity_d / 10
    assert incremental.ramp_advantage_over(static) > 1.5
    assert (duplex, bidi) == (96, 48)
    assert saving == pytest.approx(0.5)
