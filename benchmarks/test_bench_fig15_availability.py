"""Fig 15: fabric availability (a) and goodput vs slice size (b).

Workloads: (a) fabric availability for the three transceiver
technologies at 99.9% single-OCS availability; (b) goodput of static vs
reconfigurable fabrics across slice sizes and server availabilities at
the 97% system target, including a Monte-Carlo validation of the spared
slices.
"""

import pytest

from repro.availability.goodput import GoodputModel, reconfigurable_goodput, static_goodput
from repro.availability.model import TRANSCEIVER_TECHS, fabric_availability
from repro.availability.montecarlo import GoodputMonteCarlo

from .conftest import report

PAPER_15A = {"cwdm4_duplex": 0.90, "cwdm4_bidi": 0.95, "cwdm8_bidi": 0.98}


def run_fig15():
    fig_a = {
        key: fabric_availability(tech.num_ocses, 0.999)
        for key, tech in TRANSCEIVER_TECHS.items()
    }
    model = GoodputModel()
    fig_b = {
        sa: model.curve(sa, slice_cubes=(1, 2, 4, 8, 16, 32))
        for sa in (0.999, 0.995, 0.99)
    }
    return fig_a, fig_b


def test_bench_fig15_availability(benchmark):
    fig_a, fig_b = benchmark(run_fig15)
    report(
        "Fig 15a: fabric availability at 99.9% per-OCS availability",
        ["technology", "OCSes", "paper", "measured"],
        [
            [TRANSCEIVER_TECHS[k].name, TRANSCEIVER_TECHS[k].num_ocses,
             f"{PAPER_15A[k]:.0%}", f"{fig_a[k]:.1%}"]
            for k in ("cwdm4_duplex", "cwdm4_bidi", "cwdm8_bidi")
        ],
    )
    rows = []
    for sa in (0.999, 0.995, 0.99):
        for cubes in (1, 4, 16, 32):
            reconf, static = fig_b[sa][cubes]
            rows.append(
                [f"{sa:.3f}", cubes * 64, f"{reconf:.0%}", f"{static:.0%}"]
            )
    report(
        "Fig 15b: goodput at 97% system availability",
        ["server avail", "slice TPUs", "reconfigurable", "static"],
        rows,
    )
    mc = GoodputMonteCarlo(server_availability=0.999, seed=1, trials=20_000)
    empirical, spares = mc.reconfigurable_slice_availability(16)
    print(f"\nMonte-Carlo: 16-cube slice with {spares} spare(s) -> {empirical:.1%} availability")

    for key, expected in PAPER_15A.items():
        assert fig_a[key] == pytest.approx(expected, abs=0.012)
    # Paper anchors: 75%/25% at 1024 TPUs (99.9%), 50% at 2048 TPUs.
    assert fig_b[0.999][16] == (pytest.approx(0.75), pytest.approx(0.25))
    assert fig_b[0.999][32][0] == pytest.approx(0.50)
    assert fig_b[0.99][16][0] == pytest.approx(0.50)
    assert empirical >= 0.96
