"""§4.2.2 sidebar: graceful degradation under a single OCS failure.

Workload: each Table 2 model on its optimal slice; one of the 48 OCSes
fails, removing 1/16 of one torus dimension's inter-cube links.  The
paper's point -- a failure *degrades* performance rather than killing
slices -- is quantified as a per-model worst-case step-time hit.
"""

import pytest

from repro.ml.models import LLM_ZOO
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel
from repro.tpu.degradation import worst_case_step_degradation

from .conftest import report

SHAPES = {"llm0": (8, 16, 32), "llm1": (4, 4, 256), "llm2": (16, 16, 16)}


def run_study():
    model = TrainingStepModel()
    out = {}
    for key, shape in SHAPES.items():
        plan = ParallelismPlan.for_shape(LLM_ZOO[key], shape)
        axis, hit = worst_case_step_degradation(plan, model)
        out[key] = (shape, axis, hit)
    return out


def test_bench_ocs_failure_degradation(benchmark):
    results = benchmark(run_study)
    report(
        "§4.2.2: worst single-OCS failure, per Table 2 placement",
        ["model", "slice", "worst dimension", "step-time hit"],
        [
            [
                LLM_ZOO[key].name,
                "x".join(map(str, shape)),
                "xyz"[axis],
                f"+{hit:.1%}",
            ]
            for key, (shape, axis, hit) in results.items()
        ],
    )
    print(
        "\nOne OCS of 48 is 1/16 of one dimension's links: jobs slow a few\n"
        "percent and keep running -- no slice is lost (the static fabric's\n"
        "alternative is losing the affected slice entirely, cf. Fig 15b)."
    )
    for key, (_, _, hit) in results.items():
        assert 0.0 <= hit < 0.07  # graceful: single-digit percent
    # The communication-heavy baseline placement feels it the most.
    assert results["llm2"][2] >= results["llm0"][2] * 0.5
