"""Table C.1: OCS technology comparison and the MEMS selection.

Workload: score every candidate switching technology against the §2.3
lightwave-fabric requirements (radix, loss, switching time) and verify
the registry reproduces the appendix table's conclusion: free-space MEMS
is the (cheapest) qualifying technology.
"""

import pytest

from repro.ocs.technologies import (
    TECHNOLOGY_REGISTRY,
    qualifying_technologies,
)

from .conftest import report


def run_selection():
    quals = qualifying_technologies(min_radix=128, max_loss_db=3.0, max_switching_time_s=1.0)
    return quals


def test_bench_tablec1_ocs_tech(benchmark):
    quals = benchmark(run_selection)
    rows = []
    for key, tech in TECHNOLOGY_REGISTRY.items():
        rows.append(
            [
                tech.name,
                tech.cost.name.title(),
                f"{tech.port_count[0]}x{tech.port_count[1]}",
                f"{tech.switching_time_s:g} s",
                f"{tech.insertion_loss_db:g} dB",
                "yes" if tech.latching else "no",
                "QUALIFIES" if tech in quals else "-",
            ]
        )
    report(
        "Table C.1: OCS technology comparison",
        ["technology", "cost", "ports", "switch time", "loss", "latching", "verdict"],
        rows,
    )
    names = [t.name for t in quals]
    assert names[0] == "MEMS"  # cheapest qualifying option
    assert "Robotic" not in names  # minutes-per-connection switching
    assert "Guided Wave" not in names  # radix 16, 6 dB loss
