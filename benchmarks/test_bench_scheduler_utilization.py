"""§4.2.4: scheduling efficiency of the reconfigurable superpod.

Workload: a saturated synthetic job trace (mix of 1..32-cube jobs) on a
64-cube pod, scheduled with TPU v3-style contiguous placement vs
OCS-enabled any-cubes placement.  Paper: the v4 fleet runs at > 98%
utilization despite 4x larger slices.
"""

import pytest

from repro.scheduler.allocator import ContiguousAllocator, ReconfigurableAllocator
from repro.scheduler.defrag import largest_placeable_job
from repro.scheduler.requests import WorkloadGenerator
from repro.scheduler.simulator import SchedulerSimulation
from repro.tpu.superpod import Superpod

from .conftest import report

PAPER_UTILIZATION = 0.98


def run_comparison():
    # Offered load ~1.4x pod capacity: heavy but not an infinite backlog
    # (under total saturation even a fragmented pod stays full).
    gen = WorkloadGenerator(
        arrival_rate_per_s=1 / 270.0,
        mean_duration_s=7200.0,
        size_mix={1: 0.4, 2: 0.25, 4: 0.2, 8: 0.1, 16: 0.04, 32: 0.01},
        seed=13,
    )
    trace = gen.generate(500)
    out = {}
    for label, allocator in (
        ("reconfigurable", ReconfigurableAllocator(Superpod())),
        ("contiguous", ContiguousAllocator(Superpod())),
    ):
        metrics = SchedulerSimulation(
            allocator, backfill=True, warmup_s=20_000.0
        ).run(trace)
        out[label] = metrics
    return out


def test_bench_scheduler_utilization(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rec, con = results["reconfigurable"], results["contiguous"]
    report(
        "§4.2.4: pod utilization under a saturated job mix",
        ["policy", "utilization", "mean wait (h)", "jobs done"],
        [
            ["reconfigurable (v4+OCS)", f"{rec.utilization:.1%}",
             f"{rec.mean_wait_s / 3600:.2f}", rec.completed],
            ["contiguous (v3-style)", f"{con.utilization:.1%}",
             f"{con.mean_wait_s / 3600:.2f}", con.completed],
        ],
    )
    print(f"\nPaper: > {PAPER_UTILIZATION:.0%} fleet utilization with the lightwave fabric")
    assert rec.utilization > PAPER_UTILIZATION
    assert rec.utilization > con.utilization
