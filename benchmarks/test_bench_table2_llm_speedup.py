"""Table 2: optimal slice configuration and speedup for three LLMs.

Workload: exhaustive slice-shape search over every (model, data1, data2)
factorization of 4096 chips (extents in multiples of the 4-chip cube
edge) using the calibrated training-step cost model -- the stand-in for
the paper's NAS system.
"""

import pytest

from repro.ml.models import LLM_ZOO
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import SliceShapeSearch

from .conftest import report

PAPER = {
    "llm0": ("35B", (8, 16, 32), 1.54),
    "llm1": ("70B", (4, 4, 256), 3.32),
    "llm2": ("150B", (16, 16, 16), 1.00),
}


def run_search():
    search = SliceShapeSearch(TrainingStepModel())
    return {key: search.search(LLM_ZOO[key]) for key in LLM_ZOO}


def test_bench_table2_llm_speedup(benchmark):
    results = benchmark(run_search)
    rows = []
    for key in ("llm0", "llm1", "llm2"):
        size, shape, speedup = PAPER[key]
        r = results[key]
        rows.append(
            [
                r.model.name,
                size,
                "x".join(map(str, shape)) + f" ({speedup:.2f}x)",
                "x".join(map(str, r.best_shape)) + f" ({r.speedup_vs_baseline:.2f}x)",
            ]
        )
    report(
        "Table 2: optimal slice shape and speedup vs static 16x16x16",
        ["model", "params", "paper", "measured"],
        rows,
    )
    for key, (_, shape, speedup) in PAPER.items():
        assert results[key].best_shape == shape
        assert results[key].speedup_vs_baseline == pytest.approx(speedup, abs=0.25)
