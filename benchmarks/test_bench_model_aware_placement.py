"""§4.2.1 end to end: model-aware placement across a mixed fleet.

Workload: a pod hosting two concurrent jobs (a data-parallel-heavy 8B
experiment and the 70B LLM1), placed (a) on balanced default shapes --
what a shape-oblivious scheduler does -- and (b) by the model-aware
allocator that runs the slice-shape search per job.  The metric is
aggregate training throughput: the "late binding" of slice shape to
workload is where Table 2's speedups reach the fleet.
"""

import pytest

from repro.core.ids import JobId
from repro.ml.models import LLM_ZOO, LlmConfig
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel
from repro.scheduler.model_aware import ModelAwareAllocator
from repro.scheduler.requests import balanced_cube_shape
from repro.tpu.superpod import Superpod

from .conftest import report

SMALL = LlmConfig.from_params("EXP-8B", 8e9, 32, 2048, 4096)
JOBS = (("exp", SMALL, 16), ("llm1", LLM_ZOO["llm1"], 48))


def run_comparison():
    step_model = TrainingStepModel()
    # Model-aware placement.
    alloc = ModelAwareAllocator(Superpod(), step_model=step_model)
    aware = {
        name: alloc.place(JobId(name), model, cubes)
        for name, model, cubes in JOBS
    }
    # Shape-oblivious baseline: the most balanced shape per budget.
    oblivious = {}
    for name, model, cubes in JOBS:
        chip_shape = tuple(c * 4 for c in balanced_cube_shape(cubes))
        plan = ParallelismPlan.for_shape(model, chip_shape)
        oblivious[name] = (
            chip_shape,
            model.global_batch_seqs / step_model.step_time_s(plan),
        )
    return aware, oblivious


def test_bench_model_aware_placement(benchmark):
    aware, oblivious = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    total_aware, total_oblivious = 0.0, 0.0
    for name, model, cubes in JOBS:
        a = aware[name]
        shape_o, tput_o = oblivious[name]
        total_aware += a.throughput_seqs_per_s
        total_oblivious += tput_o
        rows.append(
            [
                f"{name} ({model.num_params / 1e9:.0f}B, {cubes} cubes)",
                "x".join(map(str, shape_o)) + f" ({tput_o:.2f} seq/s)",
                "x".join(map(str, a.chip_shape))
                + f" ({a.throughput_seqs_per_s:.2f} seq/s)",
            ]
        )
    report(
        "Model-aware vs shape-oblivious placement (training throughput)",
        ["job", "balanced shape", "model-aware shape"],
        rows,
    )
    gain = total_aware / total_oblivious
    print(f"\nFleet throughput gain from shape-aware placement: {gain:.2f}x")
    # Both jobs run concurrently on one pod.
    assert sum(cubes for _, _, cubes in JOBS) == 64
    # LLM1 lands on its Table 2 family (tensor dim 4) even at 48 cubes.
    assert aware["llm1"].chip_shape[0] == 4
    assert gain > 1.3
