"""§1/§6 use case: campus-scale topology engineering over service churn.

Workload: 12 clusters over 4 service epochs (gravity traffic whose hot
pairs wander as services turn up and down).  Metric: the admissible load
multiple each operating mode sustains, plus the OCS churn the
reconfigurable mode pays.
"""

import pytest

from repro.dcn.blocks import AggregationBlock
from repro.dcn.campus import CampusStudy, service_epochs

from .conftest import report


def run_study():
    blocks = [AggregationBlock(i, uplinks=16) for i in range(12)]
    epochs = service_epochs(
        12, num_epochs=4, total_gbps=10_000.0, concentration=1.4, seed=2
    )
    return CampusStudy(blocks, epochs).compare()


def test_bench_campus(benchmark):
    comparison = benchmark.pedantic(run_study, rounds=1, iterations=1)
    report(
        "Campus fabric over 4 service epochs (admissible load multiple)",
        ["mode", "mean admissible", "worst epoch", "OCS moves"],
        [
            [
                mode,
                f"{comparison[mode]['mean_admissible']:.2f}x",
                f"{comparison[mode]['worst_admissible']:.2f}x",
                int(comparison[mode]["total_moves"]),
            ]
            for mode in ("uniform", "static-engineered", "reconfigurable")
        ],
    )
    reconf = comparison["reconfigurable"]
    assert reconf["mean_admissible"] >= comparison["uniform"]["mean_admissible"]
    assert reconf["mean_admissible"] >= comparison["static-engineered"]["mean_admissible"]
    assert reconf["total_moves"] > 0  # churn is the price, OCS makes it cheap
