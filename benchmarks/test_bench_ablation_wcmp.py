"""Ablation: flow path policy (primary-path vs WCMP hashing).

The §4.2 DCN comparison uses primary-path routing; this ablation checks
how much flow-level WCMP (hashing flows over the routed path set) closes
the uniform-vs-engineered gap -- transit spreading helps the uniform mesh
more, since the engineered topology already has direct capacity where
the traffic is.
"""

import pytest

from repro.dcn.blocks import AggregationBlock
from repro.dcn.flowsim import FlowSimulator, fct_stats, generate_flows
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.topology_engineering import engineer_trunks
from repro.dcn.traffic import gravity_matrix
from repro.dcn.traffic_engineering import route_demand

from .conftest import report


def run_ablation():
    n = 16
    blocks = [AggregationBlock(i, uplinks=16) for i in range(n)]
    tm = gravity_matrix(n, total_gbps=90_000.0, concentration=1.0, seed=3)
    flows = generate_flows(tm.demand_gbps, 150, mean_size_gbit=200.0,
                           duration_s=5.0, seed=2)
    out = {}
    for topo_label, fabric in (
        ("uniform", SpineFreeFabric.uniform(blocks)),
        ("engineered", SpineFreeFabric(blocks, engineer_trunks(blocks, tm))),
    ):
        routing = route_demand(fabric, tm)
        for policy in ("primary", "wcmp"):
            sim = FlowSimulator(fabric, routing, path_policy=policy, seed=4)
            records = sim.run(flows)
            out[(topo_label, policy)] = fct_stats(records)["mean_s"]
    return out


def test_bench_ablation_wcmp(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report(
        "Ablation: path policy x topology (mean FCT, seconds)",
        ["topology", "primary", "wcmp"],
        [
            [label, f"{results[(label, 'primary')]:.3f}",
             f"{results[(label, 'wcmp')]:.3f}"]
            for label in ("uniform", "engineered")
        ],
    )
    gap_primary = results[("uniform", "primary")] / results[("engineered", "primary")]
    gap_wcmp = results[("uniform", "wcmp")] / results[("engineered", "wcmp")]
    print(f"\nuniform/engineered FCT ratio: primary {gap_primary:.2f}x, "
          f"wcmp {gap_wcmp:.2f}x")
    # Engineered stays ahead under both policies...
    assert results[("engineered", "primary")] < results[("uniform", "primary")]
    assert results[("engineered", "wcmp")] < results[("uniform", "wcmp")]
    # ...and WCMP narrows the gap (helps the uniform mesh more).
    assert gap_wcmp < gap_primary
