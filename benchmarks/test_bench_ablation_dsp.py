"""Ablation: the DSP stack, knob by knob.

Sweeps OIM suppression depth and the inner-FEC correction radius to show
which part of the Figs 11-12 gains each mechanism delivers, and the
combined OIM + SFEC sensitivity ladder the production links rely on.
"""

import pytest

from repro.optics.ber import receiver_sensitivity_dbm
from repro.optics.fec import ConcatenatedFec, InnerSoftFec, KP4_BER_THRESHOLD
from repro.optics.pam4 import Pam4LinkModel

from .conftest import report

MPI_DB = -32.0


def run_ablation():
    base = receiver_sensitivity_dbm(Pam4LinkModel(mpi_db=MPI_DB))
    oim_rows = []
    for suppression in (0.0, 6.0, 12.0, 18.0):
        sens = receiver_sensitivity_dbm(
            Pam4LinkModel(mpi_db=MPI_DB, oim_suppression_db=suppression)
        )
        oim_rows.append((suppression, sens, base - sens))
    fec_rows = []
    for t_eff in (1, 2, 3):
        fec = ConcatenatedFec(inner=InnerSoftFec(t_eff=t_eff))
        threshold = fec.inner_input_threshold()
        sens = receiver_sensitivity_dbm(
            Pam4LinkModel(mpi_db=MPI_DB), target_ber=threshold
        )
        fec_rows.append((t_eff, threshold, sens, base - sens))
    combined = receiver_sensitivity_dbm(
        Pam4LinkModel(mpi_db=MPI_DB, oim_suppression_db=12.0),
        target_ber=ConcatenatedFec().inner_input_threshold(),
    )
    return base, oim_rows, fec_rows, combined


def test_bench_ablation_dsp(benchmark):
    base, oim_rows, fec_rows, combined = benchmark(run_ablation)
    report(
        f"Ablation: OIM suppression depth (MPI {MPI_DB:g} dB, target 2e-4)",
        ["suppression", "sensitivity", "gain"],
        [[f"{s:g} dB", f"{sens:.2f} dBm", f"{g:+.2f} dB"] for s, sens, g in oim_rows],
    )
    report(
        "Ablation: inner-FEC correction radius",
        ["t_eff", "slicer threshold", "sensitivity", "gain"],
        [
            [t, f"{th:.2e}", f"{sens:.2f} dBm", f"{g:+.2f} dB"]
            for t, th, sens, g in fec_rows
        ],
    )
    print(
        f"\nCombined OIM(12 dB) + SFEC ladder: {base:.2f} dBm -> {combined:.2f} dBm "
        f"({base - combined:+.2f} dB total)"
    )
    # Monotone gains in both knobs.
    oim_gains = [g for _, _, g in oim_rows]
    assert oim_gains == sorted(oim_gains)
    fec_gains = [g for _, _, _, g in fec_rows]
    assert fec_gains == sorted(fec_gains)
    # Diminishing returns: going 12 -> 18 dB buys less than 6 -> 12.
    assert (oim_rows[3][2] - oim_rows[2][2]) < (oim_rows[2][2] - oim_rows[1][2])
    # The combined ladder beats either mechanism alone.
    assert base - combined > max(oim_gains[-1], fec_gains[-1])
