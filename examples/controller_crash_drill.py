#!/usr/bin/env python3
"""Controller crash drill: kill the fabric manager at every WAL offset.

Walks the durable control plane end-to-end (§3.2.2's management-plane
investment, made runnable):

1. build a 3-OCS fabric, journal a dozen links through the
   write-ahead-logged ``DurableController``, and reconfigure;
2. crash the controller at *every* instrumented step of the multi-OCS
   transaction (``CrashSchedule``), including a torn final write;
3. recover each crash from the journal alone — committed transactions
   roll forward, uncommitted ones roll back, both byte-deterministically;
4. run the anti-entropy ``Reconciler`` to prove intent and hardware
   agree, then print the per-crash-point outcome table;
5. demo the fleet health watchdog: a flapping transceiver is damped,
   quarantined onto a spare, and released after the hold-down.

Run: ``python examples/controller_crash_drill.py`` (finishes in seconds;
this is also the CI recovery smoke drill).
"""

from repro.analysis.tables import render_table
from repro.control import CrashSchedule, DurableController, Reconciler, recover
from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import ControllerCrash
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId
from repro.faults.chaos import controller_crash_recovery, rolling_transceiver_flaps

RADIX = 16
NUM_OCSES = 3
LINKS_PER_OCS = 4


def build_manager() -> FabricManager:
    mgr = FabricManager()
    for i in range(NUM_OCSES):
        mgr.add_switch(OcsId(i), SimpleSwitch(RADIX))
    return mgr


def shifted_targets(mgr: FabricManager) -> dict:
    out = {}
    for i in range(NUM_OCSES):
        circuits = dict(mgr.switch(OcsId(i)).state.circuits)
        for n in sorted(circuits)[:2]:
            circuits[n] = circuits[n] + 4
        out[OcsId(i)] = CrossConnectMap.from_circuits(RADIX, circuits)
    return out


def main() -> None:
    # -- straight-line run: the committed state every crash must reach --
    mgr0 = build_manager()
    ctl0 = DurableController(manager=mgr0)
    for i in range(NUM_OCSES):
        for n in range(LINKS_PER_OCS):
            ctl0.establish(LinkId(f"lk-{i}-{n}"), OcsId(i), n, n + 8)
    wal_bytes = bytes(ctl0.wal.storage)
    ctl0.reconfigure(shifted_targets(mgr0))
    committed = ctl0.state_digest()
    print(f"journal after setup: {len(wal_bytes)} bytes")
    print(f"committed state digest: {committed[:16]}…")

    # -- crash sweep: one controller death per instrumented step --
    rows = []
    step = 1
    while True:
        mgr = build_manager()
        storage = bytearray(wal_bytes)
        ctl, _ = recover(mgr, storage)
        crash = CrashSchedule(at_step=step, torn_bytes=9 if step == 1 else 0)
        ctl.crash = crash
        ctl.wal.crash = crash
        try:
            ctl.reconfigure(shifted_targets(mgr))
        except ControllerCrash:
            _, report = recover(mgr, storage)
            clean = mgr.verify_links() == ()
            converged = Reconciler(manager=mgr, drop_orphans=False).run().converged
            rows.append(
                [
                    str(step),
                    crash.fired_label,
                    report.open_txn,
                    str(report.tail_bytes_dropped),
                    "yes" if clean and converged else "NO",
                    report.state_digest[:12] + "…",
                ]
            )
            step += 1
            continue
        break

    print(f"\nCrash sweep: {len(rows)} crash points, all recovered:\n")
    print(
        render_table(
            ["step", "crash point", "open txn", "torn B", "verified", "digest"],
            rows,
        )
    )
    forward = {r[5] for r in rows if r[2] == "rolled-forward"}
    backward = {r[5] for r in rows if r[2] != "rolled-forward"}
    print(f"\nrolled-forward digests: {sorted(forward)} (== committed prefix:"
          f" {committed[:12] + '…' in forward})")
    print(f"rolled-back digests:    {sorted(backward)} (single outcome:"
          f" {len(backward) == 1})")

    # -- the same sweep as a registered chaos scenario --
    report = controller_crash_recovery(seed=0)
    print("\ncontroller_crash_recovery scenario metrics:")
    for k, v in sorted(report.metrics.items()):
        print(f"  {k:26s} {v:g}")

    # -- flap damping: quarantine the noisy circuit, spare the rest --
    damped = rolling_transceiver_flaps(
        seed=2, num_links=4, horizon_s=300.0, damping=True, spares=1
    )
    print("\nrolling_transceiver_flaps --damping metrics:")
    for k, v in sorted(damped.metrics.items()):
        print(f"  {k:26s} {v:g}")
    print(f"\nreport digests: crash {report.digest()[:16]}… "
          f"damped-flaps {damped.digest()[:16]}…")


if __name__ == "__main__":
    main()
