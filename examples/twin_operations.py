#!/usr/bin/env python3
"""Digital-twin operations: record, forecast, and rehearse a change.

The pre-commit workflow an OCS fleet operator runs before pushing a
policy change (§3.2.2's telemetry loop, Mission Apollo's qualification
discipline), end to end:

1. **record** -- run the overload serving drill and capture its fleet
   timeline (offered/ok/shed counts, per-bucket p99, brownout level)
   together with the replay parameters that make it reconstructible;
2. **stream** -- push the timeline through the windowed time-series
   pipeline and read off the derived series a dashboard would show
   (EWMA-smoothed p99, shed rate);
3. **forecast** -- train the availability forecaster on a chaos
   ensemble and score it against the naive last-value bar on held-out
   members;
4. **rehearse** -- price candidate policies in the what-if planner and
   show each one's predicted SLO deltas, then ask the approval gate
   whether the committed thresholds would let it ship.

Everything is seeded and sim-clocked: run it twice and every digest
printed at the end is byte-identical.

Run: ``python examples/twin_operations.py``
"""

import argparse

from repro.analysis.tables import render_table
from repro.faults.ensemble import chaos_ensemble_serial
from repro.obs.timeseries import TimeSeriesPipeline, WindowSpec
from repro.twin import (
    TwinPolicy,
    WhatIfPlanner,
    record_fleet_timeline,
    train_availability_forecaster,
)
from repro.twin.drill import ENSEMBLE_KWARGS, ENSEMBLE_SCENARIO

CANDIDATES = (
    TwinPolicy(name="pin_brownout_2", pinned_brownout=2),
    TwinPolicy(name="quarantine_quarter", quarantine_fraction=0.25),
    TwinPolicy(name="halve_admission", global_rate_scale=0.5,
               tenant_rate_scale=0.5),
)

#: The thresholds the approval gate consults (the serving SLOs from
#: benchmarks/slo_thresholds.json, in the twin_plan_ namespace).
GATE = {"twin_plan_serve_p99_ms": 350.0, "twin_plan_serve_shed_rate": 0.25}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--primaries", type=int, default=1_500)
    args = parser.parse_args()

    # 1. Record the fleet timeline from one overload drill.
    timeline = record_fleet_timeline(
        seed=args.seed, num_primaries=args.primaries, name="change-window"
    )
    print(f"recorded {len(timeline.samples)} samples over "
          f"{timeline.horizon_s:.2f}s  (digest {timeline.digest()[:16]})")
    print(render_table(
        ["baseline SLO", "value"],
        [[k, f"{v:.6g}"] for k, v in sorted(timeline.baseline.items())],
    ))

    # 2. Stream it through the windowed-aggregation pipeline.
    pipeline = TimeSeriesPipeline(WindowSpec(width_ms=200.0))
    pipeline.replay(timeline.to_records())
    pipeline.flush()
    p99 = pipeline.ewma("serve.latency_p99_ms", alpha=0.4)
    print(f"\n{len(pipeline.aggregates())} window aggregates "
          f"(digest {pipeline.digest()[:16]}); "
          f"EWMA p99 ends at {p99[-1][1]:.1f} ms")

    # 3. Train + score the availability forecaster.
    reports = chaos_ensemble_serial(
        ENSEMBLE_SCENARIO,
        [args.seed * 1_000 + i for i in range(24)],
        dict(ENSEMBLE_KWARGS),
    )
    evaluation = train_availability_forecaster(reports)
    print(f"\nforecaster: {evaluation.model_name}  "
          f"model MAE {evaluation.model_mae:.5f} vs "
          f"naive {evaluation.naive_mae:.5f}  "
          f"(beats naive: {evaluation.beats_naive}, "
          f"coverage {evaluation.coverage:.0%})")

    # 4. Rehearse the candidate policies in the what-if planner.
    planner = WhatIfPlanner(timeline)
    rows = []
    for policy in CANDIDATES:
        ok, violations, report = planner.approve(policy, GATE)
        rows.append([
            policy.name,
            f"{report.predicted['serve_p99_ms']:.1f}",
            f"{report.deltas['serve_p99_ms']:+.1f}",
            f"{report.deltas['availability']:+.4f}",
            "ship" if ok else "HOLD: " + ",".join(v[0] for v in violations),
            report.digest()[:12],
        ])
    print("\nWhat-if rehearsal (predicted before commit):")
    print(render_table(
        ["policy", "p99 ms", "Δp99", "Δavail", "gate", "plan digest"], rows,
    ))


if __name__ == "__main__":
    main()
