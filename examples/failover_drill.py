#!/usr/bin/env python3
"""Failover day: the replicated control plane riding out a partition storm.

A single SDN controller is the availability ceiling of an OCS fabric
(the paper's Orion apps; Mission Apollo's production postmortems).
This drill serves the same open-loop tenant stream as the overload
drill, but the controller is now a 3-replica group
(``repro.control.replication``) and the fault timeline is the HA
triple: every ~1.2 s one replica crashes, another is marooned behind a
network partition, and a third's clock is skewed -- while tenants keep
allocating slices and pushing traffic updates.

What to watch:

1. the breaker's open edge now triggers a **leader election** and
   request redirection instead of pure refusal;
2. epochs fence deposed leaders -- their in-flight writes die as
   counted fencing rejections, never double-applies;
3. client-acked commits survive every handoff
   (``committed_ops_lost == 0``, the hard bar);
4. the surviving leader's state digest equals a from-scratch serial
   replay of the replicated log, byte for byte.

Run: ``python examples/failover_drill.py [--seed N] [--full]
[--replicas N] [--tenants N]``
"""

import argparse

from repro.analysis.tables import render_table
from repro.serve.drill import failover_slos, run_failover_drill


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--full", action="store_true",
                        help="the 100k-request profile instead of the smoke one")
    parser.add_argument("--replicas", type=int, default=3,
                        help="controller group size (odd)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant population override")
    args = parser.parse_args()

    result = run_failover_drill(
        seed=args.seed,
        smoke=not args.full,
        num_replicas=args.replicas,
        num_tenants=args.tenants,
    )
    summary = result["summary"]

    print(f"Failover drill  seed={args.seed}  replicas={args.replicas}  "
          f"offered={summary['offered']} requests "
          f"at {summary['offered_rate_per_s']:.0f}/s "
          f"over {summary['horizon_s']:.1f}s")

    # ------------------------------------------------------------------ #
    # The HA ledger: elections, fencing, and what the client saw.
    # ------------------------------------------------------------------ #
    print("\nControl-plane failovers:")
    print(render_table(
        ["measure", "value"],
        [
            ["failovers (outage windows closed)", f"{summary['failovers']}"],
            ["elections", f"{summary['elections']}"],
            ["fencing rejections", f"{summary['fencing_rejections']}"],
            ["failover p99", f"{summary['failover_p99_s']:.3f} s"],
            ["availability", f"{summary['availability']:.3f}"],
        ],
    ))

    # ------------------------------------------------------------------ #
    # The safety invariants (the drill raises if any fails).
    # ------------------------------------------------------------------ #
    print("\nSafety invariants:")
    print(f"  committed ops lost      : {summary['committed_ops_lost']} "
          "(bar: 0, always)")
    print(f"  replay digest           : {summary['replay_digest'][:16]}... "
          "== live state")
    print(f"  ok / error / shed       : {summary['ok']} / {summary['error']} "
          f"/ {summary['shed']}")

    print("\nSLOs (as the CI gate sees them):")
    for name, value in sorted(failover_slos(summary).items()):
        print(f"  {name}: {value:.4f}")

    print("\nSame seed, same bytes: rerun with the same --seed and every "
          "number above is identical.")


if __name__ == "__main__":
    main()
