#!/usr/bin/env python3
"""Chaos drill: inject the paper's failure modes and watch the fabric cope.

Runs the four ``repro.faults.chaos`` scenarios end-to-end:

1. ``single_ocs_loss`` -- one OCS down in a 4096-chip superpod; the
   degraded-routing step-time hit is cross-checked against the analytic
   model (§4.2.2) and the long-run Monte-Carlo availability against the
   Fig 15 renewal analytic;
2. ``correlated_hv_batch`` -- an HV driver board FRU dies on several
   OCSes at once (§3.2.1); resilient transactions retry through injected
   control-plane RPC timeouts to restore every circuit;
3. ``rolling_transceiver_flaps`` -- a rolling wave of transceiver flaps
   and the time-weighted link availability it costs;
4. ``repair_race`` -- fiber pinches racing the telemetry repair loop
   until the spare pool runs dry and ``CapacityError`` surfaces.

Every run is a pure function of the seed: the report digests printed at
the end are byte-stable and guard the determinism tests.

Run: ``python examples/chaos_drill.py`` (full single-OCS horizon), or
``python examples/chaos_drill.py --smoke`` for the <30s CI drill.
"""

import argparse

from repro.analysis.tables import render_table
from repro.faults.chaos import SMOKE_KWARGS, run_scenario, run_smoke


def describe(report) -> None:
    print(f"\n=== {report.scenario} (seed {report.seed}) ===")
    rows = [[k, f"{v:.6g}"] for k, v in sorted(report.metrics.items())]
    rows.append(["mean goodput", f"{report.mean_goodput():.4f}"])
    print(render_table(["metric", "value"], rows))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short horizons (CI-sized, <30s)"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.smoke:
        reports = run_smoke(seed=args.seed)
    else:
        reports = {
            name: run_scenario(
                name,
                seed=args.seed,
                **({} if name == "single_ocs_loss" else SMOKE_KWARGS[name]),
            )
            for name in sorted(SMOKE_KWARGS)
        }

    for name in sorted(reports):
        describe(reports[name])

    single = reports["single_ocs_loss"].metrics
    print("\nCross-checks (single_ocs_loss):")
    print(
        f"  step-time hit: chaos {single['step_hit_chaos']:.4%} vs "
        f"analytic {single['step_hit_analytic']:.4%} "
        f"(rel err {single['step_hit_rel_error']:.2%})"
    )
    print(
        f"  availability:  MC {single['availability_mc']:.4%} vs "
        f"Fig 15 analytic {single['availability_analytic']:.4%} "
        f"(abs err {single['availability_abs_error']:.4f})"
    )

    print("\nReport digests (seed-stable):")
    for name in sorted(reports):
        print(f"  {name:26s} {reports[name].digest()[:16]}…")


if __name__ == "__main__":
    main()
