#!/usr/bin/env python3
"""Overload day: the fabric serving layer riding out a fault storm.

The control plane is a long-running shared service (§4.2): tenants
allocate slices, re-stripe circuits, push traffic-matrix updates, and
query telemetry, open-loop -- the requests keep coming whether or not
the service is keeping up.  This drill offers ~3x the admitted
capacity while a controller-crash + RPC-timeout storm rolls through,
and shows every overload defense firing in sequence:

1. token-bucket admission refuses the overflow (hot tenant first);
2. the bounded queue sheds explicitly, worst-class-newest first;
3. the retry budget caps downstream attempts at 1.5x starts;
4. the circuit breaker fast-fails while the controller is down;
5. brownout defers maintenance, batches updates, serves cached
   telemetry -- and recovers when the storm passes;
6. the commit log replays to the exact live fabric state (nothing
   silently dropped, nothing double-applied).

Run: ``python examples/serving_drill.py [--seed N] [--full] [--tenants N]``
"""

import argparse
from collections import Counter

from repro.analysis.tables import render_table
from repro.serve.drill import run_serve_drill
from repro.serve.requests import Outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--full", action="store_true",
                        help="the 100k-request profile instead of the smoke one")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant population override (default: pinned profile)")
    args = parser.parse_args()

    result = run_serve_drill(
        seed=args.seed, smoke=not args.full, num_tenants=args.tenants
    )
    summary = result["summary"]
    report = result["report"]

    print(f"Overload drill  seed={args.seed}  "
          f"offered={summary['offered']} requests "
          f"at {summary['offered_rate_per_s']:.0f}/s "
          f"over {summary['horizon_s']:.1f}s")

    # ------------------------------------------------------------------ #
    # Where every request ended up (the partition invariant).
    # ------------------------------------------------------------------ #
    print("\nOutcome partition (offered == rejected + shed + admitted):")
    rows = []
    for outcome in Outcome:
        n = summary[outcome.value]
        rows.append([outcome.value, f"{n}", f"{n / summary['offered']:.1%}"])
    print(render_table(["outcome", "count", "share"], rows))

    # ------------------------------------------------------------------ #
    # The defenses, one line each.
    # ------------------------------------------------------------------ #
    print("\nOverload defenses:")
    cap = 1.0 + report.config.retry_ratio
    print(f"  admission   rejected {summary['rejected']} "
          f"(hot tenant throttled to its fair share)")
    print(f"  queue       shed {summary['shed']} explicitly "
          f"({len(report.shed_records)} shed records, none silent)")
    print(f"  retries     {summary['downstream_attempts']} attempts / "
          f"{summary['deposits']} starts = "
          f"{summary['serve_retry_amplification']:.3f}x "
          f"(provable cap {cap:.1f}x)")
    print(f"  breaker     {summary['breaker_trips']} trips, "
          f"{summary['breaker_fast_fails']} fast fails "
          f"(no downstream load while open)")
    print(f"  brownout    {summary['brownout_transitions']} level changes; "
          f"{summary['batches_flushed']} coalesced update batches, "
          f"{summary['telemetry_cache_hits']} cached telemetry answers, "
          f"{summary['maintenance_deferred']} maintenance ticks deferred")
    print(f"  recovery    {summary['recoveries']} controller recoveries "
          f"replayed from the WAL")

    # ------------------------------------------------------------------ #
    # Who got hurt: sheds concentrate on the cheap service classes.
    # ------------------------------------------------------------------ #
    shed_kinds = Counter(s.victim.kind.value for s in report.shed_records)
    if shed_kinds:
        print("\nShed victims by class (telemetry sacrificed before mutations):")
        for kind, n in shed_kinds.most_common():
            print(f"  {kind:16s} {n}")

    # ------------------------------------------------------------------ #
    # Latency + the determinism contract.
    # ------------------------------------------------------------------ #
    print(f"\nAdmitted-request latency: "
          f"p50 {summary['serve_p50_ms']:.1f} ms, "
          f"p99 {summary['serve_p99_ms']:.1f} ms")
    replay_ok = summary["replay_digest"] == summary["state_digest"]
    print(f"Replay check: commit log -> fresh fabric "
          f"{'MATCHES' if replay_ok else 'DIVERGES FROM'} live state "
          f"({summary['state_digest'][:16]}...)")
    print(f"Outcomes digest: {summary['outcomes_digest'][:16]}... "
          f"(same seed reproduces this byte for byte)")


if __name__ == "__main__":
    main()
