#!/usr/bin/env python3
"""Scheduling scenario: a day in the life of the superpod scheduler.

Replays a synthetic job trace against the TPU v3-style contiguous policy
and the OCS-enabled reconfigurable policy, with cube failures injected --
§4.2.4's efficiency story plus §4.2.2's availability story in one run.

Run: ``python examples/cluster_scheduling.py``
"""

from repro.analysis.tables import render_table
from repro.scheduler.allocator import ContiguousAllocator, ReconfigurableAllocator
from repro.scheduler.defrag import fragmentation, largest_placeable_job
from repro.scheduler.requests import JobRequest, WorkloadGenerator
from repro.core.ids import JobId
from repro.scheduler.simulator import SchedulerSimulation
from repro.tpu.superpod import Superpod


def main() -> None:
    gen = WorkloadGenerator(
        arrival_rate_per_s=1 / 270.0,
        mean_duration_s=7200.0,
        size_mix={1: 0.4, 2: 0.25, 4: 0.2, 8: 0.1, 16: 0.04, 32: 0.01},
        seed=13,
    )
    trace = gen.generate(400)
    print(f"Trace: {len(trace)} jobs, offered load {gen.offered_load_cubes():.0f} "
          "concurrent cubes on a 64-cube pod\n")

    rows = []
    for label, make_alloc in (
        ("reconfigurable", ReconfigurableAllocator),
        ("contiguous (v3)", ContiguousAllocator),
    ):
        sim = SchedulerSimulation(
            make_alloc(Superpod()),
            backfill=True,
            cube_failure_rate_per_s=1 / (3000 * 3600.0),
            repair_s=4 * 3600.0,
            warmup_s=20_000.0,
            seed=5,
        )
        m = sim.run(trace)
        rows.append(
            [
                label,
                f"{m.utilization:.1%}",
                f"{m.mean_wait_s / 3600:.2f} h",
                m.completed,
                m.survived_failures,
                m.requeued_after_failure,
            ]
        )
    print(render_table(
        ["policy", "utilization", "mean wait", "done", "survived fails", "requeues"],
        rows,
        title="Scheduler comparison with cube failures injected",
    ))

    # Fragmentation snapshot: checkerboard the pod, then try a big job.
    pod = Superpod(num_cubes=16)
    alloc = ReconfigurableAllocator(pod)
    jobs = [JobRequest(JobId(f"j{i}"), 1, 10.0, 0.0) for i in range(16)]
    for j in jobs:
        alloc.try_allocate(j)
    for j in jobs[1::2]:
        alloc.release(j)
    print(f"\nCheckerboarded 16-cube pod: fragmentation {fragmentation(pod):.0%}")
    print(f"  largest job placeable contiguously : {largest_placeable_job(pod, True)} cubes")
    print(f"  largest job placeable via OCS      : {largest_placeable_job(pod, False)} cubes")
    print("The non-blocking OCS makes external fragmentation irrelevant.")


if __name__ == "__main__":
    main()
