#!/usr/bin/env python3
"""Fabric observatory: trace and meter the whole control stack.

Runs the observed fabric drill (``repro.obs.drill``) -- provisioning,
reconfiguration, injected RPC timeouts, a rolled-back transaction, a
controller crash sweep, drift repair, flap quarantine, a loss-drift
anomaly, a fleet BER sweep, and a scheduling run -- all onto **one**
shared tracer and metrics registry, then shows the query API a NOC
would sit on top of:

1. the span tree of one recovery, transaction to replay;
2. time-range and attribute filters over the trace;
3. fleet counters reconciled against the per-switch telemetry objects;
4. the headline SLOs checked against the committed thresholds.

Run: ``python examples/fabric_observatory.py`` (finishes in seconds).
The full report is ``python -m repro.tools.noc``.
"""

from repro.analysis.tables import render_table
from repro.obs.drill import run_fabric_drill
from repro.tools.noc import compute_slos

SEED = 0


def main() -> None:
    report = run_fabric_drill(seed=SEED, smoke=True)
    tracer, registry = report.obs.tracer, report.obs.metrics

    print(f"drill: {tracer.num_spans} spans, {registry.num_series} series")
    trace_digest, metrics_digest = report.digests()
    print(f"trace digest   {trace_digest}")
    print(f"metrics digest {metrics_digest}")

    # 1. One recovery, as a tree: the WAL replay and every circuit drive.
    print("\n-- one recovery span tree --")
    recovery = tracer.find("control.recover")[0]
    print(f"{recovery.name}  {recovery.duration_ms:.1f} ms  "
          f"replayed={recovery.attr('records_replayed')}")
    for child in tracer.children(recovery):
        print(f"  {child.name}  {child.duration_ms:.1f} ms  "
              f"ocs={child.attr('ocs')} disturbed={child.attr('disturbed')}")

    # 2. Query API: spans by name, label, and time range.
    rollbacks = tracer.find("resilience.txn", rolled_back=True)
    print(f"\nrolled-back transactions: {len(rollbacks)}")
    for span in rollbacks:
        for t_ms, message in span.events:
            print(f"  [{t_ms:.1f} ms] {message}")
    early = tracer.find(t0_ms=0.0, t1_ms=100.0)
    print(f"spans overlapping the first 100 ms: {len(early)}")

    # 3. Fleet counters vs the per-switch telemetry views (same registry).
    print("\n-- fleet counters --")
    rows = []
    for name in (
        "control.recover.runs",
        "resilience.retries",
        "resilience.rollbacks",
        "reconcile.repaired_circuits",
        "ocs.loss.observations",
        "ocs.anomaly.fired",
        "faults.events.delivered",
        "scheduler.jobs.completed",
    ):
        rows.append([name, f"{registry.sum_counters(name):g}"])
    print(render_table(["counter (all labels)", "total"], rows))

    # 4. SLOs, as the NOC gate sees them.
    print("\n-- SLOs --")
    for name, value in sorted(compute_slos(report).items()):
        print(f"  {name}: {value:.4f}")

    print("\nslowest span:", tracer.slowest(1)[0].name)


if __name__ == "__main__":
    main()
