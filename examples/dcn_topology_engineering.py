#!/usr/bin/env python3
"""DCN scenario: evolve a spine-full Clos into a spine-free fabric and
engineer its topology for a skewed traffic matrix.

Reproduces the §2.1/§4.2 datacenter story:

1. the cost/power win of removing the spine layer (Fig 1);
2. demand-aware trunk allocation vs a uniform mesh;
3. flow-level completion times under long-lived skewed traffic;
4. a live reconfiguration when the traffic pattern shifts.

Run: ``python examples/dcn_topology_engineering.py``
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.dcn.blocks import AggregationBlock
from repro.dcn.clos import ClosFabric
from repro.dcn.costmodel import DcnCostModel
from repro.dcn.flowsim import FlowSimulator, fct_stats, generate_flows
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.topology_engineering import engineer_trunks
from repro.dcn.traffic import gravity_matrix
from repro.dcn.traffic_engineering import average_hop_count, route_demand


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Fig 1: retire the spine layer.
    # ------------------------------------------------------------------ #
    big_blocks = [AggregationBlock(i, uplinks=64) for i in range(64)]
    clos = ClosFabric(big_blocks, num_spines=16)
    spinefree_big = SpineFreeFabric.uniform(big_blocks)
    savings = DcnCostModel().savings(clos, spinefree_big)
    print("Spine-free evolution of a 64-AB datacenter fabric:")
    print(f"  CapEx saving: {savings['capex_saving']:.1%}  (paper ~30%)")
    print(f"  power saving: {savings['power_saving']:.1%}  (paper ~41%)")

    # ------------------------------------------------------------------ #
    # 2. Topology engineering for a skewed pattern.
    # ------------------------------------------------------------------ #
    n = 16
    blocks = [AggregationBlock(i, uplinks=16) for i in range(n)]
    tm = gravity_matrix(n, total_gbps=90_000.0, concentration=1.0, seed=3)
    uniform = SpineFreeFabric.uniform(blocks)
    engineered = SpineFreeFabric(blocks, engineer_trunks(blocks, tm))

    hot = np.unravel_index(np.argmax(tm.demand_gbps), tm.demand_gbps.shape)
    print(f"\nHottest pair ab-{hot[0]} <-> ab-{hot[1]}:")
    print(f"  uniform mesh trunks  : {uniform.trunks[hot]}")
    print(f"  engineered trunks    : {engineered.trunks[hot]}")

    # ------------------------------------------------------------------ #
    # 3. Flow-level comparison.
    # ------------------------------------------------------------------ #
    flows = generate_flows(tm.demand_gbps, 150, mean_size_gbit=200.0,
                           duration_s=5.0, seed=2)
    rows = []
    for label, fabric in (("uniform", uniform), ("engineered", engineered)):
        routing = route_demand(fabric, tm)
        records = FlowSimulator(fabric, routing).run(flows)
        stats = fct_stats(records)
        makespan = max(r.finish_s for r in records)
        rows.append(
            [
                label,
                f"{stats['mean_s']:.3f}s",
                f"{stats['p99_s']:.3f}s",
                f"{sum(r.flow.size_gbit for r in records) / makespan:,.0f} Gb/s",
                f"{average_hop_count(routing):.2f}",
            ]
        )
    print()
    print(render_table(
        ["topology", "mean FCT", "p99 FCT", "goodput", "mean hops"],
        rows,
        title="Flow-level results under the skewed matrix",
    ))

    # ------------------------------------------------------------------ #
    # 4. The pattern shifts: reconfigure, do not recable.
    # ------------------------------------------------------------------ #
    tm2 = gravity_matrix(n, total_gbps=90_000.0, concentration=1.0, seed=9)
    new_trunks = engineer_trunks(blocks, tm2)
    moved = engineered.reconfigure(new_trunks)
    print(f"\nTraffic shifted: re-engineered with {moved} OCS circuit moves "
          "(no fiber was touched).")


if __name__ == "__main__":
    main()
