#!/usr/bin/env python3
"""Operations scenario: a day on call with the lightwave fabric.

Walks the operational loop the paper's reliability story rests on
(§3.2.2, §4.1.1, Appendix A):

1. a new cube lands -- qualify its 48 fibers against spare ports;
2. production circuits go live on the PASS ports;
3. telemetry watches insertion loss; a fiber gets pinched;
4. the repair loop moves the degraded circuit to a spare, hitlessly;
5. an HV driver board dies and is hot-swapped; dropped circuits re-made;
6. the chassis availability ledger for the quarter.

Run: ``python examples/fleet_operations.py``
"""

from repro.analysis.tables import render_table
from repro.fabric.qualification import LinkQualifier, QualificationGrade
from repro.fabric.repair import RepairLoop
from repro.ocs.palomar import PalomarOcs
from repro.ocs.reliability import AvailabilityModel, FleetReliabilitySimulator


def main() -> None:
    ocs = PalomarOcs.build(seed=8)

    # ------------------------------------------------------------------ #
    # 1-2. Qualification of a newly landed cube's fibers.
    # ------------------------------------------------------------------ #
    qualifier = LinkQualifier(ocs, seed=4)
    results = qualifier.qualify_ports(range(48))
    print("Qualification of 48 new fibers:")
    for grade in QualificationGrade:
        ports = results[grade]
        print(f"  {grade.value:8s}: {len(ports):2d} ports")
    print(f"  yield: {qualifier.yield_fraction:.0%}")

    good = results[QualificationGrade.PASS]
    south = 64
    for port in good[:8]:  # bring the first eight into production
        ocs.connect(port, south)
        south += 1
    print(f"\n{ocs.state.num_circuits} production circuits live")

    # ------------------------------------------------------------------ #
    # 3-4. Telemetry catches a pinched fiber; repair moves it to a spare.
    # ------------------------------------------------------------------ #
    loop = RepairLoop(ocs)
    loop.scan()  # baseline
    victim = good[0]
    victim_south = ocs.state.south_of(victim)
    loop.degrade_circuit(victim, victim_south, extra_db=0.9)
    anomalies = loop.scan()
    print(f"\nTelemetry: {len(anomalies)} anomaly -> {anomalies[0]}")
    actions = [loop.remediate(a) for a in anomalies]
    for action in actions:
        print(
            f"  repaired N{action.circuit[0]}: moved to spare S{action.new_circuit[1]}, "
            f"loss {action.loss_before_db:.2f} -> {action.loss_after_db:.2f} dB"
        )

    # ------------------------------------------------------------------ #
    # 5. HV driver board failure (the dominant FRU).
    # ------------------------------------------------------------------ #
    dropped = ocs.fail_driver_board("south", 4)  # covers S64..S80
    print(f"\nHV driver board failed: {len(dropped)} circuits dropped")
    ocs.replace_driver_board("south", 4)
    for north, s in dropped:
        ocs.connect(north, s)
    print(f"board hot-swapped, circuits re-made; {ocs.state.num_circuits} live")

    # ------------------------------------------------------------------ #
    # 6. The availability ledger.
    # ------------------------------------------------------------------ #
    model = AvailabilityModel.from_availability(0.9998, mttr_hours=2.0)
    sim = FleetReliabilitySimulator(num_units=48, model=model, seed=9)
    availability, outages = sim.run(horizon_hours=2160.0)  # one quarter
    print(render_table(
        ["metric", "value"],
        [
            ["configured chassis availability", f"{model.availability:.4%}"],
            ["observed (48 OCSes, 90 days)", f"{availability:.4%}"],
            ["outages", len(outages)],
            ["paper field availability", "> 99.98%"],
        ],
        title="\nQuarterly availability ledger",
    ))


if __name__ == "__main__":
    main()
