#!/usr/bin/env python3
"""Table 2 scenario: find the optimal slice shape for each LLM.

Reproduces the paper's headline ML result: the reconfigurable fabric
lets the scheduler shape a 4096-chip slice to each model's parallelism
structure, with speedups up to 3.3x over the static 16x16x16 baseline.

Run: ``python examples/llm_slice_shapes.py``
"""

from repro.analysis.tables import render_table
from repro.ml.models import LLM_ZOO
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import BASELINE_SHAPE, SliceShapeSearch


def main() -> None:
    step_model = TrainingStepModel()
    search = SliceShapeSearch(step_model)

    rows = []
    for key in ("llm0", "llm1", "llm2"):
        model = LLM_ZOO[key]
        result = search.search(model)
        rows.append(
            [
                model.name,
                f"{model.num_params / 1e9:.0f}B",
                model.global_batch_seqs,
                "x".join(map(str, result.best_shape)),
                f"{result.speedup_vs_baseline:.2f}x",
            ]
        )
    print(render_table(
        ["model", "params", "batch (seqs)", "optimal shape", "speedup vs 16^3"],
        rows,
        title="Slice-shape search over all 4096-chip tori (Table 2)",
    ))

    # Why LLM1 wins so big: step-time breakdown at both shapes.
    model = LLM_ZOO["llm1"]
    print(f"\n{model.name} step-time breakdown:")
    for shape in (BASELINE_SHAPE, (4, 4, 256)):
        plan = ParallelismPlan.for_shape(model, shape)
        b = step_model.breakdown(plan)
        print(
            f"  {'x'.join(map(str, shape)):>10}: compute {b.compute_s:7.1f}s"
            f"  tensor-AR {b.tensor_comm_s:7.1f}s"
            f"  grad-AR {b.data_comm_s:6.1f}s"
            f"  total {b.total_s:7.1f}s"
        )
    print(
        "\nThe symmetric baseline burns time in tensor-parallel all-reduces\n"
        "(model dim 16); the asymmetric slice drops to model dim 4 and pays\n"
        "a little more in gradient all-reduce -- a large net win for this\n"
        "data-parallel-heavy model."
    )

    # Memory pressure: why LLM2 cannot use a skinny model dimension.
    llm2 = LLM_ZOO["llm2"]
    plan = ParallelismPlan.for_shape(llm2, (8, 16, 32))
    print(f"\n{llm2.name} at 8x16x32: {plan.infeasibility_reason()}")


if __name__ == "__main__":
    main()
