#!/usr/bin/env python3
"""§6 scenario: the next generation of lightwave fabrics.

Walks the paper's future-work directions with the library's models:

1. higher-dimensional tori (4D/6D) at fixed chip count;
2. the 300x300 OCS and the pod sizes it unlocks;
3. mid-training slice reshaping and its break-even switching cost;
4. campus-scale topology engineering under service churn.

Run: ``python examples/future_fabrics.py``
"""

from repro.analysis.tables import render_table
from repro.availability.model import TRANSCEIVER_TECHS
from repro.dcn.blocks import AggregationBlock
from repro.dcn.campus import CampusStudy, service_epochs
from repro.ml.models import LLM_ZOO
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.reshaping import ReshapingStudy, TrainingPhase
from repro.ocs.scaling import superpod_scaling_table
from repro.tpu.higher_torus import compare_dimensionalities, ocses_for_torus


def main() -> None:
    # 1. Torus dimensionality.
    torus = compare_dimensionalities(4096, dims_options=(3, 4, 6))
    print(render_table(
        ["dims", "shape", "diameter", "bisection", "ports/chip", "OCSes"],
        [
            [
                d,
                "x".join(map(str, torus[d].shape)),
                torus[d].diameter,
                torus[d].bisection_links,
                torus[d].links_per_chip,
                ocses_for_torus(torus[d].shape),
            ]
            for d in (3, 4, 6)
        ],
        title="§6: higher-dimensional tori at 4096 chips",
    ))

    # 2. 300x300 OCS envelope.
    scaling = superpod_scaling_table(TRANSCEIVER_TECHS["cwdm4_bidi"])
    print()
    print(render_table(
        ["generation", "max cubes", "max chips", "BF16 EFLOPS"],
        [
            [k, int(v["max_cubes"]), int(v["max_chips"]), f"{v['exaflops_bf16']:.1f}"]
            for k, v in scaling.items()
        ],
        title="§6: OCS generation scaling (CWDM4 bidi)",
    ))

    # 3. Mid-training reshaping.
    study = ReshapingStudy(TrainingStepModel(), reshape_cost_s=120.0)
    plan = study.plan([
        TrainingPhase("dp-heavy", LLM_ZOO["llm1"], steps=150),
        TrainingPhase("dense", LLM_ZOO["llm2"], steps=150),
    ])
    print(f"\n§6: reshaping between phases "
          f"({' -> '.join('x'.join(map(str, s)) for s in plan.phase_shapes)}):")
    print(f"  fixed best shape : {'x'.join(map(str, plan.fixed_shape))}"
          f" -> {plan.fixed_time_s:,.0f} s")
    print(f"  reshaped         : {plan.reshaped_time_s:,.0f} s "
          f"({plan.speedup:.2f}x)")
    print(f"  break-even cost  : {plan.breakeven_reshape_cost_s:,.0f} s per reshape")

    # 4. Campus churn.
    blocks = [AggregationBlock(i, uplinks=16) for i in range(12)]
    epochs = service_epochs(12, 4, 10_000.0, concentration=1.4, seed=2)
    comparison = CampusStudy(blocks, epochs).compare()
    print()
    print(render_table(
        ["mode", "mean admissible load", "OCS moves"],
        [
            [m, f"{v['mean_admissible']:.2f}x", int(v["total_moves"])]
            for m, v in comparison.items()
        ],
        title="§6: campus fabric under service churn",
    ))


if __name__ == "__main__":
    main()
