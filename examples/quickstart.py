#!/usr/bin/env python3
"""Quickstart: build a TPU v4 superpod, compose slices, check the optics.

Walks the core public API end to end:

1. fabricate a Palomar OCS and inspect its optics;
2. close a bidi link budget through the OCS and estimate its BER;
3. assemble a 64-cube superpod and compose two isolated torus slices;
4. swap out a failed cube without disturbing the other slice.

Run: ``python examples/quickstart.py``
"""

from repro.core.ids import CubeId, SliceId
from repro.fabric.path import OpticalPath
from repro.ocs.palomar import PalomarOcs
from repro.optics.fec import KP4_BER_THRESHOLD
from repro.optics.link_budget import LinkBudget
from repro.optics.transceiver import transceiver
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. One Palomar OCS: 136x136, non-blocking, ~2 dB insertion loss.
    # ------------------------------------------------------------------ #
    ocs = PalomarOcs.build(seed=7)
    loss = ocs.insertion_loss_matrix_db()
    print(f"Palomar OCS: {ocs.radix}x{ocs.radix} duplex ports")
    print(f"  median insertion loss : {sorted(loss.ravel())[loss.size // 2]:.2f} dB")
    print(f"  worst return loss     : {ocs.return_loss_profile_db().max():.1f} dB")
    print(f"  max chassis power     : {ocs.power_w():.0f} W (idle)")

    # ------------------------------------------------------------------ #
    # 2. A bidi link through the OCS: budget and BER.
    # ------------------------------------------------------------------ #
    spec = transceiver("bidi_2x400g_cwdm4")
    budget = LinkBudget.for_fabric_path(spec, ocs_insertion_loss_db=2.0)
    budget.require_closed()
    print(f"\nBidi link ({spec.name}):")
    print(f"  path loss  : {budget.total_loss_db:.2f} dB")
    print(f"  margin     : {budget.margin_db:.2f} dB over sensitivity")
    path = OpticalPath.through_ocs(
        spec, ocs_insertion_loss_db=2.0, ocs_return_loss_db=-46.0
    )
    print(f"  est. MPI   : {path.estimated_mpi_db():.1f} dB below OMA")
    print(f"  pre-FEC BER: {path.ber():.2e} (KP4 threshold {KP4_BER_THRESHOLD:.0e})")

    # ------------------------------------------------------------------ #
    # 3. A superpod with two isolated slices.
    # ------------------------------------------------------------------ #
    pod = Superpod()
    print(f"\n{pod}: {pod.num_chips} TPU v4 chips behind 48 OCSes")

    training = SliceTopology.compose(
        SliceId("llm-train"), (2, 2, 4), [CubeId(i) for i in range(16)]
    )
    pod.configure_slice(training)
    print(f"  configured {training} -> chip torus {training.chip_shape}")

    eval_job = SliceTopology.compose(
        SliceId("eval"), (1, 1, 4), [CubeId(i) for i in range(16, 20)]
    )
    pod.configure_slice(eval_job)
    print(f"  configured {eval_job} (hitless: training slice untouched)")
    print(f"  fabric circuits: {pod.total_circuits()}, utilization {pod.utilization():.0%}")

    # ------------------------------------------------------------------ #
    # 4. Survive a cube failure by swapping in a spare.
    # ------------------------------------------------------------------ #
    victim = CubeId(3)
    pod.cube(victim).fail_host(0)
    new_topology = pod.swap_cube(SliceId("llm-train"), victim)
    replacement = [c for c in new_topology.cube_ids if c.index >= 20][0]
    print(f"\n{victim} failed -> swapped in {replacement}; job keeps running")
    print(f"  reconfigurations so far: {pod.manager.stats.transactions}")


if __name__ == "__main__":
    main()
