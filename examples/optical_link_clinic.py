#!/usr/bin/env python3
"""Optical-link clinic: the bidi transceiver DSP at work (Figs 11-13).

Shows the physical-layer machinery the lightwave fabric rests on:

1. MPI budget of a real fabric path (reflections + circulator crosstalk);
2. the OIM notch filter finding and removing a beat tone from a sampled
   waveform;
3. receiver sensitivity with and without OIM and the inner soft FEC;
4. a fleet-scale BER sample.

Run: ``python examples/optical_link_clinic.py``
"""

import numpy as np

from repro.analysis.histogram import ascii_histogram
from repro.fabric.path import OpticalPath
from repro.optics.ber import LinkBerSimulator, receiver_sensitivity_dbm
from repro.optics.fec import KP4_BER_THRESHOLD
from repro.optics.fleet import FleetBerSampler
from repro.optics.oim import OimDsp, beat_tone_waveform
from repro.optics.pam4 import Pam4LinkModel
from repro.optics.transceiver import transceiver


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Path MPI budget.
    # ------------------------------------------------------------------ #
    spec = transceiver("bidi_2x400g_cwdm4")
    path = OpticalPath.through_ocs(spec, ocs_insertion_loss_db=2.0,
                                   ocs_return_loss_db=-46.0)
    print(f"Bidi path through one OCS ({spec.name}):")
    for element in path.elements:
        refl = "" if element.reflection_db is None else f"  reflect {element.reflection_db:.0f} dB"
        print(f"  {element.name:15s} loss {element.loss_db:4.2f} dB{refl}")
    print(f"  -> aggregate MPI {path.estimated_mpi_db():.1f} dB below OMA")

    # ------------------------------------------------------------------ #
    # 2. The OIM notch filter on a synthetic waveform.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(4)
    waveform = beat_tone_waveform(
        rng, num_samples=8192, sample_rate_hz=1e9, tone_hz=180e6,
        tone_amplitude=0.4, noise_rms=0.1,
    )
    dsp = OimDsp()
    filtered, offset = dsp.mitigate(waveform, sample_rate_hz=1e9)
    print(f"\nOIM: estimated interferer offset {offset / 1e6:.0f} MHz "
          f"(truth 180 MHz); residual RMS {np.std(filtered):.3f} "
          f"vs {np.std(waveform):.3f} before")

    # ------------------------------------------------------------------ #
    # 3. Sensitivity ladder.
    # ------------------------------------------------------------------ #
    sim = LinkBerSimulator()
    mpi = -32.0
    base = receiver_sensitivity_dbm(Pam4LinkModel(mpi_db=mpi))
    with_oim = receiver_sensitivity_dbm(
        Pam4LinkModel(mpi_db=mpi, oim_suppression_db=12.0)
    )
    relaxed = sim.fec.inner_input_threshold()
    with_both = receiver_sensitivity_dbm(
        Pam4LinkModel(mpi_db=mpi, oim_suppression_db=12.0), target_ber=relaxed
    )
    print(f"\nReceiver sensitivity at MPI {mpi:g} dB (BER target 2e-4):")
    print(f"  plain receiver        : {base:7.2f} dBm")
    print(f"  + OIM                 : {with_oim:7.2f} dBm  ({base - with_oim:+.2f} dB)")
    print(f"  + concatenated SFEC   : {with_both:7.2f} dBm  ({with_oim - with_both:+.2f} dB more)")

    # ------------------------------------------------------------------ #
    # 4. Fleet sample (Fig 13).
    # ------------------------------------------------------------------ #
    sampler = FleetBerSampler(num_ports=2048, seed=11)
    bers = sampler.sample()
    summary = sampler.summarize(bers)
    print(f"\nFleet BER over {summary['ports']} ports "
          f"(all below KP4 {KP4_BER_THRESHOLD:.0e}: {summary['all_below_threshold']}):")
    print(ascii_histogram(np.log10(np.maximum(bers, 1e-30)), bins=10, fmt="{:6.1f}"))
    print(f"worst-lane margin: {summary['worst_margin_decades']:.1f} decades")


if __name__ == "__main__":
    main()
