#!/usr/bin/env python3
"""Availability scenario: Fig 15 end to end.

Quantifies why bidi transceivers and reconfigurability matter for
availability: fewer OCSes raise fabric availability, and cube swapping
multiplies large-slice goodput versus a static fabric.

Run: ``python examples/availability_study.py``
"""

from repro.analysis.tables import render_table
from repro.availability.goodput import GoodputModel
from repro.availability.model import TRANSCEIVER_TECHS, fabric_availability
from repro.availability.montecarlo import GoodputMonteCarlo
from repro.ocs.reliability import AvailabilityModel, FleetReliabilitySimulator


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Single-OCS availability from field MTBF/MTTR.
    # ------------------------------------------------------------------ #
    unit = AvailabilityModel.from_availability(0.999, mttr_hours=4.0)
    sim = FleetReliabilitySimulator(num_units=48, model=unit, seed=3)
    empirical, outages = sim.run(horizon_hours=30_000.0)
    print("Palomar fleet reliability (48 chassis, 30k hours simulated):")
    print(f"  configured availability : {unit.availability:.4f}")
    print(f"  observed availability   : {empirical:.4f} across {len(outages)} outages")

    # ------------------------------------------------------------------ #
    # 2. Fig 15a: transceiver technology sets the OCS count.
    # ------------------------------------------------------------------ #
    rows = [
        [tech.name, tech.num_ocses, f"{fabric_availability(tech.num_ocses, 0.999):.1%}"]
        for tech in TRANSCEIVER_TECHS.values()
    ]
    print()
    print(render_table(
        ["transceiver", "OCSes", "fabric availability @ 99.9%/OCS"],
        rows,
        title="Fig 15a: every OCS is needed, so fewer is better",
    ))

    # ------------------------------------------------------------------ #
    # 3. Fig 15b: goodput vs slice size.
    # ------------------------------------------------------------------ #
    model = GoodputModel()
    rows = []
    for sa in (0.999, 0.995, 0.99):
        curve = model.curve(sa, slice_cubes=(1, 4, 16, 32))
        for cubes, (reconf, static) in curve.items():
            rows.append([f"{sa:.1%}", cubes * 64, f"{reconf:.0%}", f"{static:.0%}"])
    print()
    print(render_table(
        ["server avail", "slice size (TPUs)", "reconfigurable", "static"],
        rows,
        title="Fig 15b: goodput at the 97% system-availability target",
    ))
    print(f"\n1024-TPU slices at 99.9% servers: reconfigurable is "
          f"{model.advantage(16, 0.999):.1f}x better (abstract: up to 3x).")

    # ------------------------------------------------------------------ #
    # 4. Monte-Carlo check of the spare sizing.
    # ------------------------------------------------------------------ #
    mc = GoodputMonteCarlo(server_availability=0.995, seed=1, trials=30_000)
    availability, spares = mc.reconfigurable_slice_availability(16)
    print(f"\nMonte Carlo: a 16-cube slice with {spares} dedicated spare(s) "
          f"achieves {availability:.1%} availability (target 97%).")


if __name__ == "__main__":
    main()
