"""OCS telemetry and anomaly reporting.

The paper emphasizes heavy investment in telemetry and anomaly reporting
because OCSes have a large blast radius (§3.2.2).  This module keeps
counters for every control-plane action, a loss-sample history per circuit,
and a simple anomaly detector that flags circuits whose insertion loss
drifts above a threshold or jumps relative to their own baseline.

All counters live on a :class:`repro.obs.metrics.MetricsRegistry` under
``ocs.*`` series names; one telemetry object defaults to a private
registry, and a fleet can hand every switch the same shared registry
(labeled by ``ocs=<name>``) so a NOC report sums across the fleet.  The
historical attribute access (``tel.connects`` etc.) is preserved as
properties reading those series, so values are identical to the old
plain-int fields.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.ocs.optics_model import INSERTION_LOSS_MAX_DB

#: Loss increase over a circuit's own baseline that triggers an anomaly (dB).
#: Module default; individual telemetry instances may override via
#: ``drift_threshold_db``.
DRIFT_THRESHOLD_DB = 0.5


@dataclass(frozen=True)
class Anomaly:
    """One detected anomaly on a circuit."""

    circuit: Tuple[int, int]
    kind: str
    detail: str

    def __str__(self) -> str:
        n, s = self.circuit
        return f"[{self.kind}] N{n}<->S{s}: {self.detail}"


def _circuit_label(north: int, south: int) -> str:
    return f"N{north}-S{south}"


@dataclass
class OcsTelemetry:
    """Counters and monitoring history for one OCS.

    ``registry`` defaults to a private :class:`MetricsRegistry`; pass a
    shared one (plus a distinguishing ``ocs`` name) to aggregate a fleet
    onto a single metric surface.  ``drift_threshold_db`` overrides the
    module-level :data:`DRIFT_THRESHOLD_DB` for this instance.
    """

    history_depth: int = 64
    #: Cap on distinct retained (circuit, kind) anomalies; oldest evicted.
    max_anomalies: int = 1024
    registry: Optional[MetricsRegistry] = field(default=None, repr=False)
    #: Label distinguishing this switch on a shared registry.
    ocs: Optional[str] = None
    #: Per-instance drift threshold; ``None`` falls back to the module global.
    drift_threshold_db: Optional[float] = None
    _loss_baseline_db: Dict[Tuple[int, int], float] = field(default_factory=dict, repr=False)
    _loss_history_db: Dict[Tuple[int, int], Deque[float]] = field(
        default_factory=dict, repr=False
    )
    #: Latest anomaly per (circuit, kind) -- repeats of the same anomaly
    #: replace the stored instance and bump its count (an ``ocs.anomaly.fired``
    #: counter series) instead of growing the list without bound (a
    #: flapping circuit can fire thousands).
    _anomalies: Dict[Tuple[Tuple[int, int], str], Anomaly] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.registry is None:
            self.registry = MetricsRegistry()
        self._labels = {} if self.ocs is None else {"ocs": self.ocs}

    @property
    def effective_drift_threshold_db(self) -> float:
        if self.drift_threshold_db is not None:
            return self.drift_threshold_db
        return DRIFT_THRESHOLD_DB

    # ------------------------------------------------------------------ #
    # Recording hooks (called by the device)
    # ------------------------------------------------------------------ #

    def _inc(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name, **self._labels).inc(amount)

    def record_connect(self, north: int, south: int, loss_db: float) -> None:
        self._inc("ocs.circuit.connect")
        circuit = (north, south)
        self._loss_baseline_db[circuit] = loss_db
        self._loss_history_db[circuit] = deque([loss_db], maxlen=self.history_depth)

    def record_disconnect(self, north: int, south: int) -> None:
        self._inc("ocs.circuit.disconnect")
        self._loss_baseline_db.pop((north, south), None)
        self._loss_history_db.pop((north, south), None)
        # The circuit is gone: its current anomalies are stale.  Counts
        # survive -- flap frequency outlives any one landing.
        for key in [k for k in self._anomalies if k[0] == (north, south)]:
            del self._anomalies[key]

    def record_reconfig(self, plan, duration_ms: float) -> None:
        self._inc("ocs.reconfig.transactions")
        self._inc("ocs.reconfig.circuits_disturbed", plan.num_disturbed)
        self.registry.histogram("ocs.reconfig.duration_ms", **self._labels).observe(
            duration_ms
        )

    def record_alignment(self, iterations: int) -> None:
        self._inc("ocs.alignment.runs")
        self._inc("ocs.alignment.iterations", iterations)

    def record_board_failure(self, side: str, board_index: int, dropped: int) -> None:
        self._inc("ocs.board.failures")
        self._inc("ocs.board.circuits_dropped", dropped)

    # ------------------------------------------------------------------ #
    # Counter views (the historical attribute surface)
    # ------------------------------------------------------------------ #

    def _count(self, name: str) -> int:
        return int(self.registry.value(name, **self._labels))

    @property
    def connects(self) -> int:
        return self._count("ocs.circuit.connect")

    @property
    def disconnects(self) -> int:
        return self._count("ocs.circuit.disconnect")

    @property
    def reconfig_transactions(self) -> int:
        return self._count("ocs.reconfig.transactions")

    @property
    def circuits_disturbed(self) -> int:
        return self._count("ocs.reconfig.circuits_disturbed")

    @property
    def board_failures(self) -> int:
        return self._count("ocs.board.failures")

    @property
    def circuits_dropped_by_failures(self) -> int:
        return self._count("ocs.board.circuits_dropped")

    @property
    def alignment_iterations_total(self) -> int:
        return self._count("ocs.alignment.iterations")

    @property
    def alignment_runs(self) -> int:
        return self._count("ocs.alignment.runs")

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #

    def observe_loss(self, north: int, south: int, loss_db: float) -> Optional[Anomaly]:
        """Feed one loss measurement; returns an anomaly if one fired."""
        circuit = (north, south)
        self._inc("ocs.loss.observations")
        history = self._loss_history_db.setdefault(
            circuit, deque(maxlen=self.history_depth)
        )
        history.append(loss_db)
        baseline = self._loss_baseline_db.setdefault(circuit, loss_db)
        anomaly: Optional[Anomaly] = None
        if loss_db > INSERTION_LOSS_MAX_DB:
            anomaly = Anomaly(
                circuit,
                "loss-over-max",
                f"loss {loss_db:.2f} dB exceeds budget {INSERTION_LOSS_MAX_DB:.1f} dB",
            )
        elif loss_db - baseline > self.effective_drift_threshold_db:
            anomaly = Anomaly(
                circuit,
                "loss-drift",
                f"loss {loss_db:.2f} dB drifted {loss_db - baseline:.2f} dB over baseline",
            )
        if anomaly is not None:
            key = (circuit, anomaly.kind)
            if key not in self._anomalies and len(self._anomalies) >= self.max_anomalies:
                oldest = next(iter(self._anomalies))
                self._anomalies.pop(oldest)
            self._anomalies.pop(key, None)  # refresh insertion order
            self._anomalies[key] = anomaly
            self.registry.counter(
                "ocs.anomaly.fired",
                circuit=_circuit_label(north, south),
                kind=anomaly.kind,
                **self._labels,
            ).inc()
        return anomaly

    @property
    def anomalies(self) -> Tuple[Anomaly, ...]:
        """Distinct current anomalies, one per (circuit, kind), oldest first."""
        return tuple(self._anomalies.values())

    def anomaly_count(self, north: int, south: int, kind: Optional[str] = None) -> int:
        """Observations of anomalies on one circuit (flap-frequency feed).

        Counts every firing, including repeats the dedup collapsed; with
        ``kind=None`` sums across kinds.
        """
        labels = dict(self._labels, circuit=_circuit_label(north, south))
        if kind is not None:
            labels["kind"] = kind
        return int(self.registry.sum_counters("ocs.anomaly.fired", **labels))

    def total_anomaly_firings(self) -> int:
        """Every anomaly firing on this telemetry object, across circuits."""
        return int(self.registry.sum_counters("ocs.anomaly.fired", **self._labels))

    @property
    def loss_observations(self) -> int:
        """Loss measurements fed in (denominator of the BER-anomaly rate)."""
        return self._count("ocs.loss.observations")

    @property
    def mean_alignment_iterations(self) -> float:
        if not self.alignment_runs:
            return 0.0
        return self.alignment_iterations_total / self.alignment_runs

    def loss_history(self, north: int, south: int) -> Tuple[float, ...]:
        """Recorded loss samples for a circuit, oldest first."""
        return tuple(self._loss_history_db.get((north, south), ()))
