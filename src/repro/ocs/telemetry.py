"""OCS telemetry and anomaly reporting.

The paper emphasizes heavy investment in telemetry and anomaly reporting
because OCSes have a large blast radius (§3.2.2).  This module keeps
counters for every control-plane action, a loss-sample history per circuit,
and a simple anomaly detector that flags circuits whose insertion loss
drifts above a threshold or jumps relative to their own baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.ocs.optics_model import INSERTION_LOSS_MAX_DB

#: Loss increase over a circuit's own baseline that triggers an anomaly (dB).
DRIFT_THRESHOLD_DB = 0.5


@dataclass(frozen=True)
class Anomaly:
    """One detected anomaly on a circuit."""

    circuit: Tuple[int, int]
    kind: str
    detail: str

    def __str__(self) -> str:
        n, s = self.circuit
        return f"[{self.kind}] N{n}<->S{s}: {self.detail}"


@dataclass
class OcsTelemetry:
    """Counters and monitoring history for one OCS."""

    connects: int = 0
    disconnects: int = 0
    reconfig_transactions: int = 0
    circuits_disturbed: int = 0
    board_failures: int = 0
    circuits_dropped_by_failures: int = 0
    alignment_iterations_total: int = 0
    alignment_runs: int = 0
    _loss_baseline_db: Dict[Tuple[int, int], float] = field(default_factory=dict, repr=False)
    _loss_history_db: Dict[Tuple[int, int], Deque[float]] = field(
        default_factory=dict, repr=False
    )
    #: Latest anomaly per (circuit, kind) -- repeats of the same anomaly
    #: replace the stored instance and bump its count instead of growing
    #: the list without bound (a flapping circuit can fire thousands).
    _anomalies: Dict[Tuple[Tuple[int, int], str], Anomaly] = field(
        default_factory=dict, repr=False
    )
    _anomaly_counts: Dict[Tuple[Tuple[int, int], str], int] = field(
        default_factory=dict, repr=False
    )
    history_depth: int = 64
    #: Cap on distinct retained (circuit, kind) anomalies; oldest evicted.
    max_anomalies: int = 1024

    # ------------------------------------------------------------------ #
    # Recording hooks (called by the device)
    # ------------------------------------------------------------------ #

    def record_connect(self, north: int, south: int, loss_db: float) -> None:
        self.connects += 1
        circuit = (north, south)
        self._loss_baseline_db[circuit] = loss_db
        self._loss_history_db[circuit] = deque([loss_db], maxlen=self.history_depth)

    def record_disconnect(self, north: int, south: int) -> None:
        self.disconnects += 1
        self._loss_baseline_db.pop((north, south), None)
        self._loss_history_db.pop((north, south), None)
        # The circuit is gone: its current anomalies are stale.  Counts
        # survive -- flap frequency outlives any one landing.
        for key in [k for k in self._anomalies if k[0] == (north, south)]:
            del self._anomalies[key]

    def record_reconfig(self, plan, duration_ms: float) -> None:
        self.reconfig_transactions += 1
        self.circuits_disturbed += plan.num_disturbed

    def record_alignment(self, iterations: int) -> None:
        self.alignment_runs += 1
        self.alignment_iterations_total += iterations

    def record_board_failure(self, side: str, board_index: int, dropped: int) -> None:
        self.board_failures += 1
        self.circuits_dropped_by_failures += dropped

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #

    def observe_loss(self, north: int, south: int, loss_db: float) -> Optional[Anomaly]:
        """Feed one loss measurement; returns an anomaly if one fired."""
        circuit = (north, south)
        history = self._loss_history_db.setdefault(
            circuit, deque(maxlen=self.history_depth)
        )
        history.append(loss_db)
        baseline = self._loss_baseline_db.setdefault(circuit, loss_db)
        anomaly: Optional[Anomaly] = None
        if loss_db > INSERTION_LOSS_MAX_DB:
            anomaly = Anomaly(
                circuit,
                "loss-over-max",
                f"loss {loss_db:.2f} dB exceeds budget {INSERTION_LOSS_MAX_DB:.1f} dB",
            )
        elif loss_db - baseline > DRIFT_THRESHOLD_DB:
            anomaly = Anomaly(
                circuit,
                "loss-drift",
                f"loss {loss_db:.2f} dB drifted {loss_db - baseline:.2f} dB over baseline",
            )
        if anomaly is not None:
            key = (circuit, anomaly.kind)
            if key not in self._anomalies and len(self._anomalies) >= self.max_anomalies:
                oldest = next(iter(self._anomalies))
                self._anomalies.pop(oldest)
            self._anomalies.pop(key, None)  # refresh insertion order
            self._anomalies[key] = anomaly
            self._anomaly_counts[key] = self._anomaly_counts.get(key, 0) + 1
        return anomaly

    @property
    def anomalies(self) -> Tuple[Anomaly, ...]:
        """Distinct current anomalies, one per (circuit, kind), oldest first."""
        return tuple(self._anomalies.values())

    def anomaly_count(self, north: int, south: int, kind: Optional[str] = None) -> int:
        """Observations of anomalies on one circuit (flap-frequency feed).

        Counts every firing, including repeats the dedup collapsed; with
        ``kind=None`` sums across kinds.
        """
        circuit = (north, south)
        return sum(
            count
            for (key_circuit, key_kind), count in self._anomaly_counts.items()
            if key_circuit == circuit and (kind is None or key_kind == kind)
        )

    @property
    def mean_alignment_iterations(self) -> float:
        if not self.alignment_runs:
            return 0.0
        return self.alignment_iterations_total / self.alignment_runs

    def loss_history(self, north: int, south: int) -> Tuple[float, ...]:
        """Recorded loss samples for a circuit, oldest first."""
        return tuple(self._loss_history_db.get((north, south), ()))
