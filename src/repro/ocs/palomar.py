"""The Palomar OCS device model.

Combines the MEMS mirror arrays, the statistical optics model, the HV
driver banks, and a cross-connect map into a single device exposing the
:class:`repro.core.fabric_manager.SwitchLike` interface.

Key facts reproduced from the paper:

- 136x136 duplex ports; 128 are usable for production circuits with 8
  reserved as spares for link testing and repairs (Appendix A).
- Non-blocking bijective any-to-any N->S connectivity.
- Insertion loss typically below 2 dB; return loss typically -46 dB.
- Maximum chassis power 108 W (§4.1.1).
- Broadband, reciprocal optical path: rate-agnostic and bidirectional.
- HV driver boards are the dominant FRU; hot-swapping one loses the mirror
  state of its channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import ConfigurationError, CrossConnectError
from repro.core.reconfig import (
    DEFAULT_CONTROL_OVERHEAD_MS,
    DEFAULT_SWITCH_TIME_MS,
    ReconfigPlan,
    plan_reconfiguration,
)
from repro.ocs.driver import DriverBank
from repro.ocs.mirror import MirrorArray, MirrorState, camera_alignment_iterations
from repro.ocs.optics_model import OcsOpticsModel
from repro.ocs.telemetry import OcsTelemetry

#: Total duplex ports per side.
PALOMAR_RADIX = 136

#: Ports available to production circuits (the rest are test/repair spares).
PALOMAR_USABLE_PORTS = 128

#: Maximum chassis power (W), §4.1.1.
PALOMAR_MAX_POWER_W = 108.0


@dataclass
class PalomarOcs:
    """One Palomar optical circuit switch.

    Build with :meth:`build` (which fabricates mirror dies and samples the
    optics) rather than the raw constructor.
    """

    name: str
    array_north: MirrorArray
    array_south: MirrorArray
    optics: OcsOpticsModel
    drivers_north: DriverBank
    drivers_south: DriverBank
    rng: np.random.Generator
    telemetry: OcsTelemetry = field(default_factory=OcsTelemetry)
    _state: CrossConnectMap = field(init=False, repr=False)
    switch_time_ms: float = DEFAULT_SWITCH_TIME_MS

    def __post_init__(self) -> None:
        if self.array_north.num_ports != self.array_south.num_ports:
            raise ConfigurationError("mirror arrays must have equal port counts")
        self._state = CrossConnectMap(self.array_north.num_ports)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        name: str = "palomar",
        seed: int = 0,
        telemetry: Optional[OcsTelemetry] = None,
    ) -> "PalomarOcs":
        """Fabricate a Palomar OCS with seeded randomness.

        Pass ``telemetry`` to land this switch's counters on a shared
        :class:`~repro.obs.metrics.MetricsRegistry` (fleet aggregation);
        by default each switch gets its own private telemetry.
        """
        rng = np.random.default_rng(seed)
        array_north = MirrorArray.fabricate(f"{name}/mems-A", rng)
        array_south = MirrorArray.fabricate(f"{name}/mems-B", rng)
        optics = OcsOpticsModel(
            radix=array_north.num_ports,
            rng=rng,
            mirror_loss_north=array_north.loss_profile_db(),
            mirror_loss_south=array_south.loss_profile_db(),
        )
        return cls(
            name=name,
            array_north=array_north,
            array_south=array_south,
            optics=optics,
            drivers_north=DriverBank.build(array_north.num_ports),
            drivers_south=DriverBank.build(array_south.num_ports),
            rng=rng,
            telemetry=telemetry if telemetry is not None else OcsTelemetry(),
        )

    # ------------------------------------------------------------------ #
    # SwitchLike interface
    # ------------------------------------------------------------------ #

    @property
    def radix(self) -> int:
        return self._state.radix

    @property
    def state(self) -> CrossConnectMap:
        return self._state

    def apply_plan(self, plan: ReconfigPlan) -> float:
        """Execute a reconfiguration plan by actuating mirrors.

        Every make is validated against mirror/driver health *before* any
        state changes, so a doomed plan leaves the switch untouched.
        Breaks then park the involved mirrors; makes steer and run the
        camera-alignment loop.  Mirrors move in parallel, so duration is
        one settle batch per phase plus control overhead, independent of
        the number of circuits touched.
        """
        for north, south in sorted(plan.makes):
            self._check_actuation(north, south)
        for north, south in sorted(plan.breaks):
            self._park_pair(north, south)
        plan.apply(self._state)
        for north, south in sorted(plan.makes):
            self._steer_pair(north, south)
        duration = plan.duration_ms(switch_time_ms=self.switch_time_ms)
        self.telemetry.record_reconfig(plan, duration)
        return duration

    # ------------------------------------------------------------------ #
    # Direct circuit operations
    # ------------------------------------------------------------------ #

    def connect(self, north: int, south: int) -> float:
        """Establish one circuit; returns actuation duration in ms."""
        self._check_actuation(north, south)
        self._state.connect(north, south)
        self._steer_pair(north, south)
        duration = DEFAULT_CONTROL_OVERHEAD_MS + self.switch_time_ms
        self.telemetry.record_connect(north, south, self.insertion_loss_db(north, south))
        return duration

    def disconnect(self, north: int) -> int:
        """Tear down the circuit on north port ``north``."""
        south = self._state.disconnect(north)
        self._park_pair(north, south)
        self.telemetry.record_disconnect(north, south)
        return south

    def _steer_pair(self, north: int, south: int) -> None:
        self._check_actuation(north, south)
        self.array_north.mirror_for_port(north).steer(south)
        self.array_south.mirror_for_port(south).steer(north)
        iterations = camera_alignment_iterations(self.rng)
        self.telemetry.record_alignment(iterations)

    def _park_pair(self, north: int, south: int) -> None:
        mirror_n = self.array_north.mirror_for_port(north)
        mirror_s = self.array_south.mirror_for_port(south)
        if mirror_n.state is MirrorState.ACTIVE:
            mirror_n.park()
        if mirror_s.state is MirrorState.ACTIVE:
            mirror_s.park()

    def _check_actuation(self, north: int, south: int) -> None:
        if not self.drivers_north.is_channel_driven(north):
            raise CrossConnectError(
                f"{self.name}: north port {north} has no HV drive (board failed)"
            )
        if not self.drivers_south.is_channel_driven(south):
            raise CrossConnectError(
                f"{self.name}: south port {south} has no HV drive (board failed)"
            )
        if self.array_north.mirror_for_port(north).state is MirrorState.FAILED:
            raise CrossConnectError(f"{self.name}: north mirror {north} failed")
        if self.array_south.mirror_for_port(south).state is MirrorState.FAILED:
            raise CrossConnectError(f"{self.name}: south mirror {south} failed")

    # ------------------------------------------------------------------ #
    # Optics
    # ------------------------------------------------------------------ #

    def insertion_loss_db(self, north: int, south: int) -> float:
        """Insertion loss of the (possibly prospective) circuit in dB."""
        return self.optics.insertion_loss_db(north, south)

    def insertion_loss_matrix_db(self) -> np.ndarray:
        """All-path insertion loss (Fig 10a data)."""
        return self.optics.insertion_loss_matrix_db()

    def return_loss_profile_db(self) -> np.ndarray:
        """Per-port return loss (Fig 10b data)."""
        return self.optics.return_loss_profile_db()

    # ------------------------------------------------------------------ #
    # Failure injection and repair
    # ------------------------------------------------------------------ #

    def fail_driver_board(self, side: str, board_index: int) -> Tuple[Tuple[int, int], ...]:
        """Fail one HV driver board; returns the circuits it dropped.

        Dropped circuits are removed from the cross-connect state (the
        mirrors drift without drive), mirroring the paper's observation that
        driver-board reliability dominated.
        """
        bank = self._bank(side)
        channels = set(bank.fail_board(board_index))
        dropped: List[Tuple[int, int]] = []
        for north, south in sorted(self._state.circuits):
            hit = north in channels if side == "north" else south in channels
            if hit:
                self._state.disconnect(north)
                self._park_pair(north, south)
                dropped.append((north, south))
        self.telemetry.record_board_failure(side, board_index, len(dropped))
        return tuple(dropped)

    def replace_driver_board(self, side: str, board_index: int) -> Tuple[int, ...]:
        """Hot-swap a driver board; returns the channels whose state was lost."""
        return self._bank(side).replace_board(board_index)

    def fail_mirror(self, side: str, port: int) -> Optional[Tuple[int, int]]:
        """Fail one mirror; returns the circuit it dropped, if any."""
        array = self.array_north if side == "north" else self.array_south
        mirror = array.mirror_for_port(port)
        dropped: Optional[Tuple[int, int]] = None
        for north, south in sorted(self._state.circuits):
            if (side == "north" and north == port) or (side == "south" and south == port):
                self._state.disconnect(north)
                other = self.array_south if side == "north" else self.array_north
                other_port = south if side == "north" else north
                partner = other.mirror_for_port(other_port)
                if partner.state is MirrorState.ACTIVE:
                    partner.park()
                dropped = (north, south)
                break
        mirror.fail()
        return dropped

    def repair_mirror(self, side: str, port: int) -> None:
        """Repair a failed mirror by installing a manufacturing spare."""
        array = self.array_north if side == "north" else self.array_south
        array.replace_with_spare(port)

    def _bank(self, side: str) -> DriverBank:
        if side == "north":
            return self.drivers_north
        if side == "south":
            return self.drivers_south
        raise ConfigurationError(f"side must be 'north' or 'south', got {side!r}")

    # ------------------------------------------------------------------ #
    # Health / power
    # ------------------------------------------------------------------ #

    def healthy_ports(self) -> Set[int]:
        """Ports usable on both sides (driven and mirror-healthy)."""
        ok: Set[int] = set()
        undriven_n = self.drivers_north.undriven_channels()
        undriven_s = self.drivers_south.undriven_channels()
        failed_n = set(self.array_north.failed_ports)
        failed_s = set(self.array_south.failed_ports)
        for port in range(self.radix):
            if port in undriven_n or port in undriven_s:
                continue
            if port in failed_n or port in failed_s:
                continue
            ok.add(port)
        return ok

    @property
    def is_healthy(self) -> bool:
        """True when every port is usable."""
        return len(self.healthy_ports()) == self.radix

    def power_w(self) -> float:
        """Current power draw: idle floor plus per-active-mirror drive."""
        idle = 0.6 * PALOMAR_MAX_POWER_W
        per_circuit = (PALOMAR_MAX_POWER_W - idle) / self.radix
        return idle + per_circuit * self._state.num_circuits

    def __str__(self) -> str:
        return (
            f"PalomarOcs({self.name}, radix={self.radix}, "
            f"circuits={self._state.num_circuits})"
        )
