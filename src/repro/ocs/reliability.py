"""OCS reliability and availability: analytic and Monte-Carlo models.

Field Palomar chassis achieve >99.98% availability (§4.1.1) through
redundant power/fans, field-replaceable driver boards, and manufacturing
spare mirrors.  This module provides:

- :class:`AvailabilityModel` -- steady-state availability from MTBF/MTTR
  (the classic ``MTBF / (MTBF + MTTR)``), composable in series/parallel.
- :class:`FleetReliabilitySimulator` -- a Monte-Carlo renewal simulation of
  a fleet of chassis with exponential failures and repairs, producing
  observed availability and outage statistics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError

#: Field availability reported for the Palomar chassis (§4.1.1).
PALOMAR_FIELD_AVAILABILITY = 0.9998

#: Availability assumed for a single OCS in the Fig 15 analysis.
SINGLE_OCS_AVAILABILITY = 0.999


@dataclass(frozen=True)
class AvailabilityModel:
    """Steady-state availability of one repairable unit."""

    mtbf_hours: float
    mttr_hours: float

    def __post_init__(self) -> None:
        if self.mtbf_hours <= 0 or self.mttr_hours <= 0:
            raise ConfigurationError("MTBF and MTTR must be positive")

    @property
    def availability(self) -> float:
        """Fraction of time the unit is up."""
        return self.mtbf_hours / (self.mtbf_hours + self.mttr_hours)

    @classmethod
    def from_availability(
        cls, availability: float, mttr_hours: float = 4.0
    ) -> "AvailabilityModel":
        """Back out an MTBF giving ``availability`` at the stated MTTR."""
        if not 0.0 < availability < 1.0:
            raise ConfigurationError(
                f"availability must be in (0, 1), got {availability}"
            )
        mtbf = mttr_hours * availability / (1.0 - availability)
        return cls(mtbf_hours=mtbf, mttr_hours=mttr_hours)

    def series(self, other: "AvailabilityModel") -> float:
        """Availability of two units both required (series system)."""
        return self.availability * other.availability

    def parallel(self, other: "AvailabilityModel") -> float:
        """Availability of two units where either suffices (parallel)."""
        return 1.0 - (1.0 - self.availability) * (1.0 - other.availability)


def series_availability(availabilities: Sequence[float]) -> float:
    """Availability of a chain where every element is required."""
    out = 1.0
    for a in availabilities:
        if not 0.0 <= a <= 1.0:
            raise ConfigurationError(f"availability out of range: {a}")
        out *= a
    return out


def k_of_n_availability(k: int, n: int, unit_availability: float) -> float:
    """Probability that at least ``k`` of ``n`` i.i.d. units are up."""
    from scipy.stats import binom

    if not 0 <= k <= n:
        raise ConfigurationError(f"need 0 <= k <= n, got k={k}, n={n}")
    if n == 0:
        return 1.0
    return float(binom.sf(k - 1, n, unit_availability))


@dataclass
class OutageRecord:
    """One observed outage of one chassis."""

    unit: int
    start_h: float
    duration_h: float


@dataclass
class FleetReliabilitySimulator:
    """Monte-Carlo renewal simulation of a fleet of repairable chassis.

    Each unit alternates exponential up-times (mean ``mtbf_hours``) and
    exponential repair times (mean ``mttr_hours``).  :meth:`run` simulates
    ``horizon_hours`` of fleet operation and reports the empirical
    availability alongside outage records.
    """

    num_units: int
    model: AvailabilityModel
    seed: int = 0

    def run(self, horizon_hours: float) -> Tuple[float, List[OutageRecord]]:
        """Simulate; returns (empirical availability, outage records)."""
        if horizon_hours <= 0:
            raise ConfigurationError("horizon must be positive")
        rng = np.random.default_rng(self.seed)
        outages: List[OutageRecord] = []
        downtime = 0.0
        for unit in range(self.num_units):
            t = 0.0
            while t < horizon_hours:
                up = rng.exponential(self.model.mtbf_hours)
                t += up
                if t >= horizon_hours:
                    break
                repair = rng.exponential(self.model.mttr_hours)
                effective = min(repair, horizon_hours - t)
                outages.append(OutageRecord(unit=unit, start_h=t, duration_h=effective))
                downtime += effective
                t += repair
        total = self.num_units * horizon_hours
        availability = 1.0 - downtime / total
        return availability, outages

    def any_down_fraction(self, horizon_hours: float, samples: int = 2000) -> float:
        """Fraction of random instants when at least one unit is down.

        Approximated analytically as ``1 - A^n`` sanity-checked by sampling
        the simulated timeline; here we return the analytic value, which the
        simulation converges to.
        """
        del horizon_hours, samples  # analytic shortcut; kept for API symmetry
        return 1.0 - self.model.availability ** self.num_units


def downtime_minutes_per_month(availability: float) -> float:
    """Expected downtime for one unit, minutes per 30-day month.

    The operator-facing unit: 99.98% availability (the Palomar field
    figure) is ~8.6 minutes/month; 99.9% (the Fig 15 assumption) is ~43.
    """
    if not 0.0 < availability <= 1.0:
        raise ConfigurationError("availability must be in (0, 1]")
    return (1.0 - availability) * 30.0 * 24.0 * 60.0


def availability_from_downtime(minutes_per_month: float) -> float:
    """Inverse of :func:`downtime_minutes_per_month`."""
    month_minutes = 30.0 * 24.0 * 60.0
    if not 0.0 <= minutes_per_month < month_minutes:
        raise ConfigurationError(
            f"downtime must be in [0, {month_minutes}) minutes/month"
        )
    return 1.0 - minutes_per_month / month_minutes
