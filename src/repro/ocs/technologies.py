"""OCS technology registry (Table C.1 reproduction).

Appendix C compares candidate optical-switching technologies on cost,
scale, switching time, insertion loss, drive voltage, and latching.  The
registry below encodes that table and provides the scoring helper used to
justify the paper's choice of free-space MEMS for the lightwave fabric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.errors import ConfigurationError


class CostClass(enum.Enum):
    """Relative cost bands used in Table C.1."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3
    TBD = 0


@dataclass(frozen=True)
class OcsTechnology:
    """One row of Table C.1."""

    name: str
    cost: CostClass
    port_count: Tuple[int, int]
    switching_time_s: float
    insertion_loss_db: float
    driving_voltage_v: Optional[float]
    latching: bool
    note: str = ""

    @property
    def radix(self) -> int:
        return self.port_count[0]

    def meets_requirements(
        self,
        min_radix: int = 128,
        max_loss_db: float = 3.0,
        max_switching_time_s: float = 1.0,
    ) -> bool:
        """Does this technology satisfy the §2.3 fabric requirements?

        Large radix for scale-out, insertion loss inside the transceiver
        budget, and switching fast enough for topology (re)engineering of
        long-lived/predictable traffic.
        """
        return (
            self.radix >= min_radix
            and self.insertion_loss_db <= max_loss_db
            and self.switching_time_s <= max_switching_time_s
        )


#: Table C.1 rows.  Switching times use the table's order of magnitude:
#: milliseconds = 1e-3 s, minutes-per-connection = 60 s, nanoseconds = 1e-9 s.
TECHNOLOGY_REGISTRY: Dict[str, OcsTechnology] = {
    "mems": OcsTechnology(
        name="MEMS",
        cost=CostClass.MEDIUM,
        port_count=(320, 320),
        switching_time_s=1e-3,
        insertion_loss_db=3.0,
        driving_voltage_v=100.0,
        latching=False,
        note="free-space 2D MEMS mirror arrays; chosen for Palomar",
    ),
    "robotic": OcsTechnology(
        name="Robotic",
        cost=CostClass.MEDIUM,
        port_count=(1008, 1008),
        switching_time_s=60.0,
        insertion_loss_db=1.0,
        driving_voltage_v=None,
        latching=True,
        note="robotic patch panel; serialized, minutes per connection",
    ),
    "piezo": OcsTechnology(
        name="Piezo",
        cost=CostClass.HIGH,
        port_count=(576, 576),
        switching_time_s=1e-3,
        insertion_loss_db=2.5,
        driving_voltage_v=10.0,
        latching=False,
        note="piezo-electric beam steering",
    ),
    "guided_wave": OcsTechnology(
        name="Guided Wave",
        cost=CostClass.LOW,
        port_count=(16, 16),
        switching_time_s=1e-9,
        insertion_loss_db=6.0,
        driving_voltage_v=1.0,
        latching=False,
        note="PLC/PLZT integrated switching; small radix, high loss",
    ),
    "wavelength": OcsTechnology(
        name="Wavelength",
        cost=CostClass.TBD,
        port_count=(100, 100),
        switching_time_s=1e-9,
        insertion_loss_db=6.0,
        driving_voltage_v=0.0,
        latching=True,
        note="tunable lasers + AWGs; wavelength plan limits future proofing",
    ),
}


def qualifying_technologies(
    min_radix: int = 128,
    max_loss_db: float = 3.0,
    max_switching_time_s: float = 1.0,
) -> Tuple[OcsTechnology, ...]:
    """Technologies meeting the lightwave-fabric requirements, best cost first."""
    matches = [
        t
        for t in TECHNOLOGY_REGISTRY.values()
        if t.meets_requirements(min_radix, max_loss_db, max_switching_time_s)
    ]
    return tuple(sorted(matches, key=lambda t: (t.cost.value, -t.radix)))


def technology(name: str) -> OcsTechnology:
    """Look up a technology row by key (case-insensitive)."""
    key = name.lower().replace(" ", "_")
    try:
        return TECHNOLOGY_REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown OCS technology {name!r}; known: {sorted(TECHNOLOGY_REGISTRY)}"
        ) from None
