"""Next-generation OCS scaling: the §6 300x300 study.

§6: "our current internal development efforts to manufacture a larger
300x300 MEMS-based OCS".  This module parameterizes the superpod
arithmetic by OCS radix and transceiver technology to answer the design
question the bigger switch serves: how large can a superpod grow?

Appendix A arithmetic, generalized: each cube presents one "+" and one
"-" connection per (dimension, face position) to its OCS, so one OCS of
radix R (duplex ports) interconnects up to R/2... no -- the "+" lands on
a north port and the "-" on a south port, so an OCS hosts up to R cubes
(R north + R south ports).  Palomar at 136 usable minus spares hosts
128 -> 64-cube pods use half the ports; a 300x300 OCS hosts ~288 cubes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError
from repro.ocs.palomar import PALOMAR_RADIX

if TYPE_CHECKING:  # imported lazily at runtime to avoid package cycles
    from repro.availability.model import TransceiverTech

#: Chips per 4x4x4 cube (mirrors repro.tpu.cube, kept local to avoid a
#: package import cycle ocs -> tpu -> ocs).
CHIPS_PER_CUBE = 64

#: Torus dimensions and face positions of the cube geometry.
NUM_DIMS = 3
FACE_POSITIONS = 16

#: The §6 next-generation switch radix.
NEXT_GEN_RADIX = 300

#: Ports reserved per OCS for link testing and repairs (Appendix A).
SPARE_PORTS = 8


@dataclass(frozen=True)
class OcsGeneration:
    """One OCS generation's scaling envelope."""

    name: str
    radix: int
    spare_ports: int = SPARE_PORTS

    def __post_init__(self) -> None:
        if self.radix <= self.spare_ports:
            raise ConfigurationError("radix must exceed the spare reservation")

    @property
    def usable_ports(self) -> int:
        return self.radix - self.spare_ports

    def max_cubes(self) -> int:
        """Cubes one OCS (and hence the pod) can interconnect.

        Each cube uses one north port ("+" face) and one south port
        ("-" face) per OCS, so the limit is the usable per-side port
        count.
        """
        return self.usable_ports

    def max_chips(self) -> int:
        return self.max_cubes() * CHIPS_PER_CUBE

    def ocses_per_pod(self, strands_per_connection: int = 2) -> int:
        """OCS count at a transceiver technology (2 strands = CWDM4 bidi)."""
        if strands_per_connection <= 0:
            raise ConfigurationError("strand count must be positive")
        return NUM_DIMS * FACE_POSITIONS * strands_per_connection // 2


#: Generations compared in the scaling bench.
OCS_GENERATIONS: Dict[str, OcsGeneration] = {
    "palomar": OcsGeneration("Palomar 136x136", PALOMAR_RADIX),
    "next_gen": OcsGeneration("next-gen 300x300", NEXT_GEN_RADIX),
}


def superpod_scaling_table(tech: "TransceiverTech") -> Dict[str, Dict[str, float]]:
    """Pod envelope per OCS generation at a transceiver technology."""
    out: Dict[str, Dict[str, float]] = {}
    for key, gen in OCS_GENERATIONS.items():
        out[key] = {
            "max_cubes": gen.max_cubes(),
            "max_chips": gen.max_chips(),
            "ocses": gen.ocses_per_pod(tech.strands_per_connection),
            "exaflops_bf16": gen.max_chips() * 275e12 / 1e18,
        }
    return out
