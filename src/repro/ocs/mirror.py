"""MEMS mirror arrays: fabrication yield, qualification, and actuation.

The Palomar optical core uses two MEMS dies.  Each die is fabricated with
176 micro-mirrors from which the best 136 are qualified for the switch;
the remainder serve as manufacturing spares (§3.2.2, Fig 5).  Mirrors are
actuated by high-voltage drivers and settle in milliseconds; a camera-based
closed loop then trims each mirror to the position of minimum loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import CapacityError, ConfigurationError

#: Mirrors fabricated per die.
FABRICATED_MIRRORS = 176

#: Mirrors qualified for switching per die.
QUALIFIED_MIRRORS = 136


class MirrorState(enum.Enum):
    """Lifecycle state of one micro-mirror."""

    PARKED = "parked"  # not steering any circuit
    ACTIVE = "active"  # steering a circuit
    FAILED = "failed"  # stuck / unresponsive


@dataclass
class MemsMirror:
    """One electrostatically actuated micro-mirror.

    ``quality`` is a unitless figure of merit sampled at fabrication; it
    maps to the mirror's contribution to path insertion loss (better mirrors
    lose less light).  ``target_port`` is the far-side port the mirror is
    currently steering toward, if any.
    """

    index: int
    quality: float
    state: MirrorState = MirrorState.PARKED
    target_port: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.quality <= 1.0:
            raise ConfigurationError(
                f"mirror quality must be in (0, 1], got {self.quality}"
            )

    @property
    def loss_db(self) -> float:
        """Per-mirror insertion-loss contribution in dB.

        A perfect mirror (quality 1.0) contributes 0.25 dB; the worst
        qualified mirror roughly 0.55 dB.
        """
        return 0.25 + 0.30 * (1.0 - self.quality)

    def steer(self, port: int) -> None:
        """Point the mirror toward ``port``."""
        if self.state is MirrorState.FAILED:
            raise ConfigurationError(f"mirror {self.index} has failed; cannot steer")
        self.state = MirrorState.ACTIVE
        self.target_port = port

    def park(self) -> None:
        """Return the mirror to its rest position."""
        if self.state is MirrorState.FAILED:
            raise ConfigurationError(f"mirror {self.index} has failed; cannot park")
        self.state = MirrorState.PARKED
        self.target_port = None

    def fail(self) -> None:
        """Mark the mirror as failed (stuck)."""
        self.state = MirrorState.FAILED
        self.target_port = None


@dataclass
class MirrorArray:
    """One MEMS die: fabricated mirrors, a qualified subset, and spares.

    Build with :meth:`fabricate`, which samples per-mirror quality and keeps
    the best :data:`QUALIFIED_MIRRORS` as the working set.  ``qualified[i]``
    is the mirror assigned to logical port ``i``; when a qualified mirror
    fails, :meth:`replace_with_spare` swaps in the best remaining spare
    (this models the manufacturing-spare repair path).
    """

    name: str
    qualified: List[MemsMirror]
    spares: List[MemsMirror] = field(default_factory=list)

    @classmethod
    def fabricate(
        cls,
        name: str,
        rng: np.random.Generator,
        fabricated: int = FABRICATED_MIRRORS,
        qualified: int = QUALIFIED_MIRRORS,
    ) -> "MirrorArray":
        """Sample a die: fabricate ``fabricated`` mirrors, qualify the best.

        Quality is Beta(8, 2)-distributed -- most mirrors are good, a tail
        is marginal -- matching the motivation for over-provisioning the die.
        """
        if qualified > fabricated:
            raise ConfigurationError(
                f"cannot qualify {qualified} of {fabricated} fabricated mirrors"
            )
        qualities = rng.beta(8.0, 2.0, size=fabricated)
        mirrors = [MemsMirror(index=i, quality=float(q)) for i, q in enumerate(qualities)]
        ranked = sorted(mirrors, key=lambda m: m.quality, reverse=True)
        return cls(name=name, qualified=ranked[:qualified], spares=ranked[qualified:])

    @property
    def num_ports(self) -> int:
        return len(self.qualified)

    def mirror_for_port(self, port: int) -> MemsMirror:
        """The qualified mirror currently assigned to logical port ``port``."""
        if not 0 <= port < len(self.qualified):
            raise ConfigurationError(
                f"{self.name}: port {port} out of range [0, {len(self.qualified)})"
            )
        return self.qualified[port]

    def replace_with_spare(self, port: int) -> MemsMirror:
        """Swap the (failed) mirror at ``port`` for the best available spare.

        Returns the newly installed mirror.  Raises :class:`CapacityError`
        when the spare pool is exhausted.
        """
        usable = [m for m in self.spares if m.state is not MirrorState.FAILED]
        if not usable:
            raise CapacityError(f"{self.name}: no spare mirrors remain")
        best = max(usable, key=lambda m: m.quality)
        self.spares.remove(best)
        old = self.qualified[port]
        self.qualified[port] = best
        self.spares.append(old)
        return best

    @property
    def failed_ports(self) -> Tuple[int, ...]:
        """Logical ports whose assigned mirror has failed."""
        return tuple(
            i for i, m in enumerate(self.qualified) if m.state is MirrorState.FAILED
        )

    def loss_profile_db(self) -> np.ndarray:
        """Per-port mirror loss contributions, shape ``(num_ports,)``."""
        return np.array([m.loss_db for m in self.qualified])


def camera_alignment_iterations(
    rng: np.random.Generator,
    initial_misalignment_urad: float = 200.0,
    gain: float = 0.55,
    tolerance_urad: float = 5.0,
    max_iterations: int = 64,
) -> int:
    """Simulate the camera-based closed-loop alignment of one mirror.

    Each control iteration images the 850 nm monitor beam and corrects a
    fraction ``gain`` of the residual misalignment, with small actuation
    noise.  Returns the number of iterations to reach ``tolerance_urad``.

    This models §3.2.2's image-processing-based mirror control: convergence
    is geometric, so alignment completes in tens of iterations regardless of
    the starting point.
    """
    residual = abs(initial_misalignment_urad)
    for iteration in range(1, max_iterations + 1):
        noise = rng.normal(0.0, 0.5)
        residual = abs(residual * (1.0 - gain) + noise)
        if residual <= tolerance_urad:
            return iteration
    return max_iterations
