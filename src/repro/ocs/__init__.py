"""The Palomar optical circuit switch (OCS) model.

Reproduces §3.2 of the paper: a 136x136 non-blocking MEMS OCS built from
two mirror arrays (176 mirrors fabricated per die, best 136 qualified),
2D fiber collimator arrays, camera-based closed-loop alignment, and
high-voltage driver boards as the dominant field-replaceable unit.
"""

from repro.ocs.mirror import MemsMirror, MirrorArray, MirrorState
from repro.ocs.optics_model import OcsOpticsModel
from repro.ocs.palomar import PalomarOcs, PALOMAR_RADIX, PALOMAR_USABLE_PORTS
from repro.ocs.driver import DriverBoard, DriverBank
from repro.ocs.telemetry import OcsTelemetry, Anomaly
from repro.ocs.reliability import AvailabilityModel, FleetReliabilitySimulator
from repro.ocs.technologies import OcsTechnology, TECHNOLOGY_REGISTRY
from repro.ocs.scaling import OCS_GENERATIONS, OcsGeneration, superpod_scaling_table

__all__ = [
    "MemsMirror",
    "MirrorArray",
    "MirrorState",
    "OcsOpticsModel",
    "PalomarOcs",
    "PALOMAR_RADIX",
    "PALOMAR_USABLE_PORTS",
    "DriverBoard",
    "DriverBank",
    "OcsTelemetry",
    "Anomaly",
    "AvailabilityModel",
    "FleetReliabilitySimulator",
    "OcsTechnology",
    "TECHNOLOGY_REGISTRY",
    "OcsGeneration",
    "OCS_GENERATIONS",
    "superpod_scaling_table",
]
