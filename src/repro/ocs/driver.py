"""High-voltage driver boards: the OCS's dominant reliability challenge.

Each MEMS mirror needs ~100 V actuation (Table C.1).  Drivers are grouped
onto boards; a board failure drops actuation for its group of mirrors,
interrupting any circuits steered by them.  Boards are field-replaceable
units (FRUs) and hot-swappable, but the mirror state driven by a board is
lost during a swap (§3.2.2) -- affected circuits must be re-made by the
control plane afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.core.errors import ConfigurationError


@dataclass
class DriverBoard:
    """One HV driver board serving a contiguous range of mirror channels."""

    index: int
    first_channel: int
    num_channels: int
    healthy: bool = True

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ConfigurationError(
                f"board {self.index}: needs at least one channel"
            )
        if self.first_channel < 0:
            raise ConfigurationError(
                f"board {self.index}: first channel must be non-negative"
            )

    @property
    def channels(self) -> range:
        """Mirror channels (logical port indices) driven by this board."""
        return range(self.first_channel, self.first_channel + self.num_channels)

    def covers(self, channel: int) -> bool:
        return self.first_channel <= channel < self.first_channel + self.num_channels


@dataclass
class DriverBank:
    """The set of driver boards for one mirror array.

    The default layout splits ``num_channels`` mirrors evenly over
    ``num_boards`` boards (the last board absorbs the remainder).
    """

    boards: List[DriverBoard]

    @classmethod
    def build(cls, num_channels: int, num_boards: int = 8) -> "DriverBank":
        """Create a bank covering ``num_channels`` with ``num_boards`` boards."""
        if num_boards <= 0 or num_channels <= 0:
            raise ConfigurationError("need positive board and channel counts")
        if num_boards > num_channels:
            raise ConfigurationError(
                f"more boards ({num_boards}) than channels ({num_channels})"
            )
        per = num_channels // num_boards
        boards = []
        start = 0
        for i in range(num_boards):
            count = per if i < num_boards - 1 else num_channels - start
            boards.append(DriverBoard(index=i, first_channel=start, num_channels=count))
            start += count
        return cls(boards=boards)

    @property
    def num_channels(self) -> int:
        return sum(b.num_channels for b in self.boards)

    def board_for(self, channel: int) -> DriverBoard:
        """The board driving mirror ``channel``."""
        for board in self.boards:
            if board.covers(channel):
                return board
        raise ConfigurationError(f"no board covers channel {channel}")

    def is_channel_driven(self, channel: int) -> bool:
        """True when the board for ``channel`` is healthy."""
        return self.board_for(channel).healthy

    def fail_board(self, index: int) -> Tuple[int, ...]:
        """Fail board ``index``; returns the affected mirror channels."""
        board = self._board(index)
        board.healthy = False
        return tuple(board.channels)

    def replace_board(self, index: int) -> Tuple[int, ...]:
        """Hot-swap board ``index``.

        The replacement restores actuation but the previous mirror state is
        lost; the returned channels identify circuits needing re-make.
        """
        board = self._board(index)
        board.healthy = True
        return tuple(board.channels)

    def undriven_channels(self) -> Set[int]:
        """All mirror channels currently without actuation."""
        out: Set[int] = set()
        for board in self.boards:
            if not board.healthy:
                out.update(board.channels)
        return out

    @property
    def healthy(self) -> bool:
        return all(b.healthy for b in self.boards)

    def _board(self, index: int) -> DriverBoard:
        for board in self.boards:
            if board.index == index:
                return board
        raise ConfigurationError(f"no board with index {index}")
