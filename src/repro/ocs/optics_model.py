"""Statistical optical model of a Palomar OCS (Fig 10 reproduction).

Per-path insertion loss decomposes as::

    IL(n, s) = collimator_in(n) + mirror_A(n) + mirror_B(s)
               + collimator_out(s) + splice/connector excess

Typical total loss is below 2 dB with a tail (from splice/connector
variation, per §4.1.1) reaching ~3 dB.  Per-port return loss is centered
near -46 dB with a specification ceiling of -38 dB; the dominant reflector
is the fiber-collimator interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.errors import ConfigurationError

#: Return-loss specification: reflections must be below this (dB).
RETURN_LOSS_SPEC_DB = -38.0

#: Typical measured return loss (dB).
RETURN_LOSS_TYPICAL_DB = -46.0

#: Insertion-loss target: typical paths are under this (dB).
INSERTION_LOSS_TYPICAL_DB = 2.0

#: Worst-case allocatable OCS insertion loss in link budgets (dB).
INSERTION_LOSS_MAX_DB = 3.0


@dataclass
class OcsOpticsModel:
    """Samples and serves the optical characteristics of one OCS.

    The model draws per-port collimator losses and splice/connector excess
    once at construction (they are properties of the assembled chassis) and
    combines them with the per-mirror contributions supplied by the caller.

    Args:
        radix: number of ports per side.
        rng: random generator (pass a seeded one for reproducibility).
        mirror_loss_north / mirror_loss_south: per-port mirror loss arrays
            in dB (shape ``(radix,)``), typically from
            :meth:`repro.ocs.mirror.MirrorArray.loss_profile_db`.
    """

    radix: int
    rng: np.random.Generator
    mirror_loss_north: np.ndarray
    mirror_loss_south: np.ndarray
    _collimator_north_db: np.ndarray = field(init=False, repr=False)
    _collimator_south_db: np.ndarray = field(init=False, repr=False)
    _splice_excess_db: np.ndarray = field(init=False, repr=False)
    _return_loss_db: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.radix <= 0:
            raise ConfigurationError(f"radix must be positive, got {self.radix}")
        for name, arr in (
            ("mirror_loss_north", self.mirror_loss_north),
            ("mirror_loss_south", self.mirror_loss_south),
        ):
            if arr.shape != (self.radix,):
                raise ConfigurationError(
                    f"{name} must have shape ({self.radix},), got {arr.shape}"
                )
        # Collimator loss: ~0.35 dB mean per pass with small port-to-port spread.
        self._collimator_north_db = self.rng.normal(0.35, 0.05, self.radix).clip(0.2, 0.6)
        self._collimator_south_db = self.rng.normal(0.35, 0.05, self.radix).clip(0.2, 0.6)
        # Splice/connector excess per port pair is gamma-distributed: usually
        # tiny, occasionally a few tenths of a dB -- this produces Fig 10a's
        # tail.  One draw per south port (the output pigtail dominates).
        self._splice_excess_db = self.rng.gamma(shape=1.5, scale=0.12, size=self.radix)
        # Return loss per port: normal around the typical value, clipped to
        # always satisfy the -38 dB specification (out-of-spec ports are
        # screened out in manufacturing).
        rl = self.rng.normal(RETURN_LOSS_TYPICAL_DB, 2.0, self.radix)
        self._return_loss_db = np.minimum(rl, RETURN_LOSS_SPEC_DB - 1.0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def insertion_loss_db(self, north: int, south: int) -> float:
        """Total insertion loss of the circuit ``north -> south`` in dB."""
        self._check(north, south)
        return float(
            self._collimator_north_db[north]
            + self.mirror_loss_north[north]
            + self.mirror_loss_south[south]
            + self._collimator_south_db[south]
            + self._splice_excess_db[south]
        )

    def insertion_loss_matrix_db(self) -> np.ndarray:
        """Insertion loss for all radix x radix cross-connections (Fig 10a)."""
        north_part = self._collimator_north_db + self.mirror_loss_north
        south_part = (
            self.mirror_loss_south + self._collimator_south_db + self._splice_excess_db
        )
        return north_part[:, None] + south_part[None, :]

    def return_loss_db(self, port: int) -> float:
        """Return loss of ``port`` in dB (negative; lower is better)."""
        if not 0 <= port < self.radix:
            raise ConfigurationError(f"port {port} out of range [0, {self.radix})")
        return float(self._return_loss_db[port])

    def return_loss_profile_db(self) -> np.ndarray:
        """Per-port return loss, shape ``(radix,)`` (Fig 10b)."""
        return self._return_loss_db.copy()

    def worst_path_reflection_db(self, north: int, south: int) -> float:
        """Strongest single reflection along the circuit, in dB.

        For the bidirectional-link MPI analysis the dominant reflector on a
        path is whichever of the two port interfaces has the worse (higher)
        return loss.
        """
        self._check(north, south)
        return float(max(self._return_loss_db[north], self._return_loss_db[south]))

    def meets_spec(self) -> bool:
        """True when every port satisfies the return-loss specification."""
        return bool(np.all(self._return_loss_db <= RETURN_LOSS_SPEC_DB))

    def _check(self, north: int, south: int) -> None:
        if not 0 <= north < self.radix:
            raise ConfigurationError(f"north port {north} out of range [0, {self.radix})")
        if not 0 <= south < self.radix:
            raise ConfigurationError(f"south port {south} out of range [0, {self.radix})")


def summarize_insertion_loss(matrix_db: np.ndarray) -> dict:
    """Summary statistics of an insertion-loss matrix for reporting."""
    flat = np.asarray(matrix_db).ravel()
    return {
        "mean_db": float(flat.mean()),
        "median_db": float(np.median(flat)),
        "p95_db": float(np.percentile(flat, 95)),
        "p99_db": float(np.percentile(flat, 99)),
        "max_db": float(flat.max()),
        "fraction_below_2db": float(np.mean(flat < INSERTION_LOSS_TYPICAL_DB)),
        "fraction_below_3db": float(np.mean(flat < INSERTION_LOSS_MAX_DB)),
    }
