"""Observed fabric drill: one seeded run exercising every traced path.

The drill wires a single :class:`~repro.obs.Observability` bundle through
the whole control stack and walks it through the lifecycle the paper's
operations story describes -- provisioning, hitless reconfiguration,
retries through injected RPC timeouts, a rolled-back transaction, a
controller crash sweep with WAL recovery, anti-entropy drift repair,
flap damping and quarantine, telemetry loss drift, a fleet BER sweep,
and a scheduling run.  Every phase lands spans on the shared tracer and
counters on the shared registry, so the resulting
:class:`DrillReport` is the one-stop input for the NOC report
(``python -m repro.tools.noc``) and for the tracing-determinism tests:
with a fixed seed the span tree and metric snapshot are byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.control import DurableController, FleetHealthWatchdog, Reconciler
from repro.control.reconcile import ReconcileReport
from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import TransactionError
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId
from repro.faults.chaos import ChaosReport, controller_crash_recovery
from repro.faults.resilience import ControlPlaneFaults, ResilientReconfigurer
from repro.obs import Observability
from repro.ocs.optics_model import INSERTION_LOSS_MAX_DB
from repro.ocs.palomar import PalomarOcs
from repro.ocs.telemetry import OcsTelemetry
from repro.optics.fleet import FleetBerSampler
from repro.scheduler.allocator import ReconfigurableAllocator
from repro.scheduler.requests import WorkloadGenerator
from repro.scheduler.simulator import SchedulerMetrics, SchedulerSimulation
from repro.tpu.superpod import Superpod

#: Drill phases, in execution order (each is a ``drill.<name>`` span).
PHASES: Tuple[str, ...] = (
    "provision",
    "reconfigure",
    "retry",
    "rollback",
    "crash_recovery",
    "reconcile",
    "health",
    "telemetry",
    "ber_sweep",
    "scheduler",
    "sweep",
    "serve",
    "failover",
    "twin",
)


@dataclass
class DrillReport:
    """Everything one observed drill produced.

    The interesting state lives on ``obs``: the span tree on
    ``obs.tracer`` and every subsystem's metrics on ``obs.metrics``.
    The sub-reports are kept for direct assertions.
    """

    seed: int
    smoke: bool
    obs: Observability
    phases: Tuple[str, ...]
    chaos: ChaosReport
    reconcile: ReconcileReport
    scheduler: SchedulerMetrics
    notes: Dict[str, float]

    def digests(self) -> Tuple[str, str]:
        """(trace digest, metrics digest) -- the determinism pins."""
        return self.obs.digests()


def _shift_targets(
    mgr: FabricManager, num_ocses: int, norths: Tuple[int, ...], offset: int
) -> Dict[OcsId, CrossConnectMap]:
    """Target maps moving ``norths`` to south ``n + offset`` on every OCS."""
    out: Dict[OcsId, CrossConnectMap] = {}
    for i in range(num_ocses):
        sw = mgr.switch(OcsId(i))
        circuits = dict(sw.state.circuits)
        for n in norths:
            circuits[n] = n + offset
        out[OcsId(i)] = CrossConnectMap.from_circuits(sw.radix, circuits)
    return out


def run_fabric_drill(
    seed: int = 0, *, smoke: bool = False, obs: Optional[Observability] = None
) -> DrillReport:
    """Run the full observed drill; returns the report with its bundle.

    ``smoke`` shrinks every phase for CI (a few seconds total).  Pass an
    existing ``obs`` to accumulate onto it; by default a fresh simulated
    bundle is created so the run is reproducible from the seed alone.
    """
    if obs is None:
        obs = Observability.sim()
    num_ocses = 2 if smoke else 3
    links = 4 if smoke else 6
    moved = tuple(range(3 if smoke else 4))
    ber_ports = 512 if smoke else 2048
    jobs = 24 if smoke else 48
    cubes = 8 if smoke else 16
    notes: Dict[str, float] = {}

    # -- provision: switches on a shared registry, links through the WAL --
    with obs.tracer.span("drill.provision", ocses=num_ocses, links=links):
        mgr = FabricManager(obs=obs)
        telemetries: Dict[int, OcsTelemetry] = {}
        for i in range(num_ocses):
            telemetries[i] = OcsTelemetry(registry=obs.metrics, ocs=f"ocs{i}")
            mgr.add_switch(
                OcsId(i),
                PalomarOcs.build(
                    name=f"noc-ocs{i}", seed=seed + i, telemetry=telemetries[i]
                ),
            )
        ctl = DurableController(manager=mgr, obs=obs)
        for i in range(num_ocses):
            for n in range(links):
                ctl.establish(LinkId(f"lk-{i}-{n}"), OcsId(i), n, n + links)

    # -- reconfigure: clean multi-OCS transaction through the journal.
    # Moving a circuit drops its logical link (re-striping semantics);
    # adopt the landed circuits back so the intent table stays complete.
    with obs.tracer.span("drill.reconfigure"):
        ctl.reconfigure(_shift_targets(mgr, num_ocses, moved, 2 * links))
        for i in range(num_ocses):
            for n in moved:
                ctl.adopt_link(
                    LinkId(f"lk2-{i}-{n}"), OcsId(i), n, n + 2 * links
                )

    # -- retry: injected RPC timeouts absorbed by bounded backoff.  The
    # resilient path programs circuits without retargeting logical links,
    # so it gets its own map-only fixture and leaves the journaled fabric
    # alone for the reconcile/health phases.
    faults = ControlPlaneFaults()
    with obs.tracer.span("drill.retry"):
        rr_mgr = FabricManager(obs=obs)
        for i in range(num_ocses):
            rr_mgr.add_switch(OcsId(i), SimpleSwitch(4 * links))
            for n in range(links):
                rr_mgr.establish(LinkId(f"rr-{i}-{n}"), OcsId(i), n, n + links)
        faults.inject_rpc_timeouts(0, count=2)
        resilient = ResilientReconfigurer(
            manager=rr_mgr, faults=faults, seed=seed, obs=obs
        )
        result = resilient.reconfigure(
            _shift_targets(rr_mgr, num_ocses, moved, 2 * links)
        )
        notes["retry_attempts"] = float(result.total_attempts)

    # -- rollback: retries exhausted on the last switch, exact undo --
    with obs.tracer.span("drill.rollback"):
        faults.inject_rpc_timeouts(num_ocses - 1, count=10)
        try:
            resilient.reconfigure(
                _shift_targets(rr_mgr, num_ocses, moved, links)
            )
            notes["rollback_seen"] = 0.0
        except TransactionError as err:
            notes["rollback_seen"] = float(err.rolled_back)

    # -- crash + recover: the WAL crash sweep, fully traced --
    with obs.tracer.span("drill.crash_recovery"):
        chaos = controller_crash_recovery(
            seed=seed, num_ocses=2, links_per_ocs=4, moved_per_ocs=3, obs=obs
        )

    # -- reconcile: hardware poked behind the controller's back --
    with obs.tracer.span("drill.reconcile"):
        rogue = mgr.switch(OcsId(0))
        rogue.disconnect(moved[0])
        rogue.connect(moved[0], 3 * links + 1)  # wrong peer: drift
        reconcile = Reconciler(manager=mgr, seed=seed, obs=obs).run()
        notes["reconcile_converged"] = float(reconcile.converged)

    # -- health: flap damping to quarantine, decay to release --
    with obs.tracer.span("drill.health"):
        watchdog = FleetHealthWatchdog(obs=obs)
        snapshot = mgr.snapshot()[OcsId(0)]
        for n in range(links):
            south = snapshot.south_of(n)
            if south is not None:
                watchdog.watch_circuit(0, n, south)
        for _ in range(3):  # 3 flaps: penalty 3000 > suppress 2500
            watchdog.observe_flap(0, 0, now_s=0.0)
        watchdog.observe_flap(0, 1, now_s=0.0)  # one flap: damped only
        quarantines = watchdog.poll(now_s=0.0)
        releases = watchdog.poll(now_s=180.0)  # decayed + past hold-down
        notes["health_actions"] = float(len(quarantines) + len(releases))

    # -- telemetry: loss sweep, one drift anomaly, one over-budget --
    with obs.tracer.span("drill.telemetry"):
        for i in range(num_ocses):
            sw = mgr.switch(OcsId(i))
            for n, s in sorted(sw.state.circuits):
                telemetries[i].observe_loss(n, s, sw.insertion_loss_db(n, s))
        tel = telemetries[0]
        drift_circuit = sorted(mgr.switch(OcsId(0)).state.circuits)[0]
        base = mgr.switch(OcsId(0)).insertion_loss_db(*drift_circuit)
        anomaly = tel.observe_loss(*drift_circuit, base + 1.0)
        if anomaly is not None:
            watchdog.observe_anomaly(0, anomaly, now_s=200.0)
        tel.observe_loss(*drift_circuit, INSERTION_LOSS_MAX_DB + 0.5)
        notes["anomaly_firings"] = float(tel.total_anomaly_firings())

    # -- BER sweep: the fleet distribution with margin gauges --
    with obs.tracer.span("drill.ber_sweep"):
        sampler = FleetBerSampler(num_ports=ber_ports, seed=seed, obs=obs)
        summary = sampler.summarize()
        notes["ber_worst_margin_decades"] = summary["worst_margin_decades"]

    # -- scheduler: a failure-injected run on the reconfigurable policy --
    with obs.tracer.span("drill.scheduler"):
        pod = Superpod(num_cubes=cubes, seed=seed)
        sim = SchedulerSimulation(
            allocator=ReconfigurableAllocator(pod, obs=obs),
            cube_failure_rate_per_s=1.0 / (40 * 3600.0),
            repair_s=3600.0,
            seed=seed,
            obs=obs,
        )
        sched = sim.run(WorkloadGenerator(seed=seed).generate(jobs))

    # -- sweep: the parallel engine + result cache, cold then warm.  A
    # serial engine on an in-memory cache keeps the phase hermetic; the
    # task advances the sim clock so chunk spans have deterministic
    # widths, and the warm pass must be 100% hits.
    with obs.tracer.span("drill.sweep"):
        from repro.parallel import ResultCache, SweepEngine

        sweep_tasks = list(range(8 if smoke else 12))

        def _sweep_task(task: int, task_seed) -> float:
            obs.clock.advance(2.0)
            del task_seed  # identity comes from the task; width from the clock
            return float(task * task)

        engine = SweepEngine(
            workers=1, chunk_size=4, cache=ResultCache.in_memory(obs=obs),
            obs=obs,
        )
        cold = engine.pmap(_sweep_task, sweep_tasks, seed=seed, cache_tag="drill")
        warm = engine.pmap(_sweep_task, sweep_tasks, seed=seed, cache_tag="drill")
        notes["sweep_tasks"] = float(len(sweep_tasks))
        notes["sweep_warm_hits"] = float(engine.last_run.cache_hits)
        notes["sweep_results_equal"] = float(cold == warm)

    # -- serve: the overload-burst serving drill (admission, shedding,
    # retry budget, breaker, brownout) on the shared registry, with the
    # replay-equivalence check built in.
    with obs.tracer.span("drill.serve"):
        from repro.serve.drill import run_serve_drill

        serve_out = run_serve_drill(
            seed=seed, smoke=True, obs=obs,
            num_primaries=1_200 if smoke else 2_400,
        )
        serve_summary = serve_out["summary"]
        notes["serve_offered"] = float(serve_summary["offered"])
        notes["serve_ok"] = float(serve_summary["ok"])
        notes["serve_shed"] = float(serve_summary["shed"])
        notes["serve_breaker_trips"] = float(serve_summary["breaker_trips"])
        notes["serve_recoveries"] = float(serve_summary["recoveries"])
        notes["serve_replay_equal"] = float(
            serve_summary["replay_digest"] == serve_summary["state_digest"]
        )

    # -- failover: the replicated-controller partition storm.  Runs on
    # an isolated bundle (its storm latencies would otherwise pollute
    # the shared serve.latency_ms percentile), then republishes only the
    # failover gauges the NOC SLO gate reads.
    with obs.tracer.span("drill.failover"):
        from repro.serve.drill import run_failover_drill

        failover_obs = Observability.sim()
        failover_out = run_failover_drill(
            seed=seed, smoke=True, obs=failover_obs,
            num_primaries=1_200 if smoke else 2_400,
        )
        for gauge in (
            "serve.failover.p99_s",
            "serve.failover.committed_ops_lost",
            "serve.failover.unavailability",
        ):
            obs.metrics.gauge(gauge).set(failover_obs.metrics.value(gauge))
        failover_summary = failover_out["summary"]
        notes["failover_failovers"] = float(failover_summary["failovers"])
        notes["failover_elections"] = float(failover_summary["elections"])
        notes["failover_committed_ops_lost"] = float(
            failover_summary["committed_ops_lost"]
        )
        notes["failover_availability"] = float(failover_summary["availability"])

    # -- twin: the predictive loop -- record a fleet timeline, stream it
    # through the windowed-aggregation pipeline, train the availability
    # forecaster on a chaos ensemble, and what-if-replay candidate
    # policies.  Runs on an isolated bundle (its replays would pollute
    # the serve percentiles), then republishes the twin SLO gauges.
    with obs.tracer.span("drill.twin"):
        from repro.twin.drill import run_twin_drill

        twin_obs = Observability.sim()
        twin_out = run_twin_drill(seed=seed, smoke=True, obs=twin_obs)
        for gauge in (
            "twin.forecast.miss_rate",
            "twin.forecast.mae_excess",
            "twin.plan.divergence",
        ):
            obs.metrics.gauge(gauge).set(twin_obs.metrics.value(gauge))
        twin_summary = twin_out["summary"]
        notes["twin_timeline_samples"] = float(twin_summary["timeline_samples"])
        notes["twin_aggregates"] = float(twin_summary["aggregates"])
        notes["twin_forecast_beats_naive"] = float(
            twin_summary["twin_forecast_mae_excess"] < 0.0
        )
        notes["twin_plan_divergence"] = float(
            twin_summary["twin_plan_divergence"]
        )
        notes["twin_policies"] = float(len(twin_out["plans"]))

    return DrillReport(
        seed=seed,
        smoke=smoke,
        obs=obs,
        phases=PHASES,
        chaos=chaos,
        reconcile=reconcile,
        scheduler=sched,
        notes=notes,
    )
