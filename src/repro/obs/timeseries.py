"""Streaming time-series pipeline over the observability substrate.

`repro.obs` exports are snapshots: one value per series at the moment
the registry was dumped.  Operating a fleet (Mission Apollo's deployment
experience, PAPERS.md) is about *trends* -- what a counter did over the
last hour, not what it reads now.  This module turns timestamped metric
samples into windowed aggregates the NOC and the digital twin
(:mod:`repro.twin`) can forecast and plan against:

- :class:`TimeSeriesPipeline` ingests ``(t_ms, series, value)`` samples
  in sim-clock order, assigns them to **tumbling or sliding windows**
  (:class:`WindowSpec`), and emits :class:`WindowAggregate` records as
  the watermark (the latest ingested timestamp) passes each window's
  end -- a streaming model, not a batch one;
- per-series **retention bounds** (sample count and age) cap memory, and
  every drop is counted, never silent;
- **derived-series operators** -- :meth:`~TimeSeriesPipeline.rate`,
  :meth:`~TimeSeriesPipeline.delta`, :meth:`~TimeSeriesPipeline.ewma`,
  :meth:`~TimeSeriesPipeline.rolling_quantile`, and deterministic
  :meth:`~TimeSeriesPipeline.downsample` -- are computed over the
  emitted aggregates with pure-Python arithmetic;
- :meth:`~TimeSeriesPipeline.digest` hashes the canonical emission
  stream: replaying the same export reproduces a byte-identical digest,
  which the determinism tests pin.

The pipeline instruments itself through the same ``obs`` bundle it
serves (``obs.ts.samples``, ``obs.ts.dropped_late``, the
``obs.ts.window_lag_ms`` histogram, and an ``obs.ts.series`` cardinality
gauge), so a NOC report can watch the watcher.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry

#: Schema version stamped on timeline/aggregate JSONL streams (see
#: :mod:`repro.obs.export`); readers must tolerate unknown future fields.
TIMESERIES_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Sample:
    """One timestamped observation of one series."""

    t_ms: float
    series: str
    value: float
    kind: str = "gauge"  # "counter" | "gauge" | derived kinds

    def to_record(self) -> Dict[str, object]:
        return {
            "type": "sample",
            "t_ms": self.t_ms,
            "series": self.series,
            "value": self.value,
            "kind": self.kind,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "Sample":
        """Build from a JSONL record, ignoring unknown future fields."""
        return cls(
            t_ms=float(record["t_ms"]),  # type: ignore[arg-type]
            series=str(record["series"]),
            value=float(record["value"]),  # type: ignore[arg-type]
            kind=str(record.get("kind", "gauge")),
        )


@dataclass(frozen=True)
class WindowSpec:
    """Window geometry: tumbling when ``step_ms == width_ms`` (the
    default), sliding (overlapping) when ``step_ms < width_ms``.

    Window ``k`` covers ``[k * step_ms, k * step_ms + width_ms)``.
    """

    width_ms: float = 1000.0
    step_ms: Optional[float] = None

    def __post_init__(self) -> None:
        step = self.step_ms if self.step_ms is not None else self.width_ms
        if self.width_ms <= 0 or step <= 0:
            raise ConfigurationError("window width and step must be positive")
        if step > self.width_ms:
            raise ConfigurationError(
                f"step {step} ms larger than width {self.width_ms} ms "
                "would drop samples between windows"
            )
        object.__setattr__(self, "step_ms", step)

    def starts_covering(self, t_ms: float) -> Tuple[float, ...]:
        """Start times of every window containing ``t_ms``."""
        step = float(self.step_ms)  # type: ignore[arg-type]
        last = int(t_ms // step)  # window starting at/just before t
        starts: List[float] = []
        k = last
        while k >= 0 and k * step > t_ms - self.width_ms:
            starts.append(k * step)
            k -= 1
        return tuple(reversed(starts))


@dataclass(frozen=True)
class WindowAggregate:
    """One closed window of one series."""

    series: str
    start_ms: float
    end_ms: float
    count: int
    sum: float
    min: float
    max: float
    last: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_record(self) -> Dict[str, object]:
        return {
            "type": "aggregate",
            "series": self.series,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "last": self.last,
        }


@dataclass
class _OpenWindow:
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    last_t_ms: float = float("-inf")
    last: float = 0.0

    def add(self, t_ms: float, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if t_ms >= self.last_t_ms:
            self.last_t_ms = t_ms
            self.last = value


@dataclass
class _SeriesState:
    kind: str
    samples: List[Tuple[float, float]] = field(default_factory=list)
    open_windows: Dict[float, _OpenWindow] = field(default_factory=dict)
    dropped_retention: int = 0
    dropped_late: int = 0


class TimeSeriesPipeline:
    """Streaming windowed aggregation over timestamped metric samples.

    Samples must arrive in non-decreasing sim-clock order per call site;
    a sample older than the watermark minus ``allowed_lateness_ms``
    whose windows have already closed is dropped and counted
    (``dropped_late``), never silently folded into a closed aggregate --
    that is what keeps the emission stream replay-stable.
    """

    def __init__(
        self,
        window: Optional[WindowSpec] = None,
        *,
        retention_samples: int = 4096,
        retention_ms: Optional[float] = None,
        allowed_lateness_ms: float = 0.0,
        obs: Optional[object] = None,
    ) -> None:
        from repro.obs import NULL_OBS  # local: obs/__init__ imports us

        if retention_samples < 2:
            raise ConfigurationError("retention_samples must be >= 2")
        self.window = window if window is not None else WindowSpec()
        self.retention_samples = retention_samples
        self.retention_ms = retention_ms
        self.allowed_lateness_ms = allowed_lateness_ms
        self.obs = obs if obs is not None else NULL_OBS
        self.watermark_ms = float("-inf")
        self._series: Dict[str, _SeriesState] = {}
        self._emitted: List[WindowAggregate] = []
        self._ingested = 0

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def ingest(
        self, t_ms: float, series: str, value: float, kind: str = "gauge"
    ) -> None:
        """Feed one sample; may close (emit) windows on every series."""
        state = self._series.get(series)
        if state is None:
            state = self._series[series] = _SeriesState(kind=kind)
            self.obs.metrics.gauge("obs.ts.series").set(len(self._series))
        horizon = self.watermark_ms - self.allowed_lateness_ms
        starts = self.window.starts_covering(t_ms)
        if not starts or (starts[-1] + self.window.width_ms) <= horizon:
            # Every window this sample belongs to has already closed.
            state.dropped_late += 1
            self.obs.metrics.counter("obs.ts.dropped_late").inc()
            return
        self._ingested += 1
        self.obs.metrics.counter("obs.ts.samples").inc()
        state.samples.append((t_ms, value))
        self._retain(state)
        for start in starts:
            if start + self.window.width_ms <= horizon:
                continue  # closed sub-window of a late-but-usable sample
            state.open_windows.setdefault(start, _OpenWindow()).add(t_ms, value)
        if t_ms > self.watermark_ms:
            self.watermark_ms = t_ms
            self._emit_closed(self.watermark_ms - self.allowed_lateness_ms)

    def ingest_sample(self, sample: Sample) -> None:
        self.ingest(sample.t_ms, sample.series, sample.value, sample.kind)

    def scrape(
        self,
        registry: MetricsRegistry,
        t_ms: float,
        prefix: Optional[str] = None,
    ) -> int:
        """Snapshot every counter/gauge of a registry as samples at
        ``t_ms`` (histograms contribute ``.count`` and ``.sum``
        sub-series).  Returns the number of samples ingested."""
        snapshot = registry.snapshot()
        n = 0
        for kind in ("counters", "gauges"):
            for key, value in snapshot[kind].items():
                if prefix is not None and not key.startswith(prefix):
                    continue
                self.ingest(t_ms, key, float(value), kind=kind[:-1])
                n += 1
        for key, hist in snapshot["histograms"].items():
            if prefix is not None and not key.startswith(prefix):
                continue
            self.ingest(t_ms, f"{key}.count", float(hist["count"]), "counter")
            self.ingest(t_ms, f"{key}.sum", float(hist["sum"]), "counter")
            n += 2
        return n

    def replay(self, records: Iterable[Mapping[str, object]]) -> int:
        """Ingest a JSONL timeline export (``type == "sample"`` records;
        meta lines and unknown record types are skipped, and unknown
        fields on known records are ignored).  Returns samples ingested."""
        n = 0
        for record in records:
            if record.get("type") != "sample":
                continue
            self.ingest_sample(Sample.from_record(record))
            n += 1
        return n

    def flush(self) -> Tuple[WindowAggregate, ...]:
        """Close every still-open window (end of stream) and return the
        aggregates emitted by this flush."""
        before = len(self._emitted)
        self._emit_closed(float("inf"))
        return tuple(self._emitted[before:])

    # ------------------------------------------------------------------ #
    # Window bookkeeping
    # ------------------------------------------------------------------ #

    def _retain(self, state: _SeriesState) -> None:
        samples = state.samples
        if self.retention_ms is not None:
            cutoff = self.watermark_ms - self.retention_ms
            drop = 0
            while drop < len(samples) and samples[drop][0] < cutoff:
                drop += 1
            if drop:
                del samples[:drop]
                state.dropped_retention += drop
        if len(samples) > self.retention_samples:
            # Deterministic decimation: keep the last sample of each
            # adjacent pair, halving resolution (gauge/counter-correct:
            # the retained point is the newest of the pair).
            kept = samples[1::2]
            state.dropped_retention += len(samples) - len(kept)
            state.samples = kept
        if state.dropped_retention:
            self.obs.metrics.counter("obs.ts.dropped_retention").inc(0.0)

    def _emit_closed(self, horizon_ms: float) -> None:
        """Emit every open window with ``end <= horizon`` in canonical
        (end, start, series) order."""
        due: List[Tuple[float, float, str, _OpenWindow]] = []
        for series in self._series:
            state = self._series[series]
            for start, win in state.open_windows.items():
                if start + self.window.width_ms <= horizon_ms:
                    due.append(
                        (start + self.window.width_ms, start, series, win)
                    )
        for end, start, series, win in sorted(due, key=lambda d: d[:3]):
            del self._series[series].open_windows[start]
            self._emitted.append(
                WindowAggregate(
                    series=series,
                    start_ms=start,
                    end_ms=end,
                    count=win.count,
                    sum=win.sum,
                    min=win.min,
                    max=win.max,
                    last=win.last,
                )
            )
            if self.watermark_ms > float("-inf") and self.watermark_ms >= end:
                self.obs.metrics.histogram("obs.ts.window_lag_ms").observe(
                    self.watermark_ms - end
                )

    # ------------------------------------------------------------------ #
    # Query / derived series
    # ------------------------------------------------------------------ #

    @property
    def num_series(self) -> int:
        return len(self._series)

    @property
    def num_ingested(self) -> int:
        return self._ingested

    def dropped(self, series: str) -> Tuple[int, int]:
        """(late drops, retention drops) for one series."""
        state = self._series.get(series)
        if state is None:
            return (0, 0)
        return (state.dropped_late, state.dropped_retention)

    def aggregates(self, series: Optional[str] = None) -> Tuple[WindowAggregate, ...]:
        """Emitted aggregates in emission order (optionally one series)."""
        if series is None:
            return tuple(self._emitted)
        return tuple(a for a in self._emitted if a.series == series)

    def series_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._series))

    def rate(self, series: str) -> Tuple[Tuple[float, float], ...]:
        """Per-second first difference of window-final values -- the
        counter-rate operator.  Points are (window end, rate)."""
        out: List[Tuple[float, float]] = []
        prev: Optional[WindowAggregate] = None
        for agg in self.aggregates(series):
            if prev is not None and agg.end_ms > prev.end_ms:
                dt_s = (agg.end_ms - prev.end_ms) / 1e3
                out.append((agg.end_ms, (agg.last - prev.last) / dt_s))
            prev = agg
        return tuple(out)

    def delta(self, series: str) -> Tuple[Tuple[float, float], ...]:
        """Window-over-window change of window-final values."""
        out: List[Tuple[float, float]] = []
        prev: Optional[WindowAggregate] = None
        for agg in self.aggregates(series):
            if prev is not None:
                out.append((agg.end_ms, agg.last - prev.last))
            prev = agg
        return tuple(out)

    def ewma(self, series: str, alpha: float = 0.3) -> Tuple[Tuple[float, float], ...]:
        """Exponentially weighted moving average of window means."""
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("ewma alpha must be in (0, 1]")
        out: List[Tuple[float, float]] = []
        level: Optional[float] = None
        for agg in self.aggregates(series):
            level = agg.mean if level is None else (
                alpha * agg.mean + (1.0 - alpha) * level
            )
            out.append((agg.end_ms, level))
        return tuple(out)

    def rolling_quantile(
        self, series: str, q: float, window: int = 8
    ) -> Tuple[Tuple[float, float], ...]:
        """Exact quantile of the last ``window`` window-means (lower
        interpolation, deterministic)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if window < 1:
            raise ConfigurationError("rolling window must be >= 1")
        means: List[float] = []
        out: List[Tuple[float, float]] = []
        for agg in self.aggregates(series):
            means.append(agg.mean)
            tail = sorted(means[-window:])
            rank = min(len(tail) - 1, int(q * len(tail)))
            out.append((agg.end_ms, tail[rank]))
        return tuple(out)

    def downsample(
        self, series: str, factor: int
    ) -> Tuple[WindowAggregate, ...]:
        """Deterministically merge every ``factor`` consecutive
        aggregates into one (counts/sums add, min/max fold, ``last``
        from the newest member).  A short tail group is kept."""
        if factor < 1:
            raise ConfigurationError("downsample factor must be >= 1")
        aggs = self.aggregates(series)
        out: List[WindowAggregate] = []
        for i in range(0, len(aggs), factor):
            group = aggs[i : i + factor]
            out.append(
                WindowAggregate(
                    series=series,
                    start_ms=group[0].start_ms,
                    end_ms=group[-1].end_ms,
                    count=sum(g.count for g in group),
                    sum=sum(g.sum for g in group),
                    min=min(g.min for g in group),
                    max=max(g.max for g in group),
                    last=group[-1].last,
                )
            )
        return tuple(out)

    # ------------------------------------------------------------------ #
    # Determinism / export
    # ------------------------------------------------------------------ #

    def to_records(self) -> List[Dict[str, object]]:
        """Meta line + every emitted aggregate, JSONL-ready."""
        head: Dict[str, object] = {
            "type": "meta",
            "stream": "aggregates",
            "schema_version": TIMESERIES_SCHEMA_VERSION,
            "window_width_ms": self.window.width_ms,
            "window_step_ms": self.window.step_ms,
            "aggregates": len(self._emitted),
            "digest": self.digest(),
        }
        return [head, *[a.to_record() for a in self._emitted]]

    def digest(self) -> str:
        """SHA-256 over the canonical emission stream plus per-series
        drop counters: equal digests mean a byte-identical replay."""
        h = hashlib.sha256()
        for agg in self._emitted:
            h.update(
                json.dumps(agg.to_record(), sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
            )
            h.update(b"\n")
        for series in sorted(self._series):
            state = self._series[series]
            h.update(
                f"{series}|{state.dropped_late}|{state.dropped_retention}\n"
                .encode("utf-8")
            )
        return h.hexdigest()


def samples_to_records(
    samples: Sequence[Sample], **meta: object
) -> List[Dict[str, object]]:
    """Meta line + sample records: the fleet-timeline JSONL stream."""
    head: Dict[str, object] = {
        "type": "meta",
        "stream": "timeline",
        "schema_version": TIMESERIES_SCHEMA_VERSION,
        "samples": len(samples),
    }
    head.update(meta)
    return [head, *[s.to_record() for s in samples]]


def samples_from_records(
    records: Iterable[Mapping[str, object]],
) -> Tuple[Sample, ...]:
    """Inverse of :func:`samples_to_records`; skips meta/unknown record
    types and tolerates unknown fields on sample records."""
    return tuple(
        Sample.from_record(r) for r in records if r.get("type") == "sample"
    )


__all__ = [
    "Sample",
    "TIMESERIES_SCHEMA_VERSION",
    "TimeSeriesPipeline",
    "WindowAggregate",
    "WindowSpec",
    "samples_from_records",
    "samples_to_records",
]
