"""Clocks that drive the observability subsystem.

Traces must be reproducible under a fixed seed (§3.2.2's telemetry loop
is only debuggable because the same incident can be replayed), so span
timing never comes from the wall: the default :class:`SimClock` is a
plain accumulator the instrumented code advances by *modeled* durations
(a reconfiguration plan's ``duration_ms``, a recovery replay's applied
plans, a watchdog poll interval).  Two runs with equal seeds therefore
produce byte-identical span trees.

:class:`WallClock` implements the same interface against
``time.perf_counter`` for the one place real time is wanted: the perf
harness's per-phase breakdown (``benchmarks/perf``), where the artifact
is a measurement, not a reproducible trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError


@dataclass
class SimClock:
    """Deterministic milliseconds accumulator (the default trace clock)."""

    now_ms: float = 0.0

    def now(self) -> float:
        """Current simulation time in ms."""
        return self.now_ms

    def advance(self, dt_ms: float) -> float:
        """Move the clock forward by ``dt_ms`` (must be non-negative)."""
        if dt_ms < 0:
            raise ConfigurationError(f"clock cannot run backward ({dt_ms} ms)")
        self.now_ms += dt_ms
        return self.now_ms

    def advance_to(self, t_ms: float) -> float:
        """Move the clock forward to an absolute time (never backward)."""
        self.now_ms = max(self.now_ms, t_ms)
        return self.now_ms


@dataclass
class WallClock:
    """Real elapsed time, for measurement artifacts (perf harness only).

    ``advance`` is a no-op: wall time moves on its own.  The epoch is the
    clock's construction, so span starts stay small readable numbers.
    """

    _epoch_s: float = field(default_factory=time.perf_counter)

    def now(self) -> float:
        return (time.perf_counter() - self._epoch_s) * 1e3

    def advance(self, dt_ms: float) -> float:
        del dt_ms
        return self.now()

    def advance_to(self, t_ms: float) -> float:
        del t_ms
        return self.now()
