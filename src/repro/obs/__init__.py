"""Unified fabric observability: tracing, metrics, exporters (§3.2.2).

The paper credits production OCS fleets to heavy telemetry/monitoring
investment; Mission Apollo says the same of its qualification loop.
This package is the cross-cutting instrumentation layer every subsystem
reports through:

- :mod:`repro.obs.clock` -- the deterministic :class:`SimClock` spans
  are timed on (and a :class:`WallClock` for perf measurement);
- :mod:`repro.obs.metrics` -- the :class:`MetricsRegistry` of labeled
  counters, gauges, and exponential-bucket histograms;
- :mod:`repro.obs.trace` -- the :class:`Tracer` producing nested,
  reproducible span trees via ``span(name, **attrs)``;
- :mod:`repro.obs.export` -- JSONL exporters (the CI artifacts);
- :mod:`repro.obs.timeseries` -- the streaming windowed-aggregation
  pipeline over timestamped samples (the digital twin's substrate);
- :mod:`repro.obs.drill` -- the seeded, fully-instrumented chaos drill
  behind ``python -m repro.tools.noc``.

Instrumented code takes an optional :class:`Observability` bundle and
defaults to :data:`NULL_OBS`, whose tracer/registry/clock are shared
no-ops -- hot paths (the vectorized kernels, the injector pump) pay one
attribute lookup and a no-op call when observability is off, keeping the
perf-harness overhead within the <=5% budget and every pre-existing
report digest byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.obs.clock import SimClock, WallClock
from repro.obs.export import (
    SCHEMA_VERSION,
    JsonlRecords,
    export_metrics,
    export_timeline,
    export_trace,
    read_jsonl,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SeriesFamily,
)
from repro.obs.timeseries import (
    Sample,
    TimeSeriesPipeline,
    WindowAggregate,
    WindowSpec,
)
from repro.obs.trace import Span, Tracer


# ---------------------------------------------------------------------- #
# The no-op surface (observability off)
# ---------------------------------------------------------------------- #


class _NullClock:
    """A clock that never moves (and never allocates)."""

    def now(self) -> float:
        return 0.0

    def advance(self, dt_ms: float) -> float:
        del dt_ms
        return 0.0

    def advance_to(self, t_ms: float) -> float:
        del t_ms
        return 0.0


class _NullInstrument:
    """Stands in for Counter, Gauge, and Histogram at once."""

    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> float:
        del amount
        return 0.0

    add = inc

    def set(self, value: float) -> float:
        del value
        return 0.0

    def observe(self, value: float) -> None:
        del value

    def quantile(self, q: float) -> float:
        del q
        return 0.0


class _NullFamily:
    """Bound-series family whose every member is the null instrument."""

    _instrument = _NullInstrument()

    def series(self, *label_values: object) -> _NullInstrument:
        del label_values
        return self._instrument


class _NullRegistry:
    """Get-or-create that always hands back the shared null instrument."""

    _instrument = _NullInstrument()
    _family = _NullFamily()
    num_series = 0

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        del name, labels
        return self._instrument

    gauge = counter

    def histogram(self, name: str, bounds=None, **labels: object) -> _NullInstrument:
        del name, bounds, labels
        return self._instrument

    def handle(self, kind: str, name: str, **labels: object) -> _NullInstrument:
        del kind, name, labels
        return self._instrument

    def family(self, kind: str, name: str, *label_names: str) -> _NullFamily:
        del kind, name, label_names
        return self._family

    def value(self, name: str, **labels: object) -> float:
        del name, labels
        return 0.0

    def counters(self, name=None, **labels: object) -> Tuple[()]:
        del name, labels
        return ()

    def sum_counters(self, name: str, **labels: object) -> float:
        del name, labels
        return 0.0


class _NullSpan:
    """The span yielded when observability is off."""

    name = ""
    attrs: Tuple[()] = ()
    status = "ok"
    duration_ms = 0.0

    def set_attr(self, key: str, value: object) -> None:
        del key, value

    def attr(self, key: str, default=None):
        del key
        return default


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable, reentrant no-op context manager (never swallows)."""

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        del exc_type, exc, tb
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _NullTracer:
    clock = _NullClock()
    num_spans = 0

    def span(self, name: str, **attrs: object) -> _NullSpanContext:
        del name, attrs
        return _NULL_SPAN_CONTEXT

    def event(self, message: str) -> None:
        del message

    def spans(self) -> Tuple[()]:
        return ()

    def find(self, name=None, **attrs: object) -> Tuple[()]:
        del name, attrs
        return ()

    def slowest(self, k: int = 10, name=None) -> Tuple[()]:
        del k, name
        return ()


# ---------------------------------------------------------------------- #
# The bundle instrumented code carries
# ---------------------------------------------------------------------- #


@dataclass
class Observability:
    """One run's clock + metrics + tracer, handed through constructors.

    Build with :meth:`sim` (deterministic, the default for drills and
    tests), :meth:`wall` (perf measurement), or use :data:`NULL_OBS`
    (shared, disabled).  ``enabled`` lets instrumented code skip
    attribute-building work that only matters when someone is watching.
    """

    clock: SimClock = field(default_factory=SimClock)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(init=False)
    enabled: bool = True

    def __post_init__(self) -> None:
        self.tracer = Tracer(clock=self.clock)

    @classmethod
    def sim(cls) -> "Observability":
        """Deterministic bundle on a fresh simulation clock."""
        return cls()

    @classmethod
    def wall(cls) -> "Observability":
        """Wall-clock bundle for measurement artifacts (perf harness)."""
        return cls(clock=WallClock())  # type: ignore[arg-type]

    def digests(self) -> Tuple[str, str]:
        """(trace digest, metrics digest) -- the determinism fingerprint."""
        return self.tracer.tree_digest(), self.metrics.digest()


class _NullObservability:
    """The disabled bundle: every surface is a shared no-op."""

    clock = _NullClock()
    metrics = _NullRegistry()
    tracer = _NullTracer()
    enabled = False

    def digests(self) -> Tuple[str, str]:
        return ("", "")


#: Shared disabled bundle; ``obs or NULL_OBS`` is the canonical default.
NULL_OBS = _NullObservability()


def resolve_obs(obs: Optional[object]) -> object:
    """Normalize an optional obs argument to a usable bundle."""
    return obs if obs is not None else NULL_OBS


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlRecords",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "SCHEMA_VERSION",
    "Sample",
    "SeriesFamily",
    "SimClock",
    "Span",
    "TimeSeriesPipeline",
    "Tracer",
    "WallClock",
    "WindowAggregate",
    "WindowSpec",
    "export_metrics",
    "export_timeline",
    "export_trace",
    "read_jsonl",
    "resolve_obs",
    "write_jsonl",
]
