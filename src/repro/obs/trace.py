"""Structured tracing: nested spans on the simulation clock.

A :class:`Tracer` produces a tree of :class:`Span` records through the
``span(name, **attrs)`` context manager.  Start/end times come from the
tracer's clock (:mod:`repro.obs.clock`), which instrumented code
advances by *modeled* durations -- so the span tree, including every
timestamp, is a pure function of the seed.  ``tree_digest()`` pins that
down for the determinism tests.

The in-memory query API (:meth:`Tracer.find`, :meth:`Tracer.slowest`,
:meth:`Tracer.children`) is what the NOC report and the tests consume;
the JSONL exporter (:mod:`repro.obs.export`) is the CI artifact path.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.clock import SimClock

#: Span attributes, canonicalized: sorted (key, rendered value) pairs.
AttrSet = Tuple[Tuple[str, str], ...]


def _canon_attrs(attrs: Dict[str, object]) -> AttrSet:
    return tuple(sorted((str(k), str(v)) for k, v in attrs.items()))


@dataclass
class Span:
    """One traced operation (mutable while open, frozen by convention
    after its context manager exits)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ms: float
    end_ms: Optional[float] = None
    attrs: AttrSet = ()
    status: str = "ok"
    #: Timestamped point annotations added while the span was open.
    events: Tuple[Tuple[float, str], ...] = ()

    @property
    def duration_ms(self) -> float:
        return (self.end_ms - self.start_ms) if self.end_ms is not None else 0.0

    def attr(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def set_attr(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute on an open span."""
        self.attrs = _canon_attrs({**dict(self.attrs), key: value})

    def to_record(self) -> Dict[str, object]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "attrs": dict(self.attrs),
            "events": [list(e) for e in self.events],
        }


class Tracer:
    """Produces and stores the span tree of one run."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._spans: List[Span] = []  # in start order, stable across runs
        self._stack: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a nested span; closes (with error status) on exception."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            start_ms=self.clock.now(),
            attrs=_canon_attrs(attrs),
        )
        self._next_id += 1
        self._spans.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as err:
            span.status = "error"
            span.set_attr("error", type(err).__name__)
            raise
        finally:
            self._stack.pop()
            span.end_ms = self.clock.now()

    def event(self, message: str) -> None:
        """Timestamped annotation on the innermost open span (dropped
        when no span is open -- events are trace detail, not state)."""
        if self._stack:
            span = self._stack[-1]
            span.events = span.events + ((self.clock.now(), message),)

    # ------------------------------------------------------------------ #
    # Query API
    # ------------------------------------------------------------------ #

    def spans(self) -> Tuple[Span, ...]:
        """Every recorded span, in start order."""
        return tuple(self._spans)

    def find(
        self,
        name: Optional[str] = None,
        t0_ms: Optional[float] = None,
        t1_ms: Optional[float] = None,
        **attrs: object,
    ) -> Tuple[Span, ...]:
        """Spans filtered by name, time overlap, and attribute subset.

        A span matches a time range when its [start, end] interval
        overlaps [t0, t1]; open spans are treated as ending now.
        """
        want = dict(_canon_attrs(attrs))
        out: List[Span] = []
        for span in self._spans:
            if name is not None and span.name != name:
                continue
            end = span.end_ms if span.end_ms is not None else self.clock.now()
            if t0_ms is not None and end < t0_ms:
                continue
            if t1_ms is not None and span.start_ms > t1_ms:
                continue
            have = dict(span.attrs)
            if not all(have.get(k) == v for k, v in want.items()):
                continue
            out.append(span)
        return tuple(out)

    def slowest(self, k: int = 10, name: Optional[str] = None) -> Tuple[Span, ...]:
        """Top-``k`` spans by duration (ties broken by start order)."""
        pool = self.find(name=name) if name is not None else self.spans()
        closed = [s for s in pool if s.end_ms is not None]
        return tuple(
            sorted(closed, key=lambda s: (-s.duration_ms, s.span_id))[:k]
        )

    def children(self, span: Span) -> Tuple[Span, ...]:
        return tuple(s for s in self._spans if s.parent_id == span.span_id)

    def roots(self) -> Tuple[Span, ...]:
        return tuple(s for s in self._spans if s.parent_id is None)

    @property
    def num_spans(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------ #
    # Determinism / export
    # ------------------------------------------------------------------ #

    def tree_digest(self) -> str:
        """SHA-256 over every span's identity, structure, timing, attrs,
        and events: equal digests mean byte-identical traces."""
        h = hashlib.sha256()
        for s in self._spans:
            attrs = ",".join(f"{k}={v}" for k, v in s.attrs)
            events = ";".join(f"{t!r}:{m}" for t, m in s.events)
            h.update(
                f"{s.span_id}|{s.parent_id}|{s.name}|{s.start_ms!r}|"
                f"{s.end_ms!r}|{s.status}|{attrs}|{events}\n".encode("utf-8")
            )
        return h.hexdigest()

    def to_records(self) -> List[Dict[str, object]]:
        return [s.to_record() for s in self._spans]
