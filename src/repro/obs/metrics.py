"""A deterministic metrics registry: counters, gauges, histograms.

The fleet only works in production because every control-plane action is
counted somewhere a NOC dashboard can see it (§3.2.2, §3.4).  This is
that substrate for the reproduction: one :class:`MetricsRegistry` holds
every series, keyed by a metric name (``subsystem.object.verb`` by
convention, see ``docs/SYSTEMS.md`` §10) plus a small sorted label set.

Three instrument kinds:

- :class:`Counter` -- monotonically non-decreasing totals (``inc``/``add``);
- :class:`Gauge` -- last-write-wins level (``set``/``add``);
- :class:`Histogram` -- exponential-bucket distribution (``observe``),
  with a quantile estimator for SLO reporting.

Everything is plain Python and insertion-ordered, so a
:meth:`MetricsRegistry.snapshot` is a pure function of the recorded
operations and :meth:`MetricsRegistry.digest` is byte-stable across
equal-seed runs -- the property the tracing-determinism tests pin.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError

#: A series' label set, canonicalized: sorted (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def _canon_labels(labels: Mapping[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name: str, labels: LabelSet) -> str:
    """Render ``name{k=v,...}`` (just ``name`` when unlabeled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically non-decreasing total."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        self.value += amount
        return self.value

    #: ``add`` reads better at call sites accumulating batch totals.
    add = inc


@dataclass
class Gauge:
    """A last-write-wins level (may go up or down)."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def add(self, delta: float) -> float:
        self.value += delta
        return self.value


#: Default exponential bucket ladder: 0.001 * 2**i upper bounds.  40
#: buckets span 1e-3 .. ~5.5e8, covering microsecond kernels through
#: multi-hour repair horizons in ms without tuning.
DEFAULT_BUCKET_START = 1e-3
DEFAULT_BUCKET_FACTOR = 2.0
DEFAULT_BUCKET_COUNT = 40


def exponential_bounds(
    start: float = DEFAULT_BUCKET_START,
    factor: float = DEFAULT_BUCKET_FACTOR,
    count: int = DEFAULT_BUCKET_COUNT,
) -> Tuple[float, ...]:
    """Upper bounds of an exponential bucket ladder."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ConfigurationError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


@dataclass
class Histogram:
    """An exponential-bucket distribution of observed values.

    ``counts[i]`` holds observations with ``value <= bounds[i]`` (and
    above ``bounds[i-1]``); the implicit final bucket is +inf overflow.
    """

    name: str
    labels: LabelSet = ()
    bounds: Tuple[float, ...] = field(default_factory=exponential_bounds)
    counts: List[int] = field(init=False)
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Conservative quantile estimate: the upper bound of the bucket
        where the cumulative count crosses ``q`` (``max`` for overflow).

        Good enough for SLO gating -- the estimate never understates the
        true quantile by more than one bucket's width.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return min(self.bounds[index], self.max)
                return self.max
        return self.max


#: Default series-cardinality warning bound.  Drills run a few hundred
#: series; crossing this means a label set is being fed unbounded values
#: (request ids, timestamps, ...) -- the classic cardinality explosion.
DEFAULT_SERIES_WARN_LIMIT = 4096


class SeriesFamily:
    """A bound handle over one metric name with a fixed label-key set.

    ``registry.counter(name, **labels)`` canonicalizes the label dict on
    every call (sort + str per key) before the get-or-create lookup --
    cheap once, hot in a million-request serving loop.  A family is
    resolved once, outside the loop, and :meth:`series` takes the label
    *values* positionally (in the order the family was declared with),
    hitting a plain tuple-keyed dict.  Series created through a family
    are the same objects the name-based accessors return, so snapshots
    and digests are unchanged -- this is purely a resolution cache.
    """

    __slots__ = ("_registry", "_kind", "name", "label_names", "_series")

    def __init__(
        self,
        registry: "MetricsRegistry",
        kind: str,
        name: str,
        label_names: Tuple[str, ...],
    ) -> None:
        if kind not in ("counter", "gauge", "histogram"):
            raise ConfigurationError(f"unknown instrument kind {kind!r}")
        if len(set(label_names)) != len(label_names):
            raise ConfigurationError("family label names must be unique")
        self._registry = registry
        self._kind = kind
        self.name = name
        self.label_names = label_names
        self._series: Dict[Tuple[str, ...], object] = {}

    def series(self, *label_values: object):
        """The instrument for one label-value tuple (get-or-create)."""
        key = label_values if all(
            type(v) is str for v in label_values
        ) else tuple(str(v) for v in label_values)
        found = self._series.get(key)
        if found is None:
            if len(key) != len(self.label_names):
                raise ConfigurationError(
                    f"family {self.name} takes {len(self.label_names)} label "
                    f"values, got {len(key)}"
                )
            accessor = getattr(self._registry, self._kind)
            found = accessor(self.name, **dict(zip(self.label_names, key)))
            self._series[key] = found
        return found


class MetricsRegistry:
    """All metric series of one run, get-or-create by (name, labels).

    A configurable cardinality guard makes runaway label sets loud:
    the first time ``num_series`` crosses ``series_warn_limit`` a
    ``RuntimeWarning`` fires (once per registry) and the
    ``obs.registry.series_high_water`` gauge starts tracking the peak.
    """

    def __init__(
        self, series_warn_limit: int = DEFAULT_SERIES_WARN_LIMIT
    ) -> None:
        if series_warn_limit < 1:
            raise ConfigurationError("series_warn_limit must be >= 1")
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        self.series_warn_limit = series_warn_limit
        self._series_warned = False

    def _series_created(self) -> None:
        """Cardinality guard, called on every get-or-create miss."""
        if self.num_series <= self.series_warn_limit:
            return
        first_crossing = not self._series_warned
        # Set the flag before touching the gauge: the gauge itself is a
        # new series and would otherwise recurse through this guard.
        self._series_warned = True
        self.gauge("obs.registry.series_high_water").set(self.num_series)
        if first_crossing:
            import warnings

            warnings.warn(
                f"metrics registry crossed {self.series_warn_limit} series "
                f"({self.num_series}); a label set is likely unbounded",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------ #
    # Instrument accessors
    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _canon_labels(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(name, key[1])
            self._series_created()
        return series

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _canon_labels(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(name, key[1])
            self._series_created()
        return series

    def histogram(
        self,
        name: str,
        bounds: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _canon_labels(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(
                name, key[1], bounds=bounds or exponential_bounds()
            )
            self._series_created()
        return series

    # ------------------------------------------------------------------ #
    # Bound handles (hot-loop resolution cache)
    # ------------------------------------------------------------------ #

    def handle(self, kind: str, name: str, **labels: object):
        """Resolve one series once; the returned instrument is a bound
        handle -- calling ``inc``/``observe`` on it skips every further
        name+label canonicalization.  ``kind`` is ``counter``, ``gauge``,
        or ``histogram``; the instrument is identical to what the
        name-based accessor returns for the same (name, labels)."""
        if kind not in ("counter", "gauge", "histogram"):
            raise ConfigurationError(f"unknown instrument kind {kind!r}")
        return getattr(self, kind)(name, **labels)

    def family(self, kind: str, name: str, *label_names: str) -> SeriesFamily:
        """A :class:`SeriesFamily` over ``name`` with fixed label keys,
        for hot loops whose label *values* vary per event (outcome, kind,
        ...).  ``family.series(v1, v2)`` is one tuple-keyed dict hit."""
        return SeriesFamily(self, kind, name, label_names)

    # ------------------------------------------------------------------ #
    # Query API
    # ------------------------------------------------------------------ #

    def value(self, name: str, **labels: object) -> float:
        """Current value of one counter or gauge series (0.0 if absent)."""
        key = (name, _canon_labels(labels))
        series = self._counters.get(key) or self._gauges.get(key)
        return series.value if series is not None else 0.0

    def counters(
        self, name: Optional[str] = None, **labels: object
    ) -> Iterator[Counter]:
        """Counter series matching a name and a label subset."""
        want = dict(_canon_labels(labels))
        for (series_name, series_labels), series in self._counters.items():
            if name is not None and series_name != name:
                continue
            have = dict(series_labels)
            if all(have.get(k) == v for k, v in want.items()):
                yield series

    def sum_counters(self, name: str, **labels: object) -> float:
        """Total across every counter series matching the filters."""
        return sum(series.value for series in self.counters(name, **labels))

    @property
    def num_series(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------ #
    # Snapshots / export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Canonical (sorted) view of every series, JSON-serializable."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for (name, labels), c in sorted(self._counters.items()):
            out["counters"][series_key(name, labels)] = c.value
        for (name, labels), g in sorted(self._gauges.items()):
            out["gauges"][series_key(name, labels)] = g.value
        for (name, labels), h in sorted(self._histograms.items()):
            out["histograms"][series_key(name, labels)] = {
                "count": h.count,
                "sum": h.sum,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
                # Sparse: only occupied buckets, as [upper_bound, count].
                "buckets": [
                    [h.bounds[i] if i < len(h.bounds) else "inf", n]
                    for i, n in enumerate(h.counts)
                    if n
                ],
            }
        return out

    def to_records(self) -> List[Dict[str, object]]:
        """Flat per-series records for the JSONL exporter."""
        records: List[Dict[str, object]] = []
        snapshot = self.snapshot()
        for kind in ("counters", "gauges"):
            for key, value in snapshot[kind].items():
                records.append({"type": kind[:-1], "series": key, "value": value})
        for key, hist in snapshot["histograms"].items():
            records.append({"type": "histogram", "series": key, **hist})
        return records

    def digest(self) -> str:
        """SHA-256 over the canonical snapshot: equal digests mean every
        series recorded byte-identical values."""
        payload = json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
