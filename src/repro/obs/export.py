"""JSONL export/import for traces, metric snapshots, and timelines.

One record per line, plain JSON -- greppable, diffable, and small enough
to upload as a CI artifact from every recovery drill.  The first line of
each file is a ``meta`` record identifying the stream so a reader can
tell a trace file from a metrics file without trusting the filename.

Meta records carry a ``schema_version`` (:data:`SCHEMA_VERSION`);
readers must tolerate unknown fields on any record so a newer writer
never strands an older reader.

A drill killed mid-write leaves a torn final line.  :func:`read_jsonl`
skips that tail instead of raising -- every downstream consumer (the NOC
report, the time-series replay, the twin's timeline loader) keeps
working on the records that did land -- and surfaces the count on the
returned list's ``truncated_records`` attribute.  Corruption anywhere
*before* the tail still raises: that is damage, not a torn write.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.core.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

PathLike = Union[str, Path]

#: Version stamped into every export's meta record.  Bump when a
#: record's meaning changes; adding fields is not a bump (readers
#: ignore unknown fields).
SCHEMA_VERSION = 1


class JsonlRecords(List[Dict[str, object]]):
    """The records of one JSONL stream, plus read diagnostics.

    A plain ``list`` everywhere it matters, with one extra attribute:
    ``truncated_records`` -- how many torn trailing lines were skipped
    (0 for a cleanly closed file).
    """

    truncated_records: int = 0


def write_jsonl(
    path: PathLike, records: Sequence[Mapping[str, object]]
) -> Path:
    """Write records one-per-line; returns the resolved path."""
    out = Path(path)
    with out.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
    return out


def read_jsonl(path: PathLike) -> JsonlRecords:
    """Read every record back (inverse of :func:`write_jsonl`).

    Tolerant of a torn tail: an unparseable *final* line (a writer
    killed mid-record) is skipped and counted on the result's
    ``truncated_records``.  An unparseable line with complete records
    after it is corruption and raises."""
    records = JsonlRecords()
    lines = Path(path).read_text(encoding="utf-8").split("\n")
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            if all(not later.strip() for later in lines[index + 1:]):
                records.truncated_records += 1
                break
            raise ConfigurationError(
                f"{path}: corrupt JSONL record on line {index + 1} "
                "with complete records after it"
            ) from err
    return records


def export_trace(path: PathLike, tracer: Tracer, **meta: object) -> Path:
    """Write one tracer's span tree as JSONL (meta line + span records)."""
    head: Dict[str, object] = {
        "type": "meta",
        "stream": "trace",
        "schema_version": SCHEMA_VERSION,
        "spans": tracer.num_spans,
        "digest": tracer.tree_digest(),
    }
    head.update(meta)
    return write_jsonl(path, [head, *tracer.to_records()])


def export_metrics(path: PathLike, registry: MetricsRegistry, **meta: object) -> Path:
    """Write one registry snapshot as JSONL (meta line + series records)."""
    head: Dict[str, object] = {
        "type": "meta",
        "stream": "metrics",
        "schema_version": SCHEMA_VERSION,
        "series": registry.num_series,
        "digest": registry.digest(),
    }
    head.update(meta)
    return write_jsonl(path, [head, *registry.to_records()])


def export_timeline(path: PathLike, samples: Sequence, **meta: object) -> Path:
    """Write timestamped :class:`~repro.obs.timeseries.Sample` records as
    a timeline stream (the twin's recording artifact)."""
    from repro.obs.timeseries import samples_to_records

    return write_jsonl(path, samples_to_records(samples, **meta))
