"""JSONL export/import for traces and metric snapshots.

One record per line, plain JSON -- greppable, diffable, and small enough
to upload as a CI artifact from every recovery drill.  The first line of
each file is a ``meta`` record identifying the stream so a reader can
tell a trace file from a metrics file without trusting the filename.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

PathLike = Union[str, Path]


def write_jsonl(
    path: PathLike, records: Sequence[Mapping[str, object]]
) -> Path:
    """Write records one-per-line; returns the resolved path."""
    out = Path(path)
    with out.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
    return out


def read_jsonl(path: PathLike) -> List[Dict[str, object]]:
    """Read every record back (inverse of :func:`write_jsonl`)."""
    records: List[Dict[str, object]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def export_trace(path: PathLike, tracer: Tracer, **meta: object) -> Path:
    """Write one tracer's span tree as JSONL (meta line + span records)."""
    head: Dict[str, object] = {
        "type": "meta",
        "stream": "trace",
        "spans": tracer.num_spans,
        "digest": tracer.tree_digest(),
    }
    head.update(meta)
    return write_jsonl(path, [head, *tracer.to_records()])


def export_metrics(path: PathLike, registry: MetricsRegistry, **meta: object) -> Path:
    """Write one registry snapshot as JSONL (meta line + series records)."""
    head: Dict[str, object] = {
        "type": "meta",
        "stream": "metrics",
        "series": registry.num_series,
        "digest": registry.digest(),
    }
    head.update(meta)
    return write_jsonl(path, [head, *registry.to_records()])
