"""Bounded priority queues with explicit, reported load shedding.

Admission caps the *rate*; the queue caps the *backlog*.  A bounded
queue is what keeps admitted-request latency finite under a stall (a
controller crash, a retry storm absorbed downstream): waiting time can
never exceed ``capacity x worst service time``, because the queue sheds
instead of growing.

Shedding is never silent: every eviction produces a :class:`ShedRecord`
naming the victim and the arrival that displaced it, and the policy is
deterministic -- the *worst* entry (highest service class, then newest
arrival) is dropped, so a telemetry query is always sacrificed before a
slice mutation, and older work is preferred over newer within a class
(the oldest request has waited longest and is closest to its deadline,
but dropping the newest keeps FIFO fairness for work already accepted).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.serve.requests import TenantRequest


@dataclass(frozen=True)
class ShedRecord:
    """One explicit load-shed: who was dropped and why."""

    victim: TenantRequest
    displaced_by: Optional[TenantRequest]
    time_s: float
    queue_depth: int


@dataclass
class BoundedPriorityQueue:
    """A capacity-bounded priority queue ordered by (class, arrival).

    :meth:`push` either accepts the request (returning ``None``) or
    returns the :class:`ShedRecord` of whoever lost the slot -- the
    incoming request itself when it is the worst candidate.  :meth:`pop`
    returns the best (lowest class, oldest) entry.
    """

    capacity: int
    _heap: List[Tuple[int, int, str, TenantRequest]] = field(
        init=False, default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("queue capacity must be at least 1")

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1] -- the brownout controller's signal."""
        return len(self._heap) / self.capacity

    def push(self, request: TenantRequest, now_s: float) -> Optional[ShedRecord]:
        """Enqueue, shedding the worst entry when full."""
        key = (request.priority, request.seq, request.request_id, request)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, key)
            return None
        worst = max(self._heap)
        if key >= worst:
            # The arrival is the worst candidate: shed it directly.
            return ShedRecord(
                victim=request,
                displaced_by=None,
                time_s=now_s,
                queue_depth=len(self._heap),
            )
        self._heap.remove(worst)
        heapq.heapify(self._heap)
        heapq.heappush(self._heap, key)
        return ShedRecord(
            victim=worst[3],
            displaced_by=request,
            time_s=now_s,
            queue_depth=len(self._heap),
        )

    def pop(self) -> Optional[TenantRequest]:
        """Dequeue the best entry, or None when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def drain(self) -> List[TenantRequest]:
        """Remove and return everything, best first (shutdown path)."""
        out: List[TenantRequest] = []
        while self._heap:
            request = self.pop()
            assert request is not None
            out.append(request)
        return out
