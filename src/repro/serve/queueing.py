"""Bounded priority queues with explicit, reported load shedding.

Admission caps the *rate*; the queue caps the *backlog*.  A bounded
queue is what keeps admitted-request latency finite under a stall (a
controller crash, a retry storm absorbed downstream): waiting time can
never exceed ``capacity x worst service time``, because the queue sheds
instead of growing.

Shedding is never silent: every eviction produces a :class:`ShedRecord`
naming the victim and the arrival that displaced it, and the policy is
deterministic -- the *worst* entry (highest service class, then newest
arrival) is dropped, so a telemetry query is always sacrificed before a
slice mutation, and older work is preferred over newer within a class
(the oldest request has waited longest and is closest to its deadline,
but dropping the newest keeps FIFO fairness for work already accepted).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import ConfigurationError
from repro.serve.requests import TenantRequest


@dataclass(frozen=True, slots=True)
class ShedRecord:
    """One explicit load-shed: who was dropped and why."""

    victim: TenantRequest
    displaced_by: Optional[TenantRequest]
    time_s: float
    queue_depth: int


@dataclass(order=True, slots=True)
class _HeapEntry:
    """Heap node ordered by (class, arrival seq, id) only.

    The request itself is excluded from comparison: two entries that tie
    on the whole key (nothing forbids externally built requests sharing
    seq and id) compare equal instead of falling through to
    :class:`TenantRequest`, which defines no ordering.
    """

    priority: int
    seq: int
    request_id: str
    request: TenantRequest = field(compare=False)


def _entry_for(request: TenantRequest) -> _HeapEntry:
    return _HeapEntry(request.priority, request.seq, request.request_id, request)


@dataclass
class BoundedPriorityQueue:
    """A capacity-bounded priority queue ordered by (class, arrival).

    :meth:`push` either accepts the request (returning ``None``) or
    returns the :class:`ShedRecord` of whoever lost the slot -- the
    incoming request itself when it is the worst candidate.  :meth:`pop`
    returns the best (lowest class, oldest) entry.
    """

    capacity: int
    _heap: List[_HeapEntry] = field(init=False, default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("queue capacity must be at least 1")

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1] -- the brownout controller's signal."""
        return len(self._heap) / self.capacity

    def push(self, request: TenantRequest, now_s: float) -> Optional[ShedRecord]:
        """Enqueue, shedding the worst entry when full."""
        entry = _entry_for(request)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return None
        worst_index = max(
            range(len(self._heap)), key=lambda i: self._heap[i]
        )
        worst = self._heap[worst_index]
        if entry >= worst:
            # The arrival is the worst candidate: shed it directly.
            return ShedRecord(
                victim=request,
                displaced_by=None,
                time_s=now_s,
                queue_depth=len(self._heap),
            )
        del self._heap[worst_index]
        heapq.heapify(self._heap)
        heapq.heappush(self._heap, entry)
        return ShedRecord(
            victim=worst.request,
            displaced_by=request,
            time_s=now_s,
            queue_depth=len(self._heap),
        )

    def pop(self) -> Optional[TenantRequest]:
        """Dequeue the best entry, or None when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap).request

    def drain(self) -> List[TenantRequest]:
        """Remove and return everything, best first (shutdown path)."""
        out: List[TenantRequest] = []
        while self._heap:
            request = self.pop()
            assert request is not None
            out.append(request)
        return out
