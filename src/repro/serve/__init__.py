"""The overload-robust fabric serving layer (admission, backpressure,
retry budgets, circuit breaking, graceful brownout).

Entry points:

- :class:`~repro.serve.service.FabricService` -- the deterministic
  serving loop (see its module docstring for the defense pipeline);
- :class:`~repro.serve.workload.ServeWorkload` -- seeded open-loop
  tenant request streams;
- :func:`~repro.serve.drill.run_serve_drill` -- the overload-burst
  drill CI and the NOC report run (``streaming=True`` swaps the
  per-record report for a :class:`~repro.serve.sink.StreamingRecordSink`
  roll-up, flat in memory at 10^6 requests);
- :func:`~repro.serve.drill.run_serve_drill_sharded` -- the same drill
  partitioned into tenant cells and fanned out over
  :class:`~repro.parallel.SweepEngine`, merged deterministically;
- :func:`~repro.serve.drill.run_failover_drill` -- the replicated
  control plane (``num_controller_replicas > 1``) riding out a rolling
  crash / partition / clock-skew storm via lease-based failover.
"""

from repro.serve.admission import FairAdmission, TokenBucket
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.brownout import BrownoutController
from repro.serve.drill import (
    build_failover_timeline,
    drill_config,
    failover_slos,
    merge_cell_results,
    run_failover_drill,
    run_serve_drill,
    run_serve_drill_sharded,
    shard_cell_config,
)
from repro.serve.queueing import BoundedPriorityQueue, ShedRecord
from repro.serve.requests import (
    ADMITTED_OUTCOMES,
    Outcome,
    RequestKind,
    RequestRecord,
    TenantRequest,
    outcomes_digest,
)
from repro.serve.retry import RetryBudget
from repro.serve.service import (
    CommitEntry,
    FabricService,
    ServeConfig,
    ServeReport,
    build_serve_manager,
    replay_committed,
)
from repro.serve.sink import FullRecordSink, StreamAggregates, StreamingRecordSink
from repro.serve.workload import ServeWorkload

__all__ = [
    "ADMITTED_OUTCOMES",
    "BoundedPriorityQueue",
    "BreakerState",
    "BrownoutController",
    "CircuitBreaker",
    "CommitEntry",
    "FabricService",
    "FairAdmission",
    "FullRecordSink",
    "Outcome",
    "RequestKind",
    "RequestRecord",
    "RetryBudget",
    "ServeConfig",
    "ServeReport",
    "ServeWorkload",
    "ShedRecord",
    "StreamAggregates",
    "StreamingRecordSink",
    "TenantRequest",
    "TokenBucket",
    "build_failover_timeline",
    "build_serve_manager",
    "drill_config",
    "failover_slos",
    "merge_cell_results",
    "outcomes_digest",
    "replay_committed",
    "run_failover_drill",
    "run_serve_drill",
    "run_serve_drill_sharded",
    "shard_cell_config",
]
