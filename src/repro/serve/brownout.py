"""Graceful brownout: degrade service quality instead of collapsing.

Mission Apollo's deployment lesson (PAPERS.md) is that a shared fabric
service survives overload by *shedding quality first and work second*.
The brownout controller watches queue occupancy (and the circuit
breaker) and moves the service through three levels, with hysteresis so
the level does not flap at a threshold:

- **level 0 (normal)**: everything fresh and immediate;
- **level 1 (brownout)**: defer background maintenance (defrag ticks)
  and *coalesce* traffic-matrix updates into one batched controller
  transaction per window -- N updates cost one journaled transaction;
- **level 2 (deep brownout)**: additionally serve telemetry queries
  from a bounded-staleness cache instead of recomputing state digests.

Entry thresholds are evaluated high-to-low and exits low-to-high, each
exit strictly below its entry (hysteresis).  The level trajectory is a
pure function of the (occupancy, breaker) observation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability


@dataclass
class BrownoutController:
    """Hysteresis ladder from queue occupancy to a degradation level.

    Args:
        enter_1 / exit_1: occupancy to enter / leave level 1.
        enter_2 / exit_2: occupancy to enter / leave level 2; an open
            circuit breaker also forces level 2 (the controller is
            unreachable -- coalesce and serve from cache).
        pinned_level: freeze the controller at one level (the perf
            harness compares pinned level-2 vs pinned level-0 service).
    """

    enter_1: float = 0.5
    exit_1: float = 0.3
    enter_2: float = 0.8
    exit_2: float = 0.6
    pinned_level: Optional[int] = None
    obs: Optional[Observability] = field(default=None, repr=False)
    _level: int = field(init=False, default=0)
    _transitions: List[Tuple[float, int]] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.exit_1 < self.enter_1 <= 1.0:
            raise ConfigurationError("need 0 <= exit_1 < enter_1 <= 1")
        if not self.exit_1 <= self.exit_2 < self.enter_2 <= 1.0:
            raise ConfigurationError("need exit_1 <= exit_2 < enter_2 <= 1")
        if self.enter_1 > self.enter_2:
            raise ConfigurationError("enter_1 must not exceed enter_2")
        if self.pinned_level is not None:
            if self.pinned_level not in (0, 1, 2):
                raise ConfigurationError("pinned_level must be 0, 1, or 2")
            self._level = self.pinned_level
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]

    @property
    def level(self) -> int:
        return self._level

    def observe(self, occupancy: float, breaker_open: bool, now_s: float) -> int:
        """Feed one observation; returns the (possibly new) level."""
        if self.pinned_level is not None:
            return self._level
        level = self._level
        if breaker_open or occupancy >= self.enter_2:
            level = 2
        elif level == 0 and occupancy >= self.enter_1:
            level = 1
        elif level == 2:
            if occupancy <= self.exit_1:
                level = 0
            elif occupancy <= self.exit_2:
                level = 1
        elif level == 1 and occupancy <= self.exit_1:
            level = 0
        if level != self._level:
            self._level = level
            self._transitions.append((now_s, level))
            self.obs.metrics.counter(
                "serve.brownout.transitions", to=str(level)
            ).inc()
            self.obs.metrics.gauge("serve.brownout.level").set(float(level))
        return self._level

    # -- what the current level means for the service ------------------- #

    @property
    def defer_maintenance(self) -> bool:
        """Level >= 1: skip defrag / compaction ticks."""
        return self._level >= 1

    @property
    def coalesce_updates(self) -> bool:
        """Level >= 1: batch traffic updates into windowed transactions."""
        return self._level >= 1

    @property
    def serve_cached_telemetry(self) -> bool:
        """Level 2: answer telemetry from the bounded-staleness cache."""
        return self._level >= 2

    @property
    def transitions(self) -> Tuple[Tuple[float, int], ...]:
        return tuple(self._transitions)
