"""Record sinks: where the serving loop's terminal outcomes go.

The PR-6 loop held every :class:`~repro.serve.requests.RequestRecord`
in memory and re-sorted the list at the end -- fine at 10⁵ requests,
hopeless at the ROADMAP's 10⁶-across-thousands-of-tenants drill.  The
service now writes outcomes through a sink:

- :class:`FullRecordSink` keeps the PR-6 behavior (every record, sorted
  by seq at finalize) and is the default, so reports, JSONL exports,
  and every existing test see byte-identical results;
- :class:`StreamingRecordSink` keeps memory flat at any stream length:
  an *incremental* outcomes digest over a bounded seq-reorder window,
  per-outcome counts, fine-grained latency histograms (the percentile
  substrate), and a seeded bounded reservoir of latency samples that can
  feed :mod:`repro.obs.timeseries` afterwards.

**Incremental digest.**  ``outcomes_digest`` hashes canonical outcome
lines sorted by ``(seq, request_id)``.  Outcomes are *decided* out of
order (queued work finishes late), but the set of seqs in flight at any
instant is bounded by queue capacity + one coalescing batch, so the
streaming sink holds only the canonical lines of decided-but-not-yet-
flushable seqs and hashes the contiguous prefix as soon as every older
seq is terminal.  The peak size of that reorder window is recorded
(``peak_pending``) and asserted flat by the property tests.

Both sinks enforce the partition invariant's "exactly one terminal
outcome" half, raising :class:`~repro.core.errors.ServeError` on a
second terminal for the same request.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import ConfigurationError, ServeError
from repro.obs.metrics import Histogram, exponential_bounds
from repro.serve.queueing import ShedRecord
from repro.serve.requests import Outcome, RequestRecord, TenantRequest

#: Latency histogram ladder for streaming percentile estimates: 4%
#: geometric steps from 10 µs to ~1.9e3 s, so a quantile read from the
#: bucket upper bound overstates the true latency by at most 4%.
LATENCY_BOUNDS_MS: Tuple[float, ...] = exponential_bounds(
    start=0.01, factor=1.04, count=490
)

#: Default reservoir size: enough samples for stable p99 estimates of a
#: drill-scale stream, small enough to be irrelevant at 10⁶ requests.
DEFAULT_RESERVOIR_SIZE = 4096


class FullRecordSink:
    """Hold every record in memory (the default, PR-6-equivalent)."""

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []
        self.shed_records: List[ShedRecord] = []
        self._terminal: Dict[str, Outcome] = {}

    def offered(self, request: TenantRequest) -> None:
        del request  # arrival order is implied by the records themselves

    def record(self, record: RequestRecord) -> None:
        request_id = record.request.request_id
        seen = self._terminal.get(request_id)
        if seen is not None:
            raise ServeError(
                f"{request_id} reached a second terminal outcome "
                f"({seen.value} then {record.outcome.value})"
            )
        self._terminal[request_id] = record.outcome
        self.records.append(record)

    def shed(self, shed: ShedRecord) -> None:
        self.shed_records.append(shed)

    @property
    def total_recorded(self) -> int:
        return len(self.records)

    def finalize(self) -> List[RequestRecord]:
        return sorted(self.records, key=lambda r: r.request.seq)


@dataclass
class StreamAggregates:
    """What a :class:`StreamingRecordSink` distills a run down to."""

    outcome_counts: Dict[Outcome, int]
    outcomes_digest: str
    latency_hists: Dict[Outcome, Histogram]
    #: Seeded reservoir of (finish_s, latency_ms, outcome value) samples
    #: -- the :mod:`repro.obs.timeseries` feed.
    samples: List[Tuple[float, float, str]] = field(default_factory=list)
    shed_count: int = 0
    peak_pending: int = 0
    total: int = 0

    def latency_percentile_ms(self, q: float, outcome: Outcome) -> float:
        """Histogram-estimated percentile (<=4% overstatement; exact for
        the empty case).  Streaming summaries quote this instead of the
        exact order statistic the full-record report computes."""
        hist = self.latency_hists.get(outcome)
        if hist is None or hist.count == 0:
            return 0.0
        return hist.quantile(q)

    def timeseries_rows(self) -> List[Dict[str, object]]:
        """Reservoir samples as JSONL-ready rows for the twin pipeline."""
        return [
            {"t_s": t, "latency_ms": lat, "outcome": outcome}
            for t, lat, outcome in self.samples
        ]


class StreamingRecordSink:
    """Flat-memory aggregation of an arbitrarily long outcome stream.

    Requires workload-assigned seqs: every offered request must carry a
    unique ``seq >= 0`` (the :class:`~repro.serve.workload.ServeWorkload`
    contract), because the incremental digest orders by seq.
    """

    def __init__(
        self, seed: int = 0, reservoir_size: int = DEFAULT_RESERVOIR_SIZE
    ) -> None:
        if reservoir_size < 1:
            raise ConfigurationError("reservoir size must be positive")
        self._hash = hashlib.sha256()
        self._frontier: List[int] = []  # offered seqs, min-heap
        self._pending: Dict[int, bytes] = {}  # decided, awaiting flush
        self._counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
        self._hists: Dict[Outcome, Histogram] = {}
        self._rng = np.random.default_rng(seed)
        self._reservoir: List[Tuple[float, float, str]] = []
        self._reservoir_size = reservoir_size
        self._uniforms: np.ndarray = np.empty(0)
        self._uniform_index = 0
        self._seen = 0
        self._shed_count = 0
        self._total = 0
        self.peak_pending = 0

    def offered(self, request: TenantRequest) -> None:
        seq = request.seq
        if seq < 0:
            raise ServeError(
                "streaming sink needs workload-assigned seqs "
                f"(request {request.request_id} has seq {seq})"
            )
        heapq.heappush(self._frontier, seq)

    def record(self, record: RequestRecord) -> None:
        seq = record.request.seq
        pending = self._pending
        if seq in pending:
            raise ServeError(
                f"{record.request.request_id} reached a second terminal "
                f"outcome ({record.outcome.value})"
            )
        # The trailing newline is part of the hashed stream (see
        # ``outcomes_digest``); appending it here makes the flush a
        # single hash update per line.
        pending[seq] = (record.canonical() + "\n").encode("utf-8")
        if len(pending) > self.peak_pending:
            self.peak_pending = len(pending)
        self._total += 1
        outcome = record.outcome
        self._counts[outcome] += 1
        hist = self._hists.get(outcome)
        if hist is None:
            hist = self._hists[outcome] = Histogram(
                "serve.latency_ms",
                (("outcome", outcome.value),),
                bounds=LATENCY_BOUNDS_MS,
            )
        latency_ms = max(
            0.0, (record.finish_s - record.request.arrival_s) * 1e3
        )
        hist.observe(latency_ms)
        self._sample(record.finish_s, latency_ms, outcome)
        # Flush the contiguous decided prefix: every seq smaller than the
        # frontier minimum is already hashed, so whenever the minimum
        # itself is decided it (and any decided successors) can go.
        frontier = self._frontier
        update = self._hash.update
        while frontier and frontier[0] in pending:
            update(pending.pop(heapq.heappop(frontier)))

    def _sample(self, finish_s: float, latency_ms: float, outcome: Outcome) -> None:
        self._seen += 1
        entry = (finish_s, latency_ms, outcome.value)
        reservoir = self._reservoir
        if len(reservoir) < self._reservoir_size:
            reservoir.append(entry)
            return
        # Algorithm R with the randomness drawn in blocks: one vectorized
        # generator call per 4096 records instead of one scalar call per
        # record (the scalar path dominated the sink's profile).
        index = self._uniform_index
        uniforms = self._uniforms
        if index >= uniforms.shape[0]:
            uniforms = self._uniforms = self._rng.random(4096)
            index = 0
        self._uniform_index = index + 1
        slot = int(uniforms[index] * self._seen)
        if slot < self._reservoir_size:
            reservoir[slot] = entry

    def shed(self, shed: ShedRecord) -> None:
        del shed  # streaming mode keeps the count, not the objects
        self._shed_count += 1

    @property
    def total_recorded(self) -> int:
        return self._total

    @property
    def pending_count(self) -> int:
        """Current reorder-window size (bounded by requests in flight)."""
        return len(self._pending)

    def finalize(self) -> StreamAggregates:
        if self._frontier or self._pending:
            raise ServeError(
                f"{len(self._frontier)} offered request(s) never reached a "
                "terminal outcome (partition violated)"
            )
        return StreamAggregates(
            outcome_counts=dict(self._counts),
            outcomes_digest=self._hash.hexdigest(),
            latency_hists=dict(self._hists),
            samples=list(self._reservoir),
            shed_count=self._shed_count,
            peak_pending=self.peak_pending,
            total=self._total,
        )


__all__ = [
    "DEFAULT_RESERVOIR_SIZE",
    "FullRecordSink",
    "LATENCY_BOUNDS_MS",
    "StreamAggregates",
    "StreamingRecordSink",
]
