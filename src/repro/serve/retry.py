"""Retry budgets: retries that provably cannot amplify load.

Per-request bounded retries are not enough -- when every request of an
overloaded service retries to its personal cap, downstream load
multiplies by that cap exactly when the system can least afford it (the
classic retry storm).  A *budget* makes retries a shared, metered
resource:

- every request entering service **deposits** ``retry_ratio`` tokens;
- every retry **spends** one whole token, and a retry with no token
  available is simply not attempted.

Since the pool starts empty and never goes negative::

    retries <= retry_ratio x requests_started
    attempts = starts + retries <= (1 + retry_ratio) x admitted

so :attr:`RetryBudget.amplification_cap` ``= 1 + retry_ratio`` is a
*proof*, not a tuning goal -- it holds for any fault timeline, which is
exactly what the Hypothesis property in ``tests/serve`` asserts.  Per
request, attempts are additionally clamped to ``max_attempts``.

Backoff delays come from :class:`repro.faults.resilience.RetryPolicy`
(exponential + seeded jitter), reused so the serving layer and the
transaction layer pace retries identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability
from typing import Optional


@dataclass
class RetryBudget:
    """The shared retry-token pool.

    Args:
        retry_ratio: tokens deposited per request entering service; the
            system-wide amplification cap is ``1 + retry_ratio``.
        max_attempts: per-request attempt clamp (first try included).
        pool_cap: ceiling on banked tokens, so a long quiet period
            cannot fund an unbounded later burst of retries.
    """

    retry_ratio: float = 0.5
    max_attempts: int = 4
    pool_cap: float = 50.0
    obs: Optional[Observability] = field(default=None, repr=False)
    _tokens: float = field(init=False, default=0.0)
    _deposits: int = field(init=False, default=0)
    _spends: int = field(init=False, default=0)
    _denials: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.retry_ratio <= 1.0:
            raise ConfigurationError("retry_ratio must be in [0, 1]")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.pool_cap < 1.0:
            raise ConfigurationError("pool_cap must be at least 1")
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]
        # Bound handles: deposit fires once per request entering service,
        # so the name+label resolution is hoisted out of the hot loop.
        metrics = self.obs.metrics
        self._deposit_counter = metrics.handle("counter", "serve.retry.deposits")
        self._granted_counter = metrics.handle("counter", "serve.retry.granted")
        self._denied_counter = metrics.handle("counter", "serve.retry.denied")

    @property
    def amplification_cap(self) -> float:
        """The provable ceiling on ``attempts / requests started``."""
        return 1.0 + self.retry_ratio

    def deposit(self) -> None:
        """Bank this request's retry allowance (once, at service start)."""
        self._tokens = min(self.pool_cap, self._tokens + self.retry_ratio)
        self._deposits += 1
        self._deposit_counter.inc()

    def try_spend(self) -> bool:
        """Authorize one retry if a whole token is banked."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self._spends += 1
            self._granted_counter.inc()
            return True
        self._denials += 1
        self._denied_counter.inc()
        return False

    @property
    def tokens(self) -> float:
        return self._tokens

    @property
    def deposits(self) -> int:
        return self._deposits

    @property
    def retries_granted(self) -> int:
        return self._spends

    @property
    def retries_denied(self) -> int:
        return self._denials
