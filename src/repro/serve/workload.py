"""Seeded open-loop tenant request streams for the serving layer.

Open-loop means arrivals do not wait for responses: the stream keeps
coming at its configured rate whatever the service's backlog looks like
-- exactly the regime admission control and load shedding exist for.

Determinism contract (the same discipline as
:meth:`repro.scheduler.requests.WorkloadGenerator.open_loop`): every
random quantity comes from its own child of one
``np.random.SeedSequence``, and exactly one sample per primary request
is drawn from each stream, in lockstep.  The first *k* requests of a
``generate(n)`` call are therefore identical for every ``n >= k``
(prefix stability), and two generators with equal seeds produce
byte-identical streams.

The mix spans the four tenant verbs of the serving layer; every
``SLICE_ALLOC`` is paired with a ``SLICE_RELEASE`` scheduled one
exponential holding time later (dropped if it would land after the
last primary arrival -- the service drains whatever is still held).
A configurable ``hot_tenant_share`` concentrates load on tenant 0 so
per-tenant fairness has something to push back on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.serve.requests import RequestKind, TenantRequest

#: Default request mix: telemetry-heavy, mutation-meaningful.
DEFAULT_MIX: Dict[RequestKind, float] = {
    RequestKind.TELEMETRY_QUERY: 0.55,
    RequestKind.TRAFFIC_UPDATE: 0.30,
    RequestKind.RECONFIGURE: 0.09,
    RequestKind.SLICE_ALLOC: 0.06,
}

#: Default per-kind deadlines (seconds after arrival).
DEFAULT_DEADLINES_S: Dict[RequestKind, float] = {
    RequestKind.TELEMETRY_QUERY: 0.40,
    RequestKind.TRAFFIC_UPDATE: 0.60,
    RequestKind.RECONFIGURE: 0.80,
    RequestKind.SLICE_ALLOC: 1.00,
    RequestKind.SLICE_RELEASE: 1.00,
}


@dataclass
class ServeWorkload:
    """Open-loop Poisson tenant-request stream (seeded, prefix-stable).

    Args:
        rate_per_s: mean primary-request arrival rate.
        num_tenants: tenant population; requests carry ``t-<i>`` ids.
        mix: {kind: weight} over the primary kinds (``SLICE_RELEASE``
            is derived, never drawn).
        deadlines_s: per-kind deadline offsets.
        hot_tenant_share: probability mass concentrated on tenant 0
            (the noisy neighbor); the rest is uniform over the others.
        slice_cubes: cube sizes a slice request may ask for.
        slice_hold_mean_s: mean slice holding time (exponential).
    """

    seed: int = 0
    rate_per_s: float = 1000.0
    num_tenants: int = 64
    mix: Dict[RequestKind, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    deadlines_s: Dict[RequestKind, float] = field(
        default_factory=lambda: dict(DEFAULT_DEADLINES_S)
    )
    hot_tenant_share: float = 0.2
    slice_cubes: Tuple[int, ...] = (1, 2, 4)
    slice_hold_mean_s: float = 2.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.num_tenants < 1:
            raise ConfigurationError("need at least one tenant")
        if not self.mix or any(w < 0 for w in self.mix.values()):
            raise ConfigurationError("mix weights must be non-negative")
        if sum(self.mix.values()) <= 0:
            raise ConfigurationError("mix must have positive total weight")
        if RequestKind.SLICE_RELEASE in self.mix:
            raise ConfigurationError("SLICE_RELEASE is derived, not drawn")
        if not 0.0 <= self.hot_tenant_share < 1.0:
            raise ConfigurationError("hot_tenant_share must be in [0, 1)")
        for kind in set(self.mix) | {RequestKind.SLICE_RELEASE}:
            if self.deadlines_s.get(kind, 0.0) <= 0:
                raise ConfigurationError(f"deadline for {kind.value} must be positive")

    def _streams(self) -> Tuple[np.random.Generator, ...]:
        children = np.random.SeedSequence(self.seed).spawn(6)
        return tuple(np.random.default_rng(c) for c in children)

    def _kinds_and_weights(self) -> Tuple[List[RequestKind], np.ndarray]:
        kinds = sorted(self.mix, key=lambda k: k.value)
        weights = np.array([self.mix[k] for k in kinds], dtype=float)
        weights /= weights.sum()
        return kinds, weights

    def generate(self, num_requests: int) -> List[TenantRequest]:
        """The first ``num_requests`` primaries plus their derived
        releases, merged in arrival order with final seq numbers."""
        return list(self.stream(num_requests))

    def stream(self, num_requests: int) -> Iterator[TenantRequest]:
        """Lazy :meth:`generate`: same requests, same order, same seq
        numbers, without materializing the stream.

        Derived releases wait in a min-heap keyed by ``(arrival, order)``
        and are emitted as soon as the next primary would sort after
        them, so peak buffering is the number of outstanding slice holds
        (``~ rate x alloc share x mean hold``), not the stream length --
        this is what lets the 10^6-request drill start serving without
        pre-allocating a million :class:`TenantRequest` objects.
        """
        if num_requests <= 0:
            raise ConfigurationError("need at least one request")
        inter_rng, tenant_rng, kind_rng, bank_rng, cube_rng, hold_rng = self._streams()
        kinds, weights = self._kinds_and_weights()
        num_kinds = len(kinds)
        release_deadline = self.deadlines_s[RequestKind.SLICE_RELEASE]

        pending: List[Tuple[float, int, TenantRequest]] = []
        seq = 0
        t = 0.0
        for i in range(num_requests):
            # One draw per stream per primary, unconditionally: streams
            # stay in lockstep, so the prefix is stable in num_requests.
            t += float(inter_rng.exponential(1.0 / self.rate_per_s))
            hot = float(tenant_rng.uniform()) < self.hot_tenant_share
            tenant_idx = (
                0
                if hot or self.num_tenants == 1
                else 1 + int(tenant_rng.integers(self.num_tenants - 1))
            )
            kind = kinds[int(kind_rng.choice(num_kinds, p=weights))]
            bank = int(bank_rng.integers(2))
            cubes = int(self.slice_cubes[int(cube_rng.integers(len(self.slice_cubes)))])
            hold_s = float(hold_rng.exponential(self.slice_hold_mean_s))

            # A pending release older than this primary (by the merged
            # (arrival, order) sort key) can never be displaced: emit it.
            while pending and pending[0][:2] < (t, 2 * i):
                _, _, held = heapq.heappop(pending)
                yield TenantRequest(
                    request_id=held.request_id,
                    tenant=held.tenant,
                    kind=held.kind,
                    arrival_s=held.arrival_s,
                    deadline_s=held.deadline_s,
                    params=held.params,
                    seq=seq,
                )
                seq += 1

            request_id = f"rq-{i:06d}"
            tenant = f"t-{tenant_idx:03d}"
            params: Tuple[Tuple[str, object], ...]
            if kind in (RequestKind.TRAFFIC_UPDATE, RequestKind.RECONFIGURE):
                params = (("bank", bank),)
            elif kind is RequestKind.SLICE_ALLOC:
                params = (("cubes", cubes),)
            else:
                params = ()
            yield TenantRequest(
                request_id=request_id,
                tenant=tenant,
                kind=kind,
                arrival_s=t,
                deadline_s=t + self.deadlines_s[kind],
                params=params,  # type: ignore[arg-type]
                seq=seq,
            )
            seq += 1
            if kind is RequestKind.SLICE_ALLOC:
                release_t = t + hold_s
                heapq.heappush(
                    pending,
                    (
                        release_t,
                        2 * i + 1,
                        TenantRequest(
                            request_id=f"rl-{i:06d}",
                            tenant=tenant,
                            kind=RequestKind.SLICE_RELEASE,
                            arrival_s=release_t,
                            deadline_s=release_t + release_deadline,
                            params=(("slice", request_id),),
                        ),
                    ),
                )

        # Open-loop end: the horizon is the final *primary*'s arrival;
        # releases scheduled past it are dropped (the service drains
        # whatever is still held).
        horizon = t
        while pending:
            release_t, _, held = heapq.heappop(pending)
            if release_t > horizon:
                continue
            yield TenantRequest(
                request_id=held.request_id,
                tenant=held.tenant,
                kind=held.kind,
                arrival_s=held.arrival_s,
                deadline_s=held.deadline_s,
                params=held.params,
                seq=seq,
            )
            seq += 1

    def horizon_s(self, num_requests: int) -> float:
        """Arrival time of the final primary -- the fault-timeline and
        open-loop cutoff -- without generating any requests.

        Only the inter-arrival stream is consumed; ``np.cumsum`` over a
        vectorized draw is bit-identical to the sequential accumulation
        in :meth:`stream` (pinned in ``tests/serve/test_workload.py``).
        """
        if num_requests <= 0:
            raise ConfigurationError("need at least one request")
        inter_rng = self._streams()[0]
        draws = inter_rng.exponential(1.0 / self.rate_per_s, size=num_requests)
        return float(np.cumsum(draws)[-1])

    def columns(self, num_requests: int) -> Dict[str, np.ndarray]:
        """The merged stream as flat ndarrays (the shm-shippable form).

        Returns one row per emitted request, in seq order (row index ==
        seq), plus per-primary draw columns:

        - ``t``: arrival time per entry;
        - ``order``: ``2i`` for primary *i*, ``2i + 1`` for its release
          (so ``order >> 1`` recovers the primary index and ``order & 1``
          the release flag);
        - ``tenant_idx``, ``kind_code``, ``bank``, ``cubes``: indexed by
          *primary* index (length ``num_requests``); ``kind_code``
          indexes the value-sorted primary kinds.

        Every scalar draw in :meth:`stream` has a bit-identical
        vectorized counterpart (numpy Generators produce the same values
        batched or repeated), except the tenant stream, whose two draws
        interleave conditionally and are therefore replayed exactly.
        :func:`requests_from_columns` rebuilds byte-identical
        :class:`TenantRequest` objects from this form.
        """
        if num_requests <= 0:
            raise ConfigurationError("need at least one request")
        n = num_requests
        inter_rng, tenant_rng, kind_rng, bank_rng, cube_rng, hold_rng = self._streams()
        kinds, weights = self._kinds_and_weights()

        t = np.cumsum(inter_rng.exponential(1.0 / self.rate_per_s, size=n))
        tenant_idx = np.zeros(n, dtype=np.int64)
        if self.num_tenants == 1:
            tenant_rng.uniform(size=n)  # lockstep draws; everyone is t-000
        else:
            hot_share = self.hot_tenant_share
            spread = self.num_tenants - 1
            uniform = tenant_rng.uniform
            integers = tenant_rng.integers
            for i in range(n):
                # Not vectorizable: the integers draw happens only on
                # the cold branch, so the stream interleaves dynamically.
                if float(uniform()) >= hot_share:
                    tenant_idx[i] = 1 + int(integers(spread))
        kind_code = kind_rng.choice(len(kinds), p=weights, size=n)
        bank = bank_rng.integers(2, size=n)
        cubes = np.asarray(self.slice_cubes, dtype=np.int64)[
            cube_rng.integers(len(self.slice_cubes), size=n)
        ]
        hold = hold_rng.exponential(self.slice_hold_mean_s, size=n)

        alloc_code = (
            kinds.index(RequestKind.SLICE_ALLOC)
            if RequestKind.SLICE_ALLOC in kinds
            else -1
        )
        release_t = t + hold
        horizon = float(t[-1])
        keep = np.nonzero((kind_code == alloc_code) & (release_t <= horizon))[0]
        all_t = np.concatenate([t, release_t[keep]])
        all_order = np.concatenate([np.arange(n) * 2, keep * 2 + 1])
        perm = np.lexsort((all_order, all_t))
        return {
            "t": all_t[perm],
            "order": all_order[perm],
            "tenant_idx": tenant_idx,
            "kind_code": np.asarray(kind_code, dtype=np.int64),
            "bank": np.asarray(bank, dtype=np.int64),
            "cubes": cubes,
        }

    def iter_from_columns(
        self,
        cols: Dict[str, np.ndarray],
        chunk_rows: int = 65_536,
    ) -> Iterator[TenantRequest]:
        """Lazy request stream over :meth:`columns` output.

        Same requests and order as :meth:`stream`, but the draws come
        from the vectorized columns (~4x faster to produce) and at most
        ``chunk_rows`` :class:`TenantRequest` objects are materialized
        at a time -- the feed for the million-request streaming drill.
        """
        total = len(cols["t"])
        for start in range(0, total, chunk_rows):
            yield from self.requests_from_columns(
                cols, range(start, min(start + chunk_rows, total))
            )

    def requests_from_columns(
        self,
        cols: Dict[str, np.ndarray],
        rows: Optional[np.ndarray] = None,
    ) -> List[TenantRequest]:
        """Materialize :class:`TenantRequest` objects from :meth:`columns`.

        ``rows`` selects a subset of entry rows (e.g. one shard's); seq
        numbers stay *global* (the row index in the merged stream), so
        shard outputs merge back into the exact unsharded order.
        """
        kinds, _ = self._kinds_and_weights()
        t_col = cols["t"]
        order_col = cols["order"]
        tenant_col = cols["tenant_idx"]
        kind_col = cols["kind_code"]
        bank_col = cols["bank"]
        cubes_col = cols["cubes"]
        release_deadline = self.deadlines_s[RequestKind.SLICE_RELEASE]
        indices = range(len(t_col)) if rows is None else rows
        out: List[TenantRequest] = []
        for row in indices:
            order = int(order_col[row])
            i = order >> 1
            t = float(t_col[row])
            tenant = f"t-{int(tenant_col[i]):03d}"
            if order & 1:
                out.append(
                    TenantRequest(
                        request_id=f"rl-{i:06d}",
                        tenant=tenant,
                        kind=RequestKind.SLICE_RELEASE,
                        arrival_s=t,
                        deadline_s=t + release_deadline,
                        params=(("slice", f"rq-{i:06d}"),),
                        seq=int(row),
                    )
                )
                continue
            kind = kinds[int(kind_col[i])]
            params: Tuple[Tuple[str, object], ...]
            if kind in (RequestKind.TRAFFIC_UPDATE, RequestKind.RECONFIGURE):
                params = (("bank", int(bank_col[i])),)
            elif kind is RequestKind.SLICE_ALLOC:
                params = (("cubes", int(cubes_col[i])),)
            else:
                params = ()
            out.append(
                TenantRequest(
                    request_id=f"rq-{i:06d}",
                    tenant=tenant,
                    kind=kind,
                    arrival_s=t,
                    deadline_s=t + self.deadlines_s[kind],
                    params=params,  # type: ignore[arg-type]
                    seq=int(row),
                )
            )
        return out
