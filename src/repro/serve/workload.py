"""Seeded open-loop tenant request streams for the serving layer.

Open-loop means arrivals do not wait for responses: the stream keeps
coming at its configured rate whatever the service's backlog looks like
-- exactly the regime admission control and load shedding exist for.

Determinism contract (the same discipline as
:meth:`repro.scheduler.requests.WorkloadGenerator.open_loop`): every
random quantity comes from its own child of one
``np.random.SeedSequence``, and exactly one sample per primary request
is drawn from each stream, in lockstep.  The first *k* requests of a
``generate(n)`` call are therefore identical for every ``n >= k``
(prefix stability), and two generators with equal seeds produce
byte-identical streams.

The mix spans the four tenant verbs of the serving layer; every
``SLICE_ALLOC`` is paired with a ``SLICE_RELEASE`` scheduled one
exponential holding time later (dropped if it would land after the
last primary arrival -- the service drains whatever is still held).
A configurable ``hot_tenant_share`` concentrates load on tenant 0 so
per-tenant fairness has something to push back on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.serve.requests import RequestKind, TenantRequest

#: Default request mix: telemetry-heavy, mutation-meaningful.
DEFAULT_MIX: Dict[RequestKind, float] = {
    RequestKind.TELEMETRY_QUERY: 0.55,
    RequestKind.TRAFFIC_UPDATE: 0.30,
    RequestKind.RECONFIGURE: 0.09,
    RequestKind.SLICE_ALLOC: 0.06,
}

#: Default per-kind deadlines (seconds after arrival).
DEFAULT_DEADLINES_S: Dict[RequestKind, float] = {
    RequestKind.TELEMETRY_QUERY: 0.40,
    RequestKind.TRAFFIC_UPDATE: 0.60,
    RequestKind.RECONFIGURE: 0.80,
    RequestKind.SLICE_ALLOC: 1.00,
    RequestKind.SLICE_RELEASE: 1.00,
}


@dataclass
class ServeWorkload:
    """Open-loop Poisson tenant-request stream (seeded, prefix-stable).

    Args:
        rate_per_s: mean primary-request arrival rate.
        num_tenants: tenant population; requests carry ``t-<i>`` ids.
        mix: {kind: weight} over the primary kinds (``SLICE_RELEASE``
            is derived, never drawn).
        deadlines_s: per-kind deadline offsets.
        hot_tenant_share: probability mass concentrated on tenant 0
            (the noisy neighbor); the rest is uniform over the others.
        slice_cubes: cube sizes a slice request may ask for.
        slice_hold_mean_s: mean slice holding time (exponential).
    """

    seed: int = 0
    rate_per_s: float = 1000.0
    num_tenants: int = 64
    mix: Dict[RequestKind, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    deadlines_s: Dict[RequestKind, float] = field(
        default_factory=lambda: dict(DEFAULT_DEADLINES_S)
    )
    hot_tenant_share: float = 0.2
    slice_cubes: Tuple[int, ...] = (1, 2, 4)
    slice_hold_mean_s: float = 2.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.num_tenants < 1:
            raise ConfigurationError("need at least one tenant")
        if not self.mix or any(w < 0 for w in self.mix.values()):
            raise ConfigurationError("mix weights must be non-negative")
        if sum(self.mix.values()) <= 0:
            raise ConfigurationError("mix must have positive total weight")
        if RequestKind.SLICE_RELEASE in self.mix:
            raise ConfigurationError("SLICE_RELEASE is derived, not drawn")
        if not 0.0 <= self.hot_tenant_share < 1.0:
            raise ConfigurationError("hot_tenant_share must be in [0, 1)")
        for kind in set(self.mix) | {RequestKind.SLICE_RELEASE}:
            if self.deadlines_s.get(kind, 0.0) <= 0:
                raise ConfigurationError(f"deadline for {kind.value} must be positive")

    def _streams(self) -> Tuple[np.random.Generator, ...]:
        children = np.random.SeedSequence(self.seed).spawn(6)
        return tuple(np.random.default_rng(c) for c in children)

    def generate(self, num_requests: int) -> List[TenantRequest]:
        """The first ``num_requests`` primaries plus their derived
        releases, merged in arrival order with final seq numbers."""
        if num_requests <= 0:
            raise ConfigurationError("need at least one request")
        inter_rng, tenant_rng, kind_rng, bank_rng, cube_rng, hold_rng = self._streams()
        kinds = sorted(self.mix, key=lambda k: k.value)
        weights = np.array([self.mix[k] for k in kinds], dtype=float)
        weights /= weights.sum()

        raw: List[Tuple[float, int, TenantRequest]] = []
        t = 0.0
        for i in range(num_requests):
            # One draw per stream per primary, unconditionally: streams
            # stay in lockstep, so the prefix is stable in num_requests.
            t += float(inter_rng.exponential(1.0 / self.rate_per_s))
            hot = float(tenant_rng.uniform()) < self.hot_tenant_share
            tenant_idx = (
                0
                if hot or self.num_tenants == 1
                else 1 + int(tenant_rng.integers(self.num_tenants - 1))
            )
            kind = kinds[int(kind_rng.choice(len(kinds), p=weights))]
            bank = int(bank_rng.integers(2))
            cubes = int(self.slice_cubes[int(cube_rng.integers(len(self.slice_cubes)))])
            hold_s = float(hold_rng.exponential(self.slice_hold_mean_s))

            request_id = f"rq-{i:06d}"
            tenant = f"t-{tenant_idx:03d}"
            params: Tuple[Tuple[str, object], ...]
            if kind in (RequestKind.TRAFFIC_UPDATE, RequestKind.RECONFIGURE):
                params = (("bank", bank),)
            elif kind is RequestKind.SLICE_ALLOC:
                params = (("cubes", cubes),)
            else:
                params = ()
            raw.append(
                (
                    t,
                    2 * i,
                    TenantRequest(
                        request_id=request_id,
                        tenant=tenant,
                        kind=kind,
                        arrival_s=t,
                        deadline_s=t + self.deadlines_s[kind],
                        params=params,  # type: ignore[arg-type]
                    ),
                )
            )
            if kind is RequestKind.SLICE_ALLOC:
                release_t = t + hold_s
                raw.append(
                    (
                        release_t,
                        2 * i + 1,
                        TenantRequest(
                            request_id=f"rl-{i:06d}",
                            tenant=tenant,
                            kind=RequestKind.SLICE_RELEASE,
                            arrival_s=release_t,
                            deadline_s=release_t
                            + self.deadlines_s[RequestKind.SLICE_RELEASE],
                            params=(("slice", request_id),),
                        ),
                    )
                )

        # Drop releases past the last primary arrival (open-loop end);
        # the horizon is the final *primary*'s arrival time.
        horizon = max(t0 for t0, order, _ in raw if order % 2 == 0)
        merged = sorted(
            (entry for entry in raw if entry[0] <= horizon or entry[1] % 2 == 0),
            key=lambda entry: (entry[0], entry[1]),
        )
        return [
            TenantRequest(
                request_id=req.request_id,
                tenant=req.tenant,
                kind=req.kind,
                arrival_s=req.arrival_s,
                deadline_s=req.deadline_s,
                params=req.params,
                seq=seq,
            )
            for seq, (_, _, req) in enumerate(merged)
        ]
