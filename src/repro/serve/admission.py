"""Token-bucket admission control with per-tenant fairness.

The first line of overload defense: work the service cannot afford is
refused at the door, cheaply, before it consumes queue slots or
controller attempts.  Two layers of buckets:

- a **global** bucket caps the aggregate admitted rate at what the
  control plane can actually serve (plus bounded burst);
- a **per-tenant** bucket caps any single tenant at its fair share, so
  one tenant's retry storm or runaway client cannot starve the rest --
  the quiet tenants' buckets stay full and their requests keep passing.

Buckets refill lazily from elapsed simulation time, so admission is a
pure function of (config, arrival timeline) -- no wall clock anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability


@dataclass
class TokenBucket:
    """The classic leaky bucket: ``rate`` tokens/s, ``burst`` capacity.

    Starts full.  :meth:`take` refills from elapsed time then consumes
    one token if available; time must be non-decreasing across calls.
    """

    rate_per_s: float
    burst: float
    _level: float = field(init=False)
    _last_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError("bucket rate must be positive")
        if self.burst < 1:
            raise ConfigurationError("bucket burst must be at least one token")
        self._level = self.burst

    def _refill(self, now_s: float) -> None:
        if now_s < self._last_s:
            raise ConfigurationError(
                f"bucket time ran backward ({now_s} < {self._last_s})"
            )
        self._level = min(self.burst, self._level + (now_s - self._last_s) * self.rate_per_s)
        self._last_s = now_s

    def take(self, now_s: float) -> bool:
        """Consume one token at ``now_s`` if the bucket holds one."""
        self._refill(now_s)
        if self._level >= 1.0:
            self._level -= 1.0
            return True
        return False

    def level(self, now_s: float) -> float:
        """Current token level after refilling to ``now_s``."""
        self._refill(now_s)
        return self._level

    def consume_peeked(self) -> None:
        """Spend one token a :meth:`level` call at the same instant just
        verified is present -- the refill would be a no-op, so skip it
        (the admission hot path's second refill pass)."""
        self._level -= 1.0


@dataclass
class FairAdmission:
    """Two-layer token-bucket admission: global rate, per-tenant share.

    Args:
        global_rate_per_s: aggregate admitted request rate.
        global_burst: aggregate burst tolerance (tokens).
        tenant_rate_per_s: each tenant's sustained fair share.
        tenant_burst: each tenant's burst tolerance.

    Tenant buckets are created lazily on first sight, full -- a new
    tenant starts with its whole burst available.  The tenant bucket is
    checked *first* so a hot tenant is charged to its own bucket before
    it can drain the shared one.
    """

    global_rate_per_s: float
    global_burst: float
    tenant_rate_per_s: float
    tenant_burst: float
    obs: Optional[Observability] = field(default=None, repr=False)
    _global: TokenBucket = field(init=False, repr=False)
    _tenants: Dict[str, TokenBucket] = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]
        self._global = TokenBucket(self.global_rate_per_s, self.global_burst)
        # Bound series handles: the decision counters are resolved once
        # here, not per arrival (same series objects, same digests).
        metrics = self.obs.metrics
        self._reject_tenant = metrics.handle(
            "counter", "serve.admission.decisions",
            verdict="reject", reason="tenant-rate",
        )
        self._reject_global = metrics.handle(
            "counter", "serve.admission.decisions",
            verdict="reject", reason="global-rate",
        )
        self._admit_ok = metrics.handle(
            "counter", "serve.admission.decisions", verdict="admit", reason="ok"
        )

    def _tenant_bucket(self, tenant: str) -> TokenBucket:
        bucket = self._tenants.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate_per_s, self.tenant_burst)
            self._tenants[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now_s: float) -> Tuple[bool, str]:
        """Admission verdict for one arrival: ``(admitted, reason)``.

        ``reason`` is ``"ok"``, ``"tenant-rate"`` (the tenant exceeded
        its fair share), or ``"global-rate"`` (aggregate overload).
        Refusals consume nothing: a tenant-rate refusal leaves the
        global bucket untouched (an aggressive tenant cannot burn shared
        capacity by being refused), and a global-rate refusal leaves the
        tenant bucket untouched (global overload cannot burn a quiet
        tenant's fair-share tokens on requests that were never admitted).
        Tokens are only spent on admission, one from each bucket.
        """
        tenant_bucket = self._tenants.get(tenant)
        if tenant_bucket is None:
            tenant_bucket = self._tenant_bucket(tenant)
        if tenant_bucket.level(now_s) < 1.0:
            self._reject_tenant.inc()
            return False, "tenant-rate"
        if not self._global.take(now_s):
            self._reject_global.inc()
            return False, "global-rate"
        # Guaranteed by the level() peek above: at the same now_s the
        # refill is a no-op, so the tenant token is still there to spend.
        tenant_bucket.consume_peeked()
        self._admit_ok.inc()
        return True, "ok"

    @property
    def num_tenants_seen(self) -> int:
        return len(self._tenants)
