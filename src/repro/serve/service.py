"""The overload-robust fabric serving layer.

:class:`FabricService` is a deterministic, simulation-clocked front end
to the durable control plane: tenants stream slice allocations, topology
reconfigurations, traffic-matrix updates, and telemetry queries at it,
open-loop, and it must stay correct -- and explicit about what it drops
-- whatever the offered load and fault timeline look like.

The defenses compose in a fixed order, and every request leaves through
exactly one of them (the *partition invariant*):

1. **admission** (:class:`~repro.serve.admission.FairAdmission`):
   token buckets, per-tenant then global -> ``REJECTED``;
2. **queueing** (:class:`~repro.serve.queueing.BoundedPriorityQueue`):
   bounded, priority-ordered, deterministic worst-victim eviction ->
   ``SHED`` (never silent: every eviction is a :class:`ShedRecord`);
3. **deadline propagation**: a request that cannot finish by its
   deadline is never started, and an attempt that cannot fit is never
   launched -> ``TIMEOUT`` (a timed-out request never commits);
4. **retry budget + circuit breaker** around the
   :class:`~repro.control.journal.DurableController` -> ``ERROR``
   (fast-failed or budget-capped, with the reason recorded);
5. everything else commits and completes -> ``OK``.

Under pressure the :class:`~repro.serve.brownout.BrownoutController`
degrades quality before work: maintenance defers, traffic-matrix
updates coalesce into one batched controller transaction per window
(last-writer-wins per circuit, in arrival order), and telemetry answers
come from a bounded-staleness cache.

**Determinism and replay.**  The service is a serial discrete-event
loop over (arrival, batch-flush, maintenance, serve) events; all
randomness is seeded (retry jitter) or injected
(:class:`~repro.faults.injector.FaultInjector`).  Same seed => byte
identical per-request outcomes (``outcomes_digest``) and the same
commit log; replaying that log serially against a fresh manager
(:func:`replay_committed`) must reproduce ``state_digest()`` exactly.

**Tenant -> fabric mapping.**  Tenant *i* owns north port
``i // num_traffic_ocses`` on traffic OCS ``i % num_traffic_ocses``,
with two private south ports (bank 0/1) -- retargets are collision-free
by construction, so any interleaving of committed updates is
serializable.  Slices get circuits on a dedicated slice OCS and cubes
from a :class:`~repro.scheduler.allocator.ReconfigurableAllocator`.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.control import journal
from repro.control.journal import DurableController
from repro.control.replication import ReplicationGroup
from repro.core.errors import (
    ConfigurationError,
    QuorumError,
    ReplicationError,
    ServeError,
)
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import JobId, LinkId, OcsId
from repro.faults.events import FaultKind
from repro.faults.injector import FaultInjector
from repro.faults.resilience import RetryPolicy
from repro.obs import NULL_OBS, Observability
from repro.scheduler.allocator import ReconfigurableAllocator
from repro.scheduler.requests import JobRequest
from repro.serve.admission import FairAdmission
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.brownout import BrownoutController
from repro.serve.queueing import BoundedPriorityQueue, ShedRecord
from repro.serve.requests import (
    ADMITTED_OUTCOMES,
    KIND_VALUE,
    OUTCOME_VALUE,
    Outcome,
    RequestKind,
    RequestRecord,
    TenantRequest,
    outcomes_digest,
)
from repro.serve.retry import RetryBudget
from repro.serve.sink import FullRecordSink, StreamAggregates, StreamingRecordSink
from repro.tpu.superpod import Superpod


@dataclass(frozen=True)
class ServeConfig:
    """Everything that shapes the serving layer's behavior.

    Service times are deterministic per kind (milliseconds of simulated
    server occupancy); capacity is their admission-weighted mean.
    """

    # Fabric shape.
    num_traffic_ocses: int = 4
    num_tenants: int = 256
    slice_radix: int = 64
    allocator_cubes: int = 64

    # Admission (requests per simulated second).
    global_rate_per_s: float = 400.0
    global_burst: float = 120.0
    tenant_rate_per_s: float = 8.0
    tenant_burst: float = 16.0

    # Queueing.
    queue_capacity: int = 64

    # Retry budget / breaker.
    retry_ratio: float = 0.5
    max_attempts: int = 4
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 0.5

    # Brownout ladder.
    brownout_enter_1: float = 0.5
    brownout_exit_1: float = 0.3
    brownout_enter_2: float = 0.8
    brownout_exit_2: float = 0.6
    pinned_brownout: Optional[int] = None

    # Deterministic service times (ms).
    telemetry_fresh_ms: float = 2.0
    telemetry_cached_ms: float = 0.2
    traffic_update_ms: float = 2.5
    reconfigure_ms: float = 3.0
    slice_alloc_ms: float = 5.0
    slice_release_ms: float = 2.0
    noop_ms: float = 0.5
    batch_member_ms: float = 0.3
    batch_flush_ms: float = 4.0
    rpc_timeout_ms: float = 25.0
    maintenance_ms: float = 6.0

    # Coalescing / maintenance / telemetry cache.
    batch_window_s: float = 0.2
    batch_max_updates: int = 32
    maintenance_interval_s: float = 5.0
    telemetry_ttl_s: float = 0.5

    # Replicated control plane.  1 = the PR-6 single DurableController
    # (byte-identical behavior); >= 3 routes every mutation through a
    # lease-held, epoch-fenced ReplicationGroup and turns controller
    # loss into leader failover instead of refusal.
    num_controller_replicas: int = 1
    replica_lease_s: float = 2.0

    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_traffic_ocses < 1 or self.num_tenants < 1:
            raise ConfigurationError("need at least one OCS and one tenant")
        if self.traffic_radix > 512:
            raise ConfigurationError(
                f"traffic radix {self.traffic_radix} unreasonably large; "
                "add traffic OCSes instead"
            )
        if self.slice_radix < 1:
            raise ConfigurationError("slice OCS needs at least one port")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue capacity must be positive")
        if self.batch_window_s <= 0 or self.batch_max_updates < 1:
            raise ConfigurationError("batch window and size must be positive")
        if self.maintenance_interval_s <= 0 or self.telemetry_ttl_s <= 0:
            raise ConfigurationError("maintenance interval and ttl must be positive")
        if (
            self.global_rate_per_s <= 0
            or self.global_burst < 1
            or self.tenant_rate_per_s <= 0
            or self.tenant_burst < 1
        ):
            raise ConfigurationError("admission rates and bursts must be positive")
        if self.num_controller_replicas < 1:
            raise ConfigurationError("need at least one controller replica")
        if self.num_controller_replicas > 1 and self.num_controller_replicas % 2 == 0:
            raise ConfigurationError(
                "replica count must be odd (an even group tolerates no more "
                "failures than the next odd size down, but splits worse)"
            )
        if self.replica_lease_s <= 0:
            raise ConfigurationError("replica lease must be positive")
        for name in (
            "telemetry_fresh_ms", "telemetry_cached_ms", "traffic_update_ms",
            "reconfigure_ms", "slice_alloc_ms", "slice_release_ms", "noop_ms",
            "batch_member_ms", "batch_flush_ms", "rpc_timeout_ms",
            "maintenance_ms",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def tenants_per_ocs(self) -> int:
        return math.ceil(self.num_tenants / self.num_traffic_ocses)

    @property
    def traffic_radix(self) -> int:
        # Two south banks per tenant slot.
        return 2 * self.tenants_per_ocs

    @property
    def slice_ocs(self) -> OcsId:
        return OcsId(self.num_traffic_ocses)

    def tenant_circuit(self, tenant: str) -> Tuple[OcsId, int]:
        """(ocs, north port) owned by ``tenant`` (id ``t-<index>``)."""
        index = int(tenant.rsplit("-", 1)[1])
        if not 0 <= index < self.num_tenants:
            raise ConfigurationError(f"tenant {tenant} outside population")
        return OcsId(index % self.num_traffic_ocses), index // self.num_traffic_ocses

    def south_for_bank(self, north: int, bank: int) -> int:
        if bank not in (0, 1):
            raise ConfigurationError(f"bank must be 0 or 1, got {bank}")
        return north + bank * self.tenants_per_ocs


def build_serve_manager(
    config: ServeConfig, obs: Optional[Observability] = None
) -> FabricManager:
    """The serving fabric: traffic OCSes (provisioned one circuit per
    tenant, bank 0) plus one dedicated slice OCS.

    Shared by the live service and :func:`replay_committed`, so both
    start from the identical provisioned state.
    """
    manager = FabricManager(obs=obs)
    for i in range(config.num_traffic_ocses):
        manager.add_switch(OcsId(i), SimpleSwitch(config.traffic_radix))
    manager.add_switch(config.slice_ocs, SimpleSwitch(config.slice_radix))
    for t in range(config.num_tenants):
        ocs, north = config.tenant_circuit(f"t-{t:03d}")
        manager.switch(ocs).state.connect(north, config.south_for_bank(north, 0))
    return manager


@dataclass(frozen=True, slots=True)
class CommitEntry:
    """One committed state-changing operation, in commit order.

    ``op`` is ``retarget`` (ints = ocs, north, south), ``slice-alloc``
    (ints = port), or ``slice-release`` (ref = the alloc's request id).
    """

    op: str
    request_id: str
    ints: Tuple[int, ...] = ()
    ref: str = ""

    def canonical(self) -> str:
        ints = ",".join(str(i) for i in self.ints)
        return f"{self.op}|{self.request_id}|{ints}|{self.ref}"


@dataclass
class ServeReport:
    """Everything one service run produced, deterministically."""

    config: ServeConfig
    records: List[RequestRecord]
    shed_records: List[ShedRecord]
    commit_log: List[CommitEntry]
    offered: int
    downstream_attempts: int
    deposits: int
    retries_granted: int
    retries_denied: int
    breaker_trips: int
    breaker_fast_fails: int
    brownout_transitions: Tuple[Tuple[float, int], ...]
    maintenance_runs: int
    maintenance_deferred: int
    batches_flushed: int
    telemetry_cache_hits: int
    telemetry_cache_misses: int
    recoveries: int
    state_digest: str
    faults_digest: str

    # Replicated-control-plane accounting (all zero in single mode).
    failovers: int = 0
    elections: int = 0
    fencing_rejections: int = 0
    committed_ops_lost: int = 0
    failover_durations_s: Tuple[float, ...] = ()
    failover_unavailable_s: float = 0.0

    #: Streaming-mode roll-up: populated (and ``records`` left empty)
    #: when the service ran with a :class:`StreamingRecordSink`.
    aggregates: Optional[StreamAggregates] = None

    # Lazy caches -- a report is immutable once constructed, so counts
    # and per-outcome sorted latencies are computed at most once.
    _counts: Optional[Dict[Outcome, int]] = field(
        init=False, default=None, repr=False, compare=False
    )
    _sorted_latencies: Dict[Outcome, List[float]] = field(
        init=False, default_factory=dict, repr=False, compare=False
    )

    def count(self, outcome: Outcome) -> int:
        counts = self._counts
        if counts is None:
            if self.aggregates is not None and not self.records:
                counts = dict(self.aggregates.outcome_counts)
            else:
                counts = {o: 0 for o in Outcome}
                for r in self.records:
                    counts[r.outcome] += 1
            self._counts = counts
        return counts.get(outcome, 0)

    @property
    def admitted(self) -> int:
        return sum(self.count(o) for o in ADMITTED_OUTCOMES)

    @property
    def retry_amplification(self) -> float:
        """Observed downstream attempts per service start; provably
        bounded by ``1 + retry_ratio`` (see :mod:`repro.serve.retry`)."""
        return self.downstream_attempts / max(1, self.deposits)

    @property
    def shed_rate(self) -> float:
        return self.count(Outcome.SHED) / max(1, self.offered)

    def latency_percentile_ms(self, q: float, outcome: Outcome = Outcome.OK) -> float:
        lat = self._sorted_latencies.get(outcome)
        if lat is None:
            if self.aggregates is not None and not self.records:
                # Streaming mode: a histogram estimate (<= one 4% bucket
                # above the true order statistic), not an exact sort.
                return self.aggregates.latency_percentile_ms(q, outcome)
            # Sort once per outcome, not once per percentile query.
            lat = sorted(
                r.latency_ms for r in self.records if r.outcome is outcome
            )
            self._sorted_latencies[outcome] = lat
        if not lat:
            return 0.0
        return lat[min(len(lat) - 1, int(math.ceil(q * len(lat))) - 1)]

    def outcomes_digest(self) -> str:
        if self.aggregates is not None and not self.records:
            return self.aggregates.outcomes_digest
        return outcomes_digest(self.records)

    def failover_percentile_s(self, q: float) -> float:
        durations = sorted(self.failover_durations_s)
        if not durations:
            return 0.0
        return durations[min(len(durations) - 1, int(math.ceil(q * len(durations))) - 1)]

    def summary(self) -> Dict[str, object]:
        """Flat, JSON-ready roll-up (what the NOC / CI gate consumes)."""
        out = self._base_summary()
        if self.config.num_controller_replicas > 1:
            out.update(
                {
                    "failovers": self.failovers,
                    "elections": self.elections,
                    "fencing_rejections": self.fencing_rejections,
                    "committed_ops_lost": self.committed_ops_lost,
                    "failover_p99_s": round(self.failover_percentile_s(0.99), 6),
                    "failover_unavailable_s": round(self.failover_unavailable_s, 6),
                }
            )
        return out

    def _base_summary(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "ok": self.count(Outcome.OK),
            "rejected": self.count(Outcome.REJECTED),
            "shed": self.count(Outcome.SHED),
            "timeout": self.count(Outcome.TIMEOUT),
            "error": self.count(Outcome.ERROR),
            "admitted": self.admitted,
            "serve_p50_ms": round(self.latency_percentile_ms(0.50), 6),
            "serve_p99_ms": round(self.latency_percentile_ms(0.99), 6),
            "serve_shed_rate": round(self.shed_rate, 6),
            "serve_retry_amplification": round(self.retry_amplification, 6),
            "downstream_attempts": self.downstream_attempts,
            "deposits": self.deposits,
            "retries_granted": self.retries_granted,
            "retries_denied": self.retries_denied,
            "breaker_trips": self.breaker_trips,
            "breaker_fast_fails": self.breaker_fast_fails,
            "brownout_transitions": len(self.brownout_transitions),
            "maintenance_runs": self.maintenance_runs,
            "maintenance_deferred": self.maintenance_deferred,
            "batches_flushed": self.batches_flushed,
            "telemetry_cache_hits": self.telemetry_cache_hits,
            "telemetry_cache_misses": self.telemetry_cache_misses,
            "recoveries": self.recoveries,
            "commits": len(self.commit_log),
            "outcomes_digest": self.outcomes_digest(),
            "state_digest": self.state_digest,
            "faults_digest": self.faults_digest,
        }


class _CubeLedger:
    """Count-twin of :class:`ReconfigurableAllocator` for the fast path.

    The serve drill never fails cubes, and the allocator's verdict is
    purely ``healthy free cubes >= job.cubes`` -- so a free-count ledger
    gives bit-identical admit/refuse decisions without per-cube
    bookkeeping or slice programming (the Superpod sits outside
    ``state_digest()``, so nothing downstream can observe the
    difference; the equality is pinned by the fast-vs-reference
    property tests).
    """

    __slots__ = ("free",)

    def __init__(self, num_cubes: int) -> None:
        self.free = num_cubes

    def try_allocate(self, job: JobRequest) -> Optional[JobRequest]:
        if job.cubes > self.free:
            return None
        self.free -= job.cubes
        return job

    def release(self, job: JobRequest) -> None:
        self.free += job.cubes


class _DigestCache:
    """Byte-identical ``FabricManager.state_digest()`` with per-switch
    fragment reuse.

    The digest hashes ``json.dumps(checkpoint(), sort_keys=True)``;
    recomputing it from scratch costs a full sort-and-serialize of every
    switch for every fresh telemetry answer.  A retarget touches exactly
    one switch, so this cache keeps each switch's serialized fragment
    and re-renders only dirty ones; the link table (which only slice
    ops change, one link at a time) is kept as per-link fragments in a
    bisect-maintained name order, so an alloc or release re-joins
    strings instead of re-sorting and re-serializing every link.
    Equality with the real digest is pinned by
    ``tests/serve/test_fastpath.py``.
    """

    __slots__ = ("_manager", "_fragments", "_order", "_by_key", "_dirty",
                 "_link_fragments", "_link_names", "_links_json", "_digest")

    def __init__(self, manager: FabricManager) -> None:
        self._manager = manager
        # json.dumps(sort_keys=True) orders the stringified switch
        # indices lexicographically ("10" < "2"), so the fragment order
        # must match that, not numeric order.
        self._by_key = {str(o.index): o for o in manager.switch_ids}
        self._order = sorted(self._by_key)
        self._fragments: Dict[str, str] = {}
        self._dirty = set(self._order)
        self._link_fragments: Dict[str, str] = {}
        self._link_names: List[str] = []
        self._links_json: Optional[str] = None
        self._digest: Optional[str] = None
        self.resync_links()

    def invalidate_switch(self, ocs: OcsId) -> None:
        self._dirty.add(str(ocs.index))
        self._digest = None

    def resync_links(self) -> None:
        """Full rebuild of the link fragments from the manager (init, or
        after any link change not routed through add/remove)."""
        self._link_fragments = {
            str(link.link_id): json.dumps(
                [str(link.link_id), link.ocs.index, link.north, link.south],
                separators=(",", ":"),
            )
            for link in self._manager.links
        }
        # FabricManager.links sorts by LinkId, which orders by name, so
        # sorted names reproduce the checkpoint's link order exactly.
        self._link_names = sorted(self._link_fragments)
        self._links_json = None
        self._digest = None

    def link_added(self, name: str, ocs_index: int, north: int, south: int) -> None:
        self._link_fragments[name] = json.dumps(
            [name, ocs_index, north, south], separators=(",", ":")
        )
        bisect.insort(self._link_names, name)
        self._links_json = None
        self._digest = None

    def link_removed(self, name: str) -> None:
        del self._link_fragments[name]
        index = bisect.bisect_left(self._link_names, name)
        del self._link_names[index]
        self._links_json = None
        self._digest = None

    def digest(self) -> str:
        if self._digest is not None:
            return self._digest
        for key in self._dirty:
            sw = self._manager.switch(self._by_key[key])
            circuits = json.dumps(
                [[n, s] for n, s in sorted(sw.state.circuits)],
                separators=(",", ":"),
            )
            self._fragments[key] = (
                f'"{key}":{{"circuits":{circuits},"radix":{sw.radix}}}'
            )
        self._dirty.clear()
        if self._links_json is None:
            fragments = self._link_fragments
            self._links_json = (
                "[" + ",".join(map(fragments.__getitem__, self._link_names)) + "]"
            )
        payload = (
            '{"links":' + self._links_json + ',"switches":{'
            + ",".join(self._fragments[k] for k in self._order) + "}}"
        )
        self._digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return self._digest


class FabricService:
    """Serial, deterministic serving loop over tenant requests."""

    def __init__(
        self,
        config: ServeConfig,
        obs: Optional[Observability] = None,
        sink: Optional[Union[FullRecordSink, StreamingRecordSink]] = None,
    ) -> None:
        self.config = config
        self.obs = obs if obs is not None else NULL_OBS
        #: Terminal-outcome sink; the default keeps every record (PR-6
        #: behavior), a StreamingRecordSink keeps memory flat at 10^6.
        self._sink = sink if sink is not None else FullRecordSink()
        self.replication: Optional[ReplicationGroup] = None
        self.controller: Optional[DurableController] = None
        if config.num_controller_replicas > 1:
            # Each replica owns a full provisioned fabric image; the
            # leader's is the one reads and port scans see.
            self.replication = ReplicationGroup(
                num_replicas=config.num_controller_replicas,
                manager_factory=lambda: build_serve_manager(config),
                lease_s=config.replica_lease_s,
                obs=self.obs,
            )
            self.replication.elect(0, 0.0)
            self._solo_manager: Optional[FabricManager] = None
        else:
            self._solo_manager = build_serve_manager(config, obs=self.obs)
            self.controller = DurableController(
                manager=self._solo_manager, obs=self.obs
            )
        self.admission = FairAdmission(
            global_rate_per_s=config.global_rate_per_s,
            global_burst=config.global_burst,
            tenant_rate_per_s=config.tenant_rate_per_s,
            tenant_burst=config.tenant_burst,
            obs=self.obs,
        )
        self.queue = BoundedPriorityQueue(config.queue_capacity)
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s,
            obs=self.obs,
        )
        self.brownout = BrownoutController(
            enter_1=config.brownout_enter_1,
            exit_1=config.brownout_exit_1,
            enter_2=config.brownout_enter_2,
            exit_2=config.brownout_exit_2,
            pinned_level=config.pinned_brownout,
            obs=self.obs,
        )
        self.budget = RetryBudget(
            retry_ratio=config.retry_ratio,
            max_attempts=config.max_attempts,
            obs=self.obs,
        )
        self.allocator = ReconfigurableAllocator(
            Superpod(num_cubes=config.allocator_cubes)
        )
        self._retry_policy = RetryPolicy()
        self._rng = np.random.default_rng(config.seed)

        # Bound metric handles: name+label resolution happens once here,
        # not per event (same series objects, same snapshots).
        metrics = self.obs.metrics
        self._outcome_family = metrics.family(
            "counter", "serve.outcomes", "outcome", "kind"
        )
        self._latency_family = metrics.family(
            "histogram", "serve.latency_ms", "outcome"
        )
        self._attempts_counter = metrics.handle("counter", "serve.attempts")
        self._fast_fail_counter = metrics.handle(
            "counter", "serve.breaker.fast_fails"
        )
        self._telemetry_hit_counter = metrics.handle(
            "counter", "serve.telemetry", source="cache"
        )
        self._telemetry_miss_counter = metrics.handle(
            "counter", "serve.telemetry", source="fresh"
        )
        self._batches_counter = metrics.handle(
            "counter", "serve.batches.flushed"
        )
        self._batch_size_hist = metrics.handle("histogram", "serve.batch.size")
        self._maint_runs_counter = metrics.handle(
            "counter", "serve.maintenance.runs"
        )
        self._maint_deferred_counter = metrics.handle(
            "counter", "serve.maintenance.deferred"
        )

        # Fast commit plane (engaged by run(), solo mode only).
        self._fast = False
        self._digest_cache: Optional[_DigestCache] = None
        self._free_ports: List[int] = []

        # Mutable run state.
        self._commit_log: List[CommitEntry] = []
        self._allocs: Dict[str, Tuple[JobRequest, int]] = {}
        self._batch: List[TenantRequest] = []
        self._batch_due_s = 0.0
        self._batch_seq = 0
        self._controller_down = False
        self._pending_rpc_timeouts = 0
        self._recoveries = 0
        self._downstream_attempts = 0
        self._breaker_fast_fails = 0
        self._maintenance_runs = 0
        self._maintenance_deferred = 0
        self._batches_flushed = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._telemetry_cache: Optional[Tuple[str, float]] = None
        self._offered = 0
        self._sim_now = 0.0
        self._failovers = 0
        if self.replication is not None:
            # Open edge of the breaker = leader is gone: elect a standby
            # and re-close, instead of cooling down against a dead primary.
            self.breaker.on_trip = self._on_breaker_trip

    @property
    def manager(self) -> FabricManager:
        """The authoritative fabric view: the replication leader's state
        machine when replicated, the solo manager otherwise."""
        if self.replication is not None:
            return self.replication.live_manager()
        assert self._solo_manager is not None
        return self._solo_manager

    # ------------------------------------------------------------------ #
    # Fault wiring
    # ------------------------------------------------------------------ #

    def attach_faults(self, injector: FaultInjector) -> None:
        if self.replication is not None:
            # Crash / partition / skew semantics live with the group.
            self.replication.attach_faults(injector)
        else:
            injector.subscribe(FaultKind.CONTROLLER_CRASH, self._on_controller_event)
        injector.subscribe(FaultKind.RPC_TIMEOUT, self._on_rpc_timeout_event)

    def _on_controller_event(self, event) -> None:
        assert self.controller is not None  # single-mode only
        if event.recovery:
            if not self._fast:
                storage = self.controller.wal.storage
                self.controller, _report = journal.recover(
                    self.manager, storage, obs=self.obs
                )
            # Fast path: recovery is a proven manager-state no-op here
            # (no half-programmed hardware in the serve sim -- the WAL
            # replay drives no-op plans, rebuilds identical links, and
            # idempotency tokens are never reused because apply_fn runs
            # at most once per request), so a full WAL scan -- quadratic
            # across a long drill -- buys nothing.  Clear the flag.
            self._controller_down = False
            self._recoveries += 1
            self.obs.metrics.counter("serve.controller.recoveries").inc()
        else:
            self._controller_down = True
            self.obs.metrics.counter("serve.controller.crashes").inc()

    def _on_rpc_timeout_event(self, event) -> None:
        if event.recovery:
            self._pending_rpc_timeouts = 0
        else:
            self._pending_rpc_timeouts += max(1, int(event.severity))

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #

    def _record(
        self,
        request: TenantRequest,
        outcome: Outcome,
        finish_s: float,
        *,
        attempts: int = 0,
        detail: str = "",
    ) -> None:
        self._sink.record(
            RequestRecord(
                request=request,
                outcome=outcome,
                finish_s=finish_s,
                attempts=attempts,
                detail=detail,
            )
        )
        self._outcome_family.series(
            OUTCOME_VALUE[outcome], KIND_VALUE[request.kind]
        ).inc()
        self._latency_family.series(OUTCOME_VALUE[outcome]).observe(
            max(0.0, (finish_s - request.arrival_s) * 1e3)
        )

    def _observe_pressure(self, now_s: float) -> None:
        # BoundedPriorityQueue.occupancy is already a fill fraction in
        # [0, 1]; feed it to the brownout ladder undiluted.
        occupancy = self.queue.occupancy
        breaker_open = self.breaker.state(now_s) is BreakerState.OPEN
        self.brownout.observe(occupancy, breaker_open, now_s)

    # ------------------------------------------------------------------ #
    # Downstream attempts (retry budget + breaker + deadline, shared by
    # every controller-touching path)
    # ------------------------------------------------------------------ #

    def _attempt_failure(self, t: float) -> Optional[str]:
        """Injected-fault view of one RPC attempt; consumes one pending
        timeout when the burst is active.

        In replicated mode a dead or unreachable leader is not a hard
        failure: the attempt first tries to fail over to a standby, and
        only reports ``controller-down`` when no electable replica is
        reachable (no quorum anywhere the client can see)."""
        if self.replication is not None:
            if not self.replication.leader_serviceable():
                if not self._try_failover(t):
                    return "controller-down"
            if self._pending_rpc_timeouts > 0:
                self._pending_rpc_timeouts -= 1
                return "rpc-timeout"
            return None
        if self._controller_down:
            return "controller-down"
        if self._pending_rpc_timeouts > 0:
            self._pending_rpc_timeouts -= 1
            return "rpc-timeout"
        return None

    def _try_failover(self, t: float) -> bool:
        """Elect the first client-reachable replica; True on success."""
        assert self.replication is not None
        if self.replication.leader_serviceable():
            return True
        self.replication.note_outage(t)
        for index in range(self.replication.num_replicas):
            node = self.replication.nodes[index]
            if not node.up or not self.replication.client_reachable(index):
                continue
            try:
                self.replication.elect(index, t)
            except QuorumError:
                continue
            self._failovers += 1
            self.obs.metrics.counter("serve.failovers").inc()
            return True
        return False

    def _gate_attempt(self, t: float) -> bool:
        """Breaker gate with failover redirection on the open edge.

        A closed (or probing half-open) breaker admits the attempt.  An
        open breaker normally fast-fails -- but in replicated mode, if
        the reason it opened is a dead/unreachable leader, electing a
        standby repairs the cause, so the gate retries the election and
        re-closes on success instead of refusing work for a cooldown.
        """
        if self.breaker.allow(t):
            return True
        if (
            self.replication is not None
            and not self.replication.leader_serviceable()
            and self._try_failover(t)
        ):
            self.breaker.reset()
            return True
        return False

    def _on_breaker_trip(self, now_s: float) -> None:
        if self.replication is None or self.replication.leader_serviceable():
            # Genuine downstream flakiness (e.g. an RPC-timeout burst
            # against a healthy leader): let the breaker cool down.
            return
        if self._try_failover(now_s):
            # The failure cause (a dead leader) was repaired by the
            # election: keep admitting instead of fast-failing through
            # the cooldown.
            self.breaker.reset()

    def _run_attempts(
        self, t: float, deadline_s: float, work_ms: float, apply_fn
    ) -> Tuple[Outcome, float, int, str]:
        """Drive one downstream operation to a terminal outcome.

        Returns ``(outcome, time_after, attempts, detail)``.  ``apply_fn``
        runs only on the successful attempt (and must not raise for
        reasons the fault model covers -- real exceptions propagate,
        they are bugs, not overload).
        """
        attempts = 0
        detail = ""
        work_s = work_ms / 1e3
        rpc_timeout_s = self.config.rpc_timeout_ms / 1e3
        while True:
            if t + work_s > deadline_s:
                return Outcome.TIMEOUT, t, attempts, detail or "deadline"
            if not self._gate_attempt(t):
                self._breaker_fast_fails += 1
                self._fast_fail_counter.inc()
                return Outcome.ERROR, t, attempts, "breaker-open"
            attempts += 1
            self._downstream_attempts += 1
            self._attempts_counter.inc()
            failure = self._attempt_failure(t)
            if failure is None:
                self._sim_now = t
                try:
                    apply_fn()
                except ReplicationError:
                    # The commit could not reach quorum (partition mid-
                    # attempt): a retryable failure, not a bug.
                    failure = "no-quorum"
                else:
                    self.breaker.record_success(t)
                    return Outcome.OK, t + work_s, attempts, detail
            detail = failure
            self.breaker.record_failure(t)
            t += rpc_timeout_s
            if attempts >= self.budget.max_attempts:
                return Outcome.ERROR, t, attempts, "retries-exhausted"
            if not self.budget.try_spend():
                return Outcome.ERROR, t, attempts, "retry-budget"
            t += self._retry_policy.backoff_ms(attempts, self._rng) / 1e3

    # ------------------------------------------------------------------ #
    # Per-kind dispatch
    # ------------------------------------------------------------------ #

    def _retarget_target(
        self, request: TenantRequest
    ) -> Tuple[OcsId, int, int]:
        ocs, north = self.config.tenant_circuit(request.tenant)
        south = self.config.south_for_bank(north, int(request.param("bank", 0)))
        return ocs, north, south

    def _apply_retarget(
        self, changes: Dict[Tuple[OcsId, int], int], token: str
    ) -> None:
        if self._fast:
            # The delta plane: exactly the moves replay_committed makes,
            # applied straight to switch state -- no target-map copy, no
            # WAL record, no plan diff.  Equivalence with the journaled
            # plane is what the replay-digest check proves.
            for (ocs, north), south in changes.items():
                state = self.manager.switch(ocs).state
                if state.south_of(north) != south:
                    if state.south_of(north) is not None:
                        state.disconnect(north)
                    other = state.north_of(south)
                    if other is not None:
                        state.disconnect(other)
                    state.connect(north, south)
                    self._digest_cache.invalidate_switch(ocs)
            return
        if self.replication is not None:
            payload = {
                "op": "retarget",
                "changes": sorted(
                    [ocs.index, north, south]
                    for (ocs, north), south in changes.items()
                ),
            }
            self.replication.submit(payload, self._sim_now, token=token)
            return
        assert self.controller is not None
        targets: Dict[OcsId, object] = {}
        for (ocs, north), south in changes.items():
            if ocs not in targets:
                targets[ocs] = self.manager.switch(ocs).state.copy()
            tmap = targets[ocs]
            if tmap.south_of(north) is not None:
                tmap.disconnect(north)
            if tmap.north_of(south) is not None:
                tmap.disconnect(tmap.north_of(south))
            tmap.connect(north, south)
        self.controller.reconfigure(targets, token=token)  # type: ignore[arg-type]

    def _dispatch_retarget(self, request: TenantRequest, t: float) -> float:
        ocs, north, south = self._retarget_target(request)
        work_ms = (
            self.config.reconfigure_ms
            if request.kind is RequestKind.RECONFIGURE
            else self.config.traffic_update_ms
        )
        self.budget.deposit()

        def apply() -> None:
            self._apply_retarget({(ocs, north): south}, token=request.request_id)
            self._commit_log.append(
                CommitEntry(
                    "retarget", request.request_id, (ocs.index, north, south)
                )
            )

        outcome, t_end, attempts, detail = self._run_attempts(
            t, request.deadline_s, work_ms, apply
        )
        self._record(request, outcome, t_end, attempts=attempts, detail=detail)
        return t_end

    def _free_slice_port(self) -> Optional[int]:
        if self._fast:
            # Slice circuits are always port<->port on the slice OCS, so
            # the reference scan's "lowest doubly-free port" is exactly
            # the min of the free-port heap.
            return self._free_ports[0] if self._free_ports else None
        state = self.manager.switch(self.config.slice_ocs).state
        for port in range(self.config.slice_radix):
            if state.south_of(port) is None and state.north_of(port) is None:
                return port
        return None

    def _dispatch_slice_alloc(self, request: TenantRequest, t: float) -> float:
        cubes = int(request.param("cubes", 1))
        job = JobRequest(
            job_id=JobId(request.request_id),
            cubes=cubes,
            duration_s=3600.0,
            arrival_s=request.arrival_s,
        )
        port = self._free_slice_port()
        if port is None or self.allocator.try_allocate(job) is None:
            t_end = t + self.config.noop_ms / 1e3
            self._record(request, Outcome.ERROR, t_end, detail="capacity")
            return t_end
        self.budget.deposit()

        def apply() -> None:
            if self._fast:
                self.manager.establish(
                    LinkId(f"sl-{request.request_id}"),
                    self.config.slice_ocs,
                    port,
                    port,
                )
                heapq.heappop(self._free_ports)  # == port (peeked above)
                self._digest_cache.invalidate_switch(self.config.slice_ocs)
                self._digest_cache.link_added(
                    f"sl-{request.request_id}",
                    self.config.slice_ocs.index,
                    port,
                    port,
                )
            elif self.replication is not None:
                self.replication.submit(
                    {
                        "op": "establish",
                        "link": f"sl-{request.request_id}",
                        "ocs": self.config.slice_ocs.index,
                        "north": port,
                        "south": port,
                    },
                    self._sim_now,
                    token=request.request_id,
                )
            else:
                assert self.controller is not None
                self.controller.establish(
                    LinkId(f"sl-{request.request_id}"),
                    self.config.slice_ocs,
                    port,
                    port,
                    token=request.request_id,
                )
            self._allocs[request.request_id] = (job, port)
            self._commit_log.append(
                CommitEntry("slice-alloc", request.request_id, (port,))
            )

        outcome, t_end, attempts, detail = self._run_attempts(
            t, request.deadline_s, self.config.slice_alloc_ms, apply
        )
        if outcome is not Outcome.OK:
            # The cube reservation never committed downstream; give it back.
            self.allocator.release(job)
        self._record(request, outcome, t_end, attempts=attempts, detail=detail)
        return t_end

    def _dispatch_slice_release(self, request: TenantRequest, t: float) -> float:
        alloc_id = str(request.param("slice", ""))
        held = self._allocs.get(alloc_id)
        if held is None:
            # Alloc was rejected/shed/timed out (or already released):
            # releasing nothing is success, explicitly.
            t_end = t + self.config.noop_ms / 1e3
            self._record(request, Outcome.OK, t_end, detail="noop")
            return t_end
        job, port = held
        self.budget.deposit()

        def apply() -> None:
            if self._fast:
                self.manager.teardown(LinkId(f"sl-{alloc_id}"))
                heapq.heappush(self._free_ports, port)
                self._digest_cache.invalidate_switch(self.config.slice_ocs)
                self._digest_cache.link_removed(f"sl-{alloc_id}")
            elif self.replication is not None:
                self.replication.submit(
                    {"op": "teardown", "link": f"sl-{alloc_id}"},
                    self._sim_now,
                    token=request.request_id,
                )
            else:
                assert self.controller is not None
                self.controller.teardown(
                    LinkId(f"sl-{alloc_id}"), token=request.request_id
                )
            self.allocator.release(job)
            del self._allocs[alloc_id]
            self._commit_log.append(
                CommitEntry("slice-release", request.request_id, ref=alloc_id)
            )

        outcome, t_end, attempts, detail = self._run_attempts(
            t, request.deadline_s, self.config.slice_release_ms, apply
        )
        self._record(request, outcome, t_end, attempts=attempts, detail=detail)
        return t_end

    def _dispatch_telemetry(self, request: TenantRequest, t: float) -> float:
        cached = self._telemetry_cache
        if (
            self.brownout.serve_cached_telemetry
            and cached is not None
            and t - cached[1] <= self.config.telemetry_ttl_s
        ):
            self._cache_hits += 1
            self._telemetry_hit_counter.inc()
            t_end = t + self.config.telemetry_cached_ms / 1e3
            self._record(request, Outcome.OK, t_end, detail="cached")
            return t_end
        if self._fast:
            # Same digest bytes, but only dirty switches re-serialize.
            digest = self._digest_cache.digest()
        else:
            digest = self.manager.state_digest()
        self._telemetry_cache = (digest, t)
        self._cache_misses += 1
        self._telemetry_miss_counter.inc()
        t_end = t + self.config.telemetry_fresh_ms / 1e3
        self._record(request, Outcome.OK, t_end, detail="fresh")
        return t_end

    # ------------------------------------------------------------------ #
    # Batched (coalesced) traffic updates
    # ------------------------------------------------------------------ #

    def _enqueue_batch_member(self, request: TenantRequest, t: float) -> float:
        if not self._batch:
            self._batch_due_s = t + self.config.batch_window_s
        self._batch.append(request)
        t_end = t + self.config.batch_member_ms / 1e3
        if len(self._batch) >= self.config.batch_max_updates:
            t_end = self._flush_batch(t_end)
        return t_end

    def _flush_batch(self, t: float) -> float:
        """One controller transaction for the whole window, last-writer
        wins per circuit; members that cannot make their deadline are
        timed out (explicitly) before each attempt."""
        members = self._batch
        self._batch = []
        self._batch_seq += 1
        token = f"batch-{self._batch_seq:05d}"
        flush_s = self.config.batch_flush_ms / 1e3
        for _ in members:  # every member enters service here
            self.budget.deposit()
        attempts = 0
        while True:
            live = [m for m in members if t + flush_s <= m.deadline_s]
            for expired in (m for m in members if m not in live):
                self._record(
                    expired, Outcome.TIMEOUT, t, attempts=attempts,
                    detail="batch-deadline",
                )
            members = live
            if not members:
                return t
            if not self._gate_attempt(t):
                self._breaker_fast_fails += 1
                self._fast_fail_counter.inc()
                for m in members:
                    self._record(
                        m, Outcome.ERROR, t, attempts=attempts,
                        detail="breaker-open",
                    )
                return t
            attempts += 1
            self._downstream_attempts += 1
            self._attempts_counter.inc()
            failure = self._attempt_failure(t)
            if failure is None:
                self._sim_now = t
                changes: Dict[Tuple[OcsId, int], int] = {}
                for m in members:  # arrival order: last writer wins
                    ocs, north, south = self._retarget_target(m)
                    changes[(ocs, north)] = south
                try:
                    self._apply_retarget(changes, token=token)
                except ReplicationError:
                    failure = "no-quorum"
                else:
                    for m in members:
                        ocs, north, south = self._retarget_target(m)
                        self._commit_log.append(
                            CommitEntry(
                                "retarget", m.request_id, (ocs.index, north, south)
                            )
                        )
                    self.breaker.record_success(t)
                    t_end = t + flush_s
                    for m in members:
                        self._record(
                            m, Outcome.OK, t_end, attempts=attempts, detail="batched"
                        )
                    self._batches_flushed += 1
                    self._batches_counter.inc()
                    self._batch_size_hist.observe(float(len(members)))
                    return t_end
            self.breaker.record_failure(t)
            t += self.config.rpc_timeout_ms / 1e3
            if attempts >= self.budget.max_attempts:
                for m in members:
                    self._record(
                        m, Outcome.ERROR, t, attempts=attempts,
                        detail="retries-exhausted",
                    )
                return t
            if not self.budget.try_spend():
                for m in members:
                    self._record(
                        m, Outcome.ERROR, t, attempts=attempts, detail="retry-budget"
                    )
                return t
            t += self._retry_policy.backoff_ms(attempts, self._rng) / 1e3

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #

    def _dispatch(self, request: TenantRequest, t: float) -> float:
        kind = request.kind
        if kind is RequestKind.TELEMETRY_QUERY:
            return self._dispatch_telemetry(request, t)
        if kind is RequestKind.TRAFFIC_UPDATE and self.brownout.coalesce_updates:
            return self._enqueue_batch_member(request, t)
        if kind in (RequestKind.TRAFFIC_UPDATE, RequestKind.RECONFIGURE):
            return self._dispatch_retarget(request, t)
        if kind is RequestKind.SLICE_ALLOC:
            return self._dispatch_slice_alloc(request, t)
        return self._dispatch_slice_release(request, t)

    def run(
        self,
        requests: Union[Sequence[TenantRequest], Iterable[TenantRequest]],
        faults: Optional[FaultInjector] = None,
    ) -> ServeReport:
        """Serve the whole stream; returns the deterministic report.

        This is the fast path: in solo-controller mode it engages the
        delta commit plane (direct switch-state moves, count-twin
        allocator, free-port heap, fragment-cached telemetry digests,
        O(1) recovery) -- bit-identical to :meth:`run_reference`, which
        the property tests in ``tests/serve/test_fastpath.py`` pin over
        arbitrary fault timelines.  Replicated configs always use the
        journaled plane.  ``requests`` may be any iterable in arrival
        order (e.g. :meth:`~repro.serve.workload.ServeWorkload.stream`);
        nothing is pre-materialized.
        """
        self._fast = self.replication is None
        if self._fast:
            self.allocator = _CubeLedger(self.config.allocator_cubes)
            self._digest_cache = _DigestCache(self.manager)
            # range() is ascending, hence already a valid min-heap.
            self._free_ports = list(range(self.config.slice_radix))
        return self._execute(requests, faults)

    def run_reference(
        self,
        requests: Union[Sequence[TenantRequest], Iterable[TenantRequest]],
        faults: Optional[FaultInjector] = None,
    ) -> ServeReport:
        """The journaled oracle plane (the pre-fast-path ``run``).

        Every mutation goes through the DurableController's WAL,
        recovery replays the journal, telemetry hashes the full fabric
        -- slow, but independently derived.  The fast path is pinned
        against this, digest for digest.
        """
        self._fast = False
        return self._execute(requests, faults)

    def _execute(
        self,
        requests: Union[Sequence[TenantRequest], Iterable[TenantRequest]],
        faults: Optional[FaultInjector] = None,
    ) -> ServeReport:
        if faults is not None:
            self.attach_faults(faults)

        def advance(t: float) -> None:
            if faults is not None:
                faults.advance_to(t)

        INF = math.inf
        queue = self.queue
        maintenance_interval_s = self.config.maintenance_interval_s
        length = len(requests) if hasattr(requests, "__len__") else -1
        stream = iter(requests)
        next_request = next(stream, None)
        with self.obs.tracer.span("serve.run", requests=length):
            now = 0.0
            server_free = 0.0
            next_maintenance = maintenance_interval_s
            # The event calendar, as scalars.  Four candidate events --
            # arrival (0), batch flush (1), maintenance (2), serve (3)
            # -- ordered by (time, index); absent events sit at +inf and
            # each branch invalidates only the candidates it moved.
            while next_request is not None or len(queue) or self._batch:
                arrival_t = next_request.arrival_s if next_request is not None else INF
                when = arrival_t
                what = 0
                if self._batch and self._batch_due_s < when:
                    when = self._batch_due_s
                    what = 1
                if len(queue):
                    serve_t = server_free if server_free > now else now
                    if serve_t < when:
                        when = serve_t
                        what = 3
                # Maintenance joins the calendar only once due (<= the
                # earliest other event) and loses (time, index) ties to
                # arrivals and flushes but beats serves.
                if next_maintenance <= when and (
                    next_maintenance < when or what == 3
                ):
                    when = next_maintenance
                    what = 2
                if when > now:
                    now = when
                advance(when)
                if what == 0:
                    request = next_request
                    next_request = next(stream, None)
                    self._offered += 1
                    self._sink.offered(request)
                    ok, reason = self.admission.admit(request.tenant, when)
                    if not ok:
                        self._record(request, Outcome.REJECTED, when, detail=reason)
                    else:
                        shed = queue.push(request, when)
                        if shed is not None:
                            self._sink.shed(shed)
                            self._record(
                                shed.victim, Outcome.SHED, when,
                                detail=f"displaced-by:{shed.displaced_by}",
                            )
                    self._observe_pressure(when)
                elif what == 1:
                    start = max(when, server_free)
                    advance(start)
                    server_free = self._flush_batch(start)
                elif what == 2:
                    next_maintenance += maintenance_interval_s
                    if self.replication is not None:
                        # Maintenance in replicated mode is the lease
                        # heartbeat: renew + catch stragglers up.
                        if self.brownout.defer_maintenance or not self.replication.heartbeat(when):
                            self._maintenance_deferred += 1
                            self._maint_deferred_counter.inc()
                        else:
                            self._maintenance_runs += 1
                            self._maint_runs_counter.inc()
                            server_free = (
                                max(when, server_free)
                                + self.config.maintenance_ms / 1e3
                            )
                    elif self.brownout.defer_maintenance or self._controller_down:
                        self._maintenance_deferred += 1
                        self._maint_deferred_counter.inc()
                    else:
                        if not self._fast:
                            # The checkpoint compacts the WAL -- state
                            # the fast plane neither writes nor reads.
                            assert self.controller is not None
                            self.controller.checkpoint()
                        self._maintenance_runs += 1
                        self._maint_runs_counter.inc()
                        server_free = (
                            max(when, server_free) + self.config.maintenance_ms / 1e3
                        )
                else:
                    start = max(when, server_free)
                    advance(start)
                    request = queue.pop()
                    if start > request.deadline_s:
                        self._record(
                            request, Outcome.TIMEOUT, start,
                            detail="expired-in-queue",
                        )
                        server_free = start
                    else:
                        server_free = self._dispatch(request, start)
                    self._observe_pressure(server_free)

            # The service was occupied until server_free: deliver every
            # fault (and recovery) that fired while it was still busy,
            # so a clear scheduled during the final drain is not lost.
            advance(max(now, server_free))
            if self.replication is not None:
                self.replication.finalize_outage(max(now, server_free))

            if self._sink.total_recorded != self._offered:
                raise ServeError(
                    f"partition violated: {self._offered} offered, "
                    f"{self._sink.total_recorded} terminal outcomes"
                )
            final = self._sink.finalize()
            if isinstance(final, StreamAggregates):
                records: List[RequestRecord] = []
                shed_records: List[ShedRecord] = []
                aggregates: Optional[StreamAggregates] = final
            else:
                records = final
                shed_records = list(self._sink.shed_records)
                aggregates = None
            report = ServeReport(
                config=self.config,
                records=records,
                shed_records=shed_records,
                aggregates=aggregates,
                commit_log=list(self._commit_log),
                offered=self._offered,
                downstream_attempts=self._downstream_attempts,
                deposits=self.budget.deposits,
                retries_granted=self.budget.retries_granted,
                retries_denied=self.budget.retries_denied,
                breaker_trips=self.breaker.trips,
                breaker_fast_fails=self._breaker_fast_fails,
                brownout_transitions=self.brownout.transitions,
                maintenance_runs=self._maintenance_runs,
                maintenance_deferred=self._maintenance_deferred,
                batches_flushed=self._batches_flushed,
                telemetry_cache_hits=self._cache_hits,
                telemetry_cache_misses=self._cache_misses,
                recoveries=self._recoveries,
                state_digest=self.manager.state_digest(),
                faults_digest=(
                    faults.delivered_digest() if faults is not None else ""
                ),
                failovers=self._failovers,
                elections=(
                    self.replication.elections if self.replication is not None else 0
                ),
                fencing_rejections=(
                    self.replication.fencing_rejections
                    if self.replication is not None
                    else 0
                ),
                committed_ops_lost=(
                    self.replication.committed_ops_lost()
                    if self.replication is not None
                    else 0
                ),
                failover_durations_s=(
                    tuple(self.replication.failover_durations_s)
                    if self.replication is not None
                    else ()
                ),
                failover_unavailable_s=(
                    self.replication.unavailable_s
                    if self.replication is not None
                    else 0.0
                ),
            )
            self.obs.metrics.gauge("serve.offered").set(float(report.offered))
            self.obs.metrics.gauge("serve.admitted").set(float(report.admitted))
        return report


def replay_committed(config: ServeConfig, commit_log: Sequence[CommitEntry]) -> str:
    """Serially replay the commit log against a fresh manager.

    Returns the resulting state digest, which must equal the live run's
    ``state_digest`` -- the acceptance bar for "no silent drops, no
    divergence".  Slice ports are re-derived from replayed state and
    checked against the recorded port, so a drifted port chooser is an
    explicit :class:`~repro.core.errors.ServeError`, not a silently
    different-but-valid fabric.
    """
    manager = build_serve_manager(config)
    for entry in commit_log:
        if entry.op == "retarget":
            ocs_index, north, south = entry.ints
            state = manager.switch(OcsId(ocs_index)).state
            if state.south_of(north) != south:
                if state.south_of(north) is not None:
                    state.disconnect(north)
                other = state.north_of(south)
                if other is not None:
                    state.disconnect(other)
                state.connect(north, south)
        elif entry.op == "slice-alloc":
            (port,) = entry.ints
            state = manager.switch(config.slice_ocs).state
            expected = next(
                (
                    p
                    for p in range(config.slice_radix)
                    if state.south_of(p) is None and state.north_of(p) is None
                ),
                None,
            )
            if expected != port:
                raise ServeError(
                    f"replay diverged: {entry.request_id} committed port {port} "
                    f"but replay would choose {expected}"
                )
            manager.establish(
                LinkId(f"sl-{entry.request_id}"), config.slice_ocs, port, port
            )
        elif entry.op == "slice-release":
            manager.teardown(LinkId(f"sl-{entry.ref}"))
        else:
            raise ServeError(f"unknown commit-log op {entry.op!r}")
    return manager.state_digest()
