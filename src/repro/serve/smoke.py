"""CI gate for the serving layer: run a seeded drill, check its SLOs
against the committed thresholds, export artifacts.

``python -m repro.serve.smoke --check --out serve_requests.jsonl``
runs the overload smoke profile (1.5k primaries at 3x admission
capacity with a controller-crash + RPC-timeout storm);
``--profile failover`` runs the replicated-control-plane drill instead
(a 3-replica group under a rolling crash/partition/clock-skew storm,
gated on ``failover_p99_s``, ``committed_ops_lost`` and availability).
Both print the summary, write the per-request outcome log as JSONL,
and exit non-zero when an SLO regresses or determinism breaks (the
drill is run twice and the outcome digests must match byte for byte).

``--tenants`` scales the tenant population toward the ROADMAP's
thousands-of-tenants target; the default leaves the pinned profile
untouched.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.serve.drill import (
    drill_slos,
    failover_slos,
    report_jsonl_lines,
    run_failover_drill,
    run_serve_drill,
)
from repro.tools.noc import DEFAULT_THRESHOLDS, check_slos


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke", description=__doc__
    )
    parser.add_argument("--seed", type=int, default=0, help="drill seed")
    parser.add_argument("--full", action="store_true",
                        help="full profile (100k primaries) instead of smoke")
    parser.add_argument("--profile", choices=("overload", "failover"),
                        default="overload",
                        help="overload = PR-6 burst drill (default); "
                             "failover = replicated-controller partition storm")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant population override (default: pinned profile)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on SLO regression or nondeterminism")
    parser.add_argument("--thresholds", type=Path, default=DEFAULT_THRESHOLDS,
                        help="SLO thresholds JSON")
    parser.add_argument("--out", type=Path, default=None,
                        help="write per-request outcomes as JSONL")
    parser.add_argument("--summary-out", type=Path, default=None,
                        help="write the run summary as JSON")
    args = parser.parse_args(argv)

    smoke = not args.full
    if args.profile == "failover":
        def run():
            return run_failover_drill(
                seed=args.seed, smoke=smoke, num_tenants=args.tenants
            )
    else:
        def run():
            return run_serve_drill(
                seed=args.seed, smoke=smoke, num_tenants=args.tenants
            )

    result = run()
    summary: Dict[str, object] = result["summary"]

    deterministic = True
    if smoke:
        # Cheap enough to prove, so prove it: same seed, same bytes.
        second = run()["summary"]
        deterministic = second == summary
    summary["deterministic"] = deterministic

    thresholds: Dict[str, float] = {}
    if args.thresholds.exists():
        thresholds = json.loads(args.thresholds.read_text())
    if args.profile == "failover":
        gate = {
            k: v
            for k, v in thresholds.items()
            if k.startswith("failover_") or k == "committed_ops_lost"
        }
        slo_rows = check_slos(failover_slos(summary), gate)
    else:
        gate = {k: v for k, v in thresholds.items() if k.startswith("serve_")}
        slo_rows = check_slos(drill_slos(summary), gate)

    if args.out is not None:
        args.out.write_text("\n".join(report_jsonl_lines(result["report"])) + "\n")
    if args.summary_out is not None:
        args.summary_out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    print(json.dumps(summary, indent=2, sort_keys=True))
    for name, value, limit, ok in slo_rows:
        print(f"{name}: {value:.4f} (max {limit:.4f}) "
              f"{'ok' if ok else 'REGRESSED'}", file=sys.stderr)

    failed = not all(ok for *_, ok in slo_rows)
    if not deterministic:
        print("NONDETERMINISM: same seed produced different outcomes",
              file=sys.stderr)
    if args.check and (failed or not deterministic):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
