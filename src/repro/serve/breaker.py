"""A circuit breaker around the durable controller.

When the controller is down (``CONTROLLER_CRASH``) or its RPCs are
timing out in a burst (``RPC_TIMEOUT``), continuing to launch attempts
only burns retry budget and stretches the queue.  The breaker converts
a failure burst into *fast failures*:

- **closed**: attempts flow; ``failure_threshold`` consecutive failures
  trip the breaker;
- **open**: every attempt is refused instantly (no downstream load, no
  budget spend) until ``cooldown_s`` of simulation time has passed;
- **half-open**: exactly one probe attempt is allowed through; success
  re-closes the breaker, failure re-opens it for another cooldown.

All transitions are driven by the simulation clock passed into each
call, so the breaker's trajectory is a pure function of the
success/failure timeline -- deterministic under a fixed seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    failure_threshold: int = 5
    cooldown_s: float = 1.0
    obs: Optional[Observability] = field(default=None, repr=False)
    #: Invoked with ``now_s`` on every open edge.  The replicated serve
    #: layer hangs leader failover here: instead of cooling down against
    #: a dead primary, trip -> elect a standby -> :meth:`reset`.
    on_trip: Optional[Callable[[float], None]] = field(default=None, repr=False)
    _state: BreakerState = field(init=False, default=BreakerState.CLOSED)
    _consecutive_failures: int = field(init=False, default=0)
    _open_until_s: float = field(init=False, default=0.0)
    _probe_in_flight: bool = field(init=False, default=False)
    _trips: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if self.cooldown_s <= 0:
            raise ConfigurationError("cooldown must be positive")
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]

    def _transition(self, state: BreakerState) -> None:
        if state is self._state:
            return
        self._state = state
        self.obs.metrics.counter("serve.breaker.transitions", to=state.value).inc()

    def state(self, now_s: float) -> BreakerState:
        """Current state, resolving an elapsed cooldown to half-open."""
        if self._state is BreakerState.OPEN and now_s >= self._open_until_s:
            self._transition(BreakerState.HALF_OPEN)
            self._probe_in_flight = False
        return self._state

    def allow(self, now_s: float) -> bool:
        """May an attempt be launched at ``now_s``?

        Open: no.  Half-open: only the first caller (the probe).
        Closed: yes.
        """
        state = self.state(now_s)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self, now_s: float) -> None:
        """An attempt completed: reset failures, close from half-open."""
        del now_s
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self._transition(BreakerState.CLOSED)

    def record_failure(self, now_s: float) -> None:
        """An attempt failed: count toward the trip, or re-open a probe."""
        if self._state is BreakerState.HALF_OPEN:
            self._trip(now_s)
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip(now_s)

    def _trip(self, now_s: float) -> None:
        self._open_until_s = now_s + self.cooldown_s
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self._trips += 1
        self._transition(BreakerState.OPEN)
        if self.on_trip is not None:
            self.on_trip(now_s)

    def reset(self) -> None:
        """Force-close after the failure cause was repaired out-of-band
        (e.g. a leader failover replaced the dead downstream): pending
        cooldown and failure counts are discarded."""
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self._open_until_s = 0.0
        self._transition(BreakerState.CLOSED)

    @property
    def trips(self) -> int:
        return self._trips
