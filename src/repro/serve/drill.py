"""The overload-burst serving drill: 3x admission capacity plus a
controller-crash / RPC-timeout fault storm, end to end.

One call builds the workload (seeded, open-loop), the fault timeline,
and a :class:`~repro.serve.service.FabricService`, runs the stream, and
verifies the run's two hard invariants before returning:

- **partition**: shed + admitted + rejected exactly covers offered load
  (the service itself raises :class:`~repro.core.errors.ServeError` on
  a double or missing terminal outcome);
- **replay equivalence**: serially replaying the commit log against a
  fresh manager reproduces the live ``state_digest`` byte for byte.

Same seed => identical per-request outcomes (``outcomes_digest``),
identical commit log, identical digests.  The smoke profile is the CI
shape; the full profile is the one the NOC report quotes.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.errors import ConfigurationError, ServeError
from repro.faults.events import (
    FaultKind,
    controller_target,
    network_target,
    partition_groups_param,
)
from repro.faults.injector import FaultInjector
from repro.obs import NULL_OBS, Observability
from repro.serve.requests import Outcome
from repro.serve.service import FabricService, ServeConfig, replay_committed
from repro.serve.sink import StreamingRecordSink
from repro.serve.workload import ServeWorkload


def drill_config(
    seed: int = 0,
    num_tenants: Optional[int] = None,
    pinned_brownout: Optional[int] = None,
) -> ServeConfig:
    """The drill's :class:`ServeConfig` for a tenant population.

    The traffic-OCS count auto-scales (one OCS per 128 tenants, floor 4)
    so thousands-of-tenants profiles keep a physical per-switch radix;
    populations up to 512 produce exactly the pinned PR-6 config.
    """
    if num_tenants is None:
        return ServeConfig(seed=seed, pinned_brownout=pinned_brownout)
    return ServeConfig(
        seed=seed,
        pinned_brownout=pinned_brownout,
        num_tenants=num_tenants,
        num_traffic_ocses=max(4, math.ceil(num_tenants / 128)),
    )


def build_fault_timeline(
    injector: FaultInjector, horizon_s: float
) -> None:
    """Deterministic controller-crash + RPC-timeout storm.

    A crash outage and two timeout bursts recur every ~2 simulated
    seconds, scaled to the drill horizon, so every profile crosses
    breaker trips, brownout entry, recovery, and the calm after.
    """
    period_s = 2.0
    cycle = 0
    t = 0.35
    while t + 0.6 < horizon_s:
        injector.schedule(
            t,
            FaultKind.RPC_TIMEOUT,
            controller_target(),
            severity=6.0,
            clear_after_s=0.25,
        )
        # The crash clears while arrivals are still flowing (smoke's
        # horizon is ~1.25 s), so every profile -- including one whose
        # brownout coalescing drains the backlog quickly -- observes the
        # recovery and the calm after it.
        injector.schedule(
            t + 0.6,
            FaultKind.CONTROLLER_CRASH,
            controller_target(),
            clear_after_s=0.25,
        )
        if cycle % 2 == 1:
            injector.schedule(
                t + 1.3,
                FaultKind.RPC_TIMEOUT,
                controller_target(),
                severity=10.0,
                clear_after_s=0.2,
            )
        t += period_s
        cycle += 1


def run_serve_drill(
    seed: int = 0,
    smoke: bool = True,
    obs: Optional[Observability] = None,
    pinned_brownout: Optional[int] = None,
    num_primaries: Optional[int] = None,
    num_tenants: Optional[int] = None,
    streaming: bool = False,
) -> Dict[str, object]:
    """Run the overload drill; returns the JSON-ready result dict.

    ``pinned_brownout`` freezes the brownout ladder (perf comparisons);
    leave ``None`` for the adaptive drill.  ``num_primaries`` overrides
    the profile's stream length (the NOC drill runs a short one).
    ``num_tenants`` scales the tenant population toward the ROADMAP's
    thousands-of-tenants target; ``None`` keeps the pinned profile.
    ``streaming`` feeds the service a lazy request stream through a
    :class:`~repro.serve.sink.StreamingRecordSink`, so memory stays flat
    at any stream length -- the returned report then carries
    ``aggregates`` instead of per-request records, and the summary gains
    ``peak_pending`` (the reorder-window high-water mark).
    """
    if obs is None:
        obs = NULL_OBS
    if num_primaries is None:
        num_primaries = 1_500 if smoke else 100_000
    config = drill_config(
        seed=seed, num_tenants=num_tenants, pinned_brownout=pinned_brownout
    )
    workload = ServeWorkload(seed=seed, rate_per_s=1_200.0, num_tenants=config.num_tenants)
    with obs.tracer.span("serve.drill", smoke=smoke, seed=seed):
        if streaming:
            # Vectorized draws, chunked materialization: same requests as
            # ``generate`` (pinned in tests/serve/test_workload.py), with
            # neither the scalar-draw cost nor a full-stream allocation.
            cols = workload.columns(num_primaries)
            horizon_s = float(cols["t"][-1])
            requests = workload.iter_from_columns(cols)
            sink = StreamingRecordSink(seed=seed)
        else:
            requests = workload.generate(num_primaries)
            horizon_s = requests[-1].arrival_s
            sink = None
        injector = FaultInjector(seed=seed, obs=obs)
        build_fault_timeline(injector, horizon_s)
        service = FabricService(config, obs=obs, sink=sink)
        report = service.run(requests, faults=injector)

        replay_digest = replay_committed(config, report.commit_log)
        if replay_digest != report.state_digest:
            raise ServeError(
                "replay divergence: live state "
                f"{report.state_digest[:12]} != replayed {replay_digest[:12]}"
            )

    summary = report.summary()
    summary["replay_digest"] = replay_digest
    summary["offered_rate_per_s"] = round(report.offered / horizon_s, 3)
    summary["horizon_s"] = round(horizon_s, 6)
    summary["seed"] = seed
    summary["smoke"] = smoke
    if report.aggregates is not None:
        summary["peak_pending"] = report.aggregates.peak_pending
    return {
        "summary": summary,
        "report": report,
    }


# --------------------------------------------------------------------- #
# Sharded execution: tenant cells over SweepEngine(ship="shm")
# --------------------------------------------------------------------- #


def shard_cell_config(config: ServeConfig, num_cells: int) -> ServeConfig:
    """One cell's share of a drill config.

    Global admission rate/burst and queue capacity divide by the cell
    count (so ``num_cells`` cells jointly approximate one unsharded
    service's capacity); the fabric shape and per-tenant knobs stay
    whole, because every cell runs its own full fabric over a disjoint
    tenant subset.
    """
    if num_cells < 1:
        raise ConfigurationError("need at least one cell")
    if num_cells == 1:
        return config
    return replace(
        config,
        global_rate_per_s=config.global_rate_per_s / num_cells,
        global_burst=max(1.0, config.global_burst / num_cells),
        queue_capacity=max(4, config.queue_capacity // num_cells),
    )


def _run_drill_cell(task: Dict[str, object], seed_seq=None) -> Dict[str, object]:
    """SweepEngine worker: one tenant cell of the sharded drill.

    The task carries the shm-shipped workload columns; the worker
    selects the rows whose primary tenant hashes into its cell, rebuilds
    the requests (global seq numbers intact), runs the fast service path
    through a streaming sink, and proves its own commit log replays to
    the live state digest before returning the per-cell roll-up.
    """
    cell = int(task["cell"])
    num_cells = int(task["num_cells"])
    workload: ServeWorkload = task["workload"]
    config: ServeConfig = task["config"]
    cols: Dict[str, np.ndarray] = task["cols"]
    horizon_s = float(task["horizon_s"])

    sink_seed = cell
    if seed_seq is not None:
        # Positional seed splitting: the engine hands cell i the i-th
        # child of the root SeedSequence, so the cell's derived seeds
        # depend only on (root seed, cell index) -- never worker count.
        lo, hi = (int(x) for x in seed_seq.generate_state(2))
        config = replace(config, seed=lo % (2**31))
        sink_seed = hi % (2**31)

    order = cols["order"]
    tenant_of_entry = cols["tenant_idx"][order >> 1]
    rows = np.nonzero(tenant_of_entry % num_cells == cell)[0]
    requests = workload.requests_from_columns(cols, rows)

    injector = FaultInjector(seed=config.seed)
    build_fault_timeline(injector, horizon_s)
    sink = StreamingRecordSink(seed=sink_seed)
    service = FabricService(config, sink=sink)
    report = service.run(requests, faults=injector)

    replay_digest = replay_committed(config, report.commit_log)
    if replay_digest != report.state_digest:
        raise ServeError(
            f"cell {cell}: replay divergence: live state "
            f"{report.state_digest[:12]} != replayed {replay_digest[:12]}"
        )
    aggregates = report.aggregates
    assert aggregates is not None
    return {
        "cell": cell,
        "offered": report.offered,
        "outcomes": {
            outcome.value: count
            for outcome, count in sorted(
                aggregates.outcome_counts.items(), key=lambda kv: kv[0].value
            )
        },
        "admitted": report.admitted,
        "commits": len(report.commit_log),
        "outcomes_digest": aggregates.outcomes_digest,
        "state_digest": report.state_digest,
        "replay_digest": replay_digest,
        "peak_pending": aggregates.peak_pending,
        "p99_ms": report.latency_percentile_ms(0.99),
        "downstream_attempts": report.downstream_attempts,
        "deposits": report.deposits,
        "recoveries": report.recoveries,
    }


def merge_cell_results(cells: List[Dict[str, object]]) -> Dict[str, object]:
    """Deterministic merge of per-cell drill results.

    Counts sum; the sharded digest hashes every cell's outcome and state
    digest in cell order, so it is invariant under worker count and
    chunking (cells are a property of the drill profile, not of the
    execution) and changes iff any cell's behavior changes.
    """
    ordered = sorted(cells, key=lambda c: int(c["cell"]))  # type: ignore[arg-type]
    digest = hashlib.sha256()
    outcomes: Dict[str, int] = {}
    for result in ordered:
        digest.update(
            f"{result['cell']}:{result['outcomes_digest']}:"
            f"{result['state_digest']}\n".encode("utf-8")
        )
        for outcome, count in result["outcomes"].items():  # type: ignore[union-attr]
            outcomes[outcome] = outcomes.get(outcome, 0) + int(count)
    deposits = sum(int(c["deposits"]) for c in ordered)
    return {
        "num_cells": len(ordered),
        "offered": sum(int(c["offered"]) for c in ordered),
        "outcomes": outcomes,
        "admitted": sum(int(c["admitted"]) for c in ordered),
        "commits": sum(int(c["commits"]) for c in ordered),
        "serve_p99_ms": round(max(float(c["p99_ms"]) for c in ordered), 6),
        "serve_retry_amplification": round(
            sum(int(c["downstream_attempts"]) for c in ordered)
            / max(1, deposits),
            6,
        ),
        "peak_pending": max(int(c["peak_pending"]) for c in ordered),
        "sharded_digest": digest.hexdigest(),
        "cell_digests": [str(c["outcomes_digest"]) for c in ordered],
    }


def run_serve_drill_sharded(
    seed: int = 0,
    smoke: bool = True,
    obs: Optional[Observability] = None,
    num_primaries: Optional[int] = None,
    num_tenants: Optional[int] = None,
    num_cells: int = 8,
    engine=None,
) -> Dict[str, object]:
    """The overload drill partitioned into tenant cells over a pool.

    Tenants hash into ``num_cells`` fixed cells (``tenant_idx %
    num_cells``); each cell runs a full fast-path service over its
    requests with a cell-scaled config (see :func:`shard_cell_config`)
    on a :class:`~repro.parallel.SweepEngine` worker.  The workload is
    generated once as flat columns and shm-shipped, so a million-request
    stream crosses the process boundary as a handful of arrays, once.

    Determinism: cells are a property of the profile, not the execution
    -- per-cell seeds come from positional seed splitting over the fixed
    cell index, so the merged summary (and its ``sharded_digest``) is
    byte-identical for any worker count, chunking, or ship mode.
    """
    if obs is None:
        obs = NULL_OBS
    if num_primaries is None:
        num_primaries = 10_000 if smoke else 1_000_000
    if num_tenants is None:
        num_tenants = 2_048
    if num_cells < 1:
        raise ConfigurationError("need at least one cell")
    config = drill_config(seed=seed, num_tenants=num_tenants)
    cell_config = shard_cell_config(config, num_cells)
    workload = ServeWorkload(
        seed=seed, rate_per_s=1_200.0, num_tenants=num_tenants
    )
    if engine is None:
        from repro.parallel import SweepEngine

        engine = SweepEngine(ship="shm", obs=obs)
    with obs.tracer.span(
        "serve.drill_sharded", smoke=smoke, seed=seed, cells=num_cells
    ):
        cols = workload.columns(num_primaries)
        horizon_s = float(cols["t"][-1])
        tasks = [
            {
                "cell": cell,
                "num_cells": num_cells,
                "workload": workload,
                "config": cell_config,
                "cols": cols,
                "horizon_s": horizon_s,
            }
            for cell in range(num_cells)
        ]
        cells = engine.pmap(_run_drill_cell, tasks, seed=seed)
    summary = merge_cell_results(cells)
    summary["offered_rate_per_s"] = round(summary["offered"] / horizon_s, 3)
    summary["horizon_s"] = round(horizon_s, 6)
    summary["num_tenants"] = num_tenants
    summary["seed"] = seed
    summary["smoke"] = smoke
    return {
        "summary": summary,
        "cells": cells,
    }


def build_failover_timeline(
    injector: FaultInjector, horizon_s: float, num_replicas: int = 3
) -> None:
    """A rolling partition storm over the replica group.

    Each ~1.2 s cycle kills the replica most recently likely to lead,
    splits the network so a different replica is marooned with a
    minority, and skews a third replica's clock -- the triple the
    fencing/lease machinery exists to survive.  All deterministic.
    """
    period_s = 1.2
    cycle = 0
    t = 0.2
    while t + 0.5 < horizon_s:
        victim = cycle % num_replicas
        marooned = (cycle + 1) % num_replicas
        skewed = (cycle + 2) % num_replicas
        injector.schedule(
            t,
            FaultKind.CONTROLLER_CRASH,
            controller_target(victim),
            clear_after_s=0.5,
        )
        rest = [i for i in range(num_replicas) if i != marooned]
        injector.schedule(
            t + 0.3,
            FaultKind.NETWORK_PARTITION,
            network_target(),
            params=[partition_groups_param([[marooned], rest])],
            clear_after_s=0.4,
        )
        injector.schedule(
            t + 0.5,
            FaultKind.CLOCK_SKEW,
            controller_target(skewed),
            severity=2.0 if cycle % 2 == 0 else -2.0,
            clear_after_s=0.6,
        )
        if cycle % 2 == 1:
            injector.schedule(
                t + 0.7,
                FaultKind.RPC_TIMEOUT,
                controller_target(),
                severity=4.0,
                clear_after_s=0.2,
            )
        t += period_s
        cycle += 1


def run_failover_drill(
    seed: int = 0,
    smoke: bool = True,
    obs: Optional[Observability] = None,
    num_primaries: Optional[int] = None,
    num_tenants: Optional[int] = None,
    num_replicas: int = 3,
) -> Dict[str, object]:
    """The partition-storm failover drill over a replicated controller.

    Same workload shape as the overload drill, but the fault timeline is
    a rolling crash/partition/skew storm against a ``num_replicas``
    controller group, and the acceptance bar is the HA story: the
    serving layer keeps admitting through leader handoffs, no
    client-acknowledged commit is ever lost, and the surviving leader's
    state equals a serial replay byte-for-byte.
    """
    if obs is None:
        obs = NULL_OBS
    if num_primaries is None:
        num_primaries = 1_500 if smoke else 100_000
    config = ServeConfig(
        seed=seed,
        num_controller_replicas=num_replicas,
        replica_lease_s=0.15,
        **({} if num_tenants is None else {"num_tenants": num_tenants}),
    )
    workload = ServeWorkload(
        seed=seed, rate_per_s=1_200.0, num_tenants=config.num_tenants
    )
    with obs.tracer.span("serve.failover_drill", smoke=smoke, seed=seed):
        requests = workload.generate(num_primaries)
        horizon_s = requests[-1].arrival_s
        injector = FaultInjector(seed=seed, obs=obs)
        build_failover_timeline(injector, horizon_s, num_replicas)
        service = FabricService(config, obs=obs)
        report = service.run(requests, faults=injector)

        replay_digest = replay_committed(config, report.commit_log)
        if replay_digest != report.state_digest:
            raise ServeError(
                "replay divergence: live state "
                f"{report.state_digest[:12]} != replayed {replay_digest[:12]}"
            )
        group = service.replication
        assert group is not None
        if group.state_digest() != group.replay_digest():
            raise ServeError("replica log replay diverged from leader state")
        if report.committed_ops_lost:
            raise ServeError(
                f"{report.committed_ops_lost} client-acked commits lost"
            )

    summary = report.summary()
    summary["replay_digest"] = replay_digest
    summary["offered_rate_per_s"] = round(report.offered / horizon_s, 3)
    summary["horizon_s"] = round(horizon_s, 6)
    summary["seed"] = seed
    summary["smoke"] = smoke
    summary["num_replicas"] = num_replicas
    unavailability = report.failover_unavailable_s / horizon_s
    summary["failover_unavailability"] = round(unavailability, 6)
    summary["availability"] = round(1.0 - unavailability, 6)
    # Publish the NOC-facing gauges on the shared registry.
    obs.metrics.gauge("serve.failover.committed_ops_lost").set(
        float(report.committed_ops_lost)
    )
    obs.metrics.gauge("serve.failover.unavailability").set(unavailability)
    obs.metrics.gauge("serve.failover.p99_s").set(
        report.failover_percentile_s(0.99)
    )
    return {
        "summary": summary,
        "report": report,
    }


def report_jsonl_lines(report) -> List[str]:
    """Per-request JSONL lines (the CI artifact)."""
    import json

    lines = []
    for record in report.records:
        request = record.request
        lines.append(
            json.dumps(
                {
                    "seq": request.seq,
                    "id": request.request_id,
                    "tenant": request.tenant,
                    "kind": request.kind.value,
                    "arrival_s": round(request.arrival_s, 9),
                    "deadline_s": round(request.deadline_s, 9),
                    "outcome": record.outcome.value,
                    "finish_s": round(record.finish_s, 9),
                    "latency_ms": round(record.latency_ms, 6),
                    "attempts": record.attempts,
                    "detail": record.detail,
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return lines


def drill_slos(summary: Dict[str, object]) -> Dict[str, float]:
    """The serve SLOs in the shape the NOC / CI gate consumes."""
    return {
        "serve_p99_ms": float(summary["serve_p99_ms"]),
        "serve_shed_rate": float(summary["serve_shed_rate"]),
        "serve_retry_amplification": float(summary["serve_retry_amplification"]),
    }


def failover_slos(summary: Dict[str, object]) -> Dict[str, float]:
    """The failover-drill SLOs (``check_slos`` bounds are upper bounds,
    so availability is gated as unavailability)."""
    return {
        "failover_p99_s": float(summary["failover_p99_s"]),
        "committed_ops_lost": float(summary["committed_ops_lost"]),
        "failover_unavailability": float(summary["failover_unavailability"]),
    }


__all__ = [
    "build_fault_timeline",
    "build_failover_timeline",
    "drill_config",
    "merge_cell_results",
    "run_serve_drill",
    "run_serve_drill_sharded",
    "run_failover_drill",
    "report_jsonl_lines",
    "shard_cell_config",
    "drill_slos",
    "failover_slos",
    "Outcome",
]
