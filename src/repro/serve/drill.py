"""The overload-burst serving drill: 3x admission capacity plus a
controller-crash / RPC-timeout fault storm, end to end.

One call builds the workload (seeded, open-loop), the fault timeline,
and a :class:`~repro.serve.service.FabricService`, runs the stream, and
verifies the run's two hard invariants before returning:

- **partition**: shed + admitted + rejected exactly covers offered load
  (the service itself raises :class:`~repro.core.errors.ServeError` on
  a double or missing terminal outcome);
- **replay equivalence**: serially replaying the commit log against a
  fresh manager reproduces the live ``state_digest`` byte for byte.

Same seed => identical per-request outcomes (``outcomes_digest``),
identical commit log, identical digests.  The smoke profile is the CI
shape; the full profile is the one the NOC report quotes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import ServeError
from repro.faults.events import (
    FaultKind,
    controller_target,
    network_target,
    partition_groups_param,
)
from repro.faults.injector import FaultInjector
from repro.obs import NULL_OBS, Observability
from repro.serve.requests import Outcome
from repro.serve.service import FabricService, ServeConfig, replay_committed
from repro.serve.workload import ServeWorkload


def build_fault_timeline(
    injector: FaultInjector, horizon_s: float
) -> None:
    """Deterministic controller-crash + RPC-timeout storm.

    A crash outage and two timeout bursts recur every ~2 simulated
    seconds, scaled to the drill horizon, so every profile crosses
    breaker trips, brownout entry, recovery, and the calm after.
    """
    period_s = 2.0
    cycle = 0
    t = 0.35
    while t + 0.6 < horizon_s:
        injector.schedule(
            t,
            FaultKind.RPC_TIMEOUT,
            controller_target(),
            severity=6.0,
            clear_after_s=0.25,
        )
        # The crash clears while arrivals are still flowing (smoke's
        # horizon is ~1.25 s), so every profile -- including one whose
        # brownout coalescing drains the backlog quickly -- observes the
        # recovery and the calm after it.
        injector.schedule(
            t + 0.6,
            FaultKind.CONTROLLER_CRASH,
            controller_target(),
            clear_after_s=0.25,
        )
        if cycle % 2 == 1:
            injector.schedule(
                t + 1.3,
                FaultKind.RPC_TIMEOUT,
                controller_target(),
                severity=10.0,
                clear_after_s=0.2,
            )
        t += period_s
        cycle += 1


def run_serve_drill(
    seed: int = 0,
    smoke: bool = True,
    obs: Optional[Observability] = None,
    pinned_brownout: Optional[int] = None,
    num_primaries: Optional[int] = None,
    num_tenants: Optional[int] = None,
) -> Dict[str, object]:
    """Run the overload drill; returns the JSON-ready result dict.

    ``pinned_brownout`` freezes the brownout ladder (perf comparisons);
    leave ``None`` for the adaptive drill.  ``num_primaries`` overrides
    the profile's stream length (the NOC drill runs a short one).
    ``num_tenants`` scales the tenant population toward the ROADMAP's
    thousands-of-tenants target; ``None`` keeps the pinned profile.
    """
    if obs is None:
        obs = NULL_OBS
    if num_primaries is None:
        num_primaries = 1_500 if smoke else 100_000
    if num_tenants is None:
        config = ServeConfig(seed=seed, pinned_brownout=pinned_brownout)
    else:
        config = ServeConfig(
            seed=seed, pinned_brownout=pinned_brownout, num_tenants=num_tenants
        )
    workload = ServeWorkload(seed=seed, rate_per_s=1_200.0, num_tenants=config.num_tenants)
    with obs.tracer.span("serve.drill", smoke=smoke, seed=seed):
        requests = workload.generate(num_primaries)
        horizon_s = requests[-1].arrival_s
        injector = FaultInjector(seed=seed, obs=obs)
        build_fault_timeline(injector, horizon_s)
        service = FabricService(config, obs=obs)
        report = service.run(requests, faults=injector)

        replay_digest = replay_committed(config, report.commit_log)
        if replay_digest != report.state_digest:
            raise ServeError(
                "replay divergence: live state "
                f"{report.state_digest[:12]} != replayed {replay_digest[:12]}"
            )

    summary = report.summary()
    summary["replay_digest"] = replay_digest
    summary["offered_rate_per_s"] = round(report.offered / horizon_s, 3)
    summary["horizon_s"] = round(horizon_s, 6)
    summary["seed"] = seed
    summary["smoke"] = smoke
    return {
        "summary": summary,
        "report": report,
    }


def build_failover_timeline(
    injector: FaultInjector, horizon_s: float, num_replicas: int = 3
) -> None:
    """A rolling partition storm over the replica group.

    Each ~1.2 s cycle kills the replica most recently likely to lead,
    splits the network so a different replica is marooned with a
    minority, and skews a third replica's clock -- the triple the
    fencing/lease machinery exists to survive.  All deterministic.
    """
    period_s = 1.2
    cycle = 0
    t = 0.2
    while t + 0.5 < horizon_s:
        victim = cycle % num_replicas
        marooned = (cycle + 1) % num_replicas
        skewed = (cycle + 2) % num_replicas
        injector.schedule(
            t,
            FaultKind.CONTROLLER_CRASH,
            controller_target(victim),
            clear_after_s=0.5,
        )
        rest = [i for i in range(num_replicas) if i != marooned]
        injector.schedule(
            t + 0.3,
            FaultKind.NETWORK_PARTITION,
            network_target(),
            params=[partition_groups_param([[marooned], rest])],
            clear_after_s=0.4,
        )
        injector.schedule(
            t + 0.5,
            FaultKind.CLOCK_SKEW,
            controller_target(skewed),
            severity=2.0 if cycle % 2 == 0 else -2.0,
            clear_after_s=0.6,
        )
        if cycle % 2 == 1:
            injector.schedule(
                t + 0.7,
                FaultKind.RPC_TIMEOUT,
                controller_target(),
                severity=4.0,
                clear_after_s=0.2,
            )
        t += period_s
        cycle += 1


def run_failover_drill(
    seed: int = 0,
    smoke: bool = True,
    obs: Optional[Observability] = None,
    num_primaries: Optional[int] = None,
    num_tenants: Optional[int] = None,
    num_replicas: int = 3,
) -> Dict[str, object]:
    """The partition-storm failover drill over a replicated controller.

    Same workload shape as the overload drill, but the fault timeline is
    a rolling crash/partition/skew storm against a ``num_replicas``
    controller group, and the acceptance bar is the HA story: the
    serving layer keeps admitting through leader handoffs, no
    client-acknowledged commit is ever lost, and the surviving leader's
    state equals a serial replay byte-for-byte.
    """
    if obs is None:
        obs = NULL_OBS
    if num_primaries is None:
        num_primaries = 1_500 if smoke else 100_000
    config = ServeConfig(
        seed=seed,
        num_controller_replicas=num_replicas,
        replica_lease_s=0.15,
        **({} if num_tenants is None else {"num_tenants": num_tenants}),
    )
    workload = ServeWorkload(
        seed=seed, rate_per_s=1_200.0, num_tenants=config.num_tenants
    )
    with obs.tracer.span("serve.failover_drill", smoke=smoke, seed=seed):
        requests = workload.generate(num_primaries)
        horizon_s = requests[-1].arrival_s
        injector = FaultInjector(seed=seed, obs=obs)
        build_failover_timeline(injector, horizon_s, num_replicas)
        service = FabricService(config, obs=obs)
        report = service.run(requests, faults=injector)

        replay_digest = replay_committed(config, report.commit_log)
        if replay_digest != report.state_digest:
            raise ServeError(
                "replay divergence: live state "
                f"{report.state_digest[:12]} != replayed {replay_digest[:12]}"
            )
        group = service.replication
        assert group is not None
        if group.state_digest() != group.replay_digest():
            raise ServeError("replica log replay diverged from leader state")
        if report.committed_ops_lost:
            raise ServeError(
                f"{report.committed_ops_lost} client-acked commits lost"
            )

    summary = report.summary()
    summary["replay_digest"] = replay_digest
    summary["offered_rate_per_s"] = round(report.offered / horizon_s, 3)
    summary["horizon_s"] = round(horizon_s, 6)
    summary["seed"] = seed
    summary["smoke"] = smoke
    summary["num_replicas"] = num_replicas
    unavailability = report.failover_unavailable_s / horizon_s
    summary["failover_unavailability"] = round(unavailability, 6)
    summary["availability"] = round(1.0 - unavailability, 6)
    # Publish the NOC-facing gauges on the shared registry.
    obs.metrics.gauge("serve.failover.committed_ops_lost").set(
        float(report.committed_ops_lost)
    )
    obs.metrics.gauge("serve.failover.unavailability").set(unavailability)
    obs.metrics.gauge("serve.failover.p99_s").set(
        report.failover_percentile_s(0.99)
    )
    return {
        "summary": summary,
        "report": report,
    }


def report_jsonl_lines(report) -> List[str]:
    """Per-request JSONL lines (the CI artifact)."""
    import json

    lines = []
    for record in report.records:
        request = record.request
        lines.append(
            json.dumps(
                {
                    "seq": request.seq,
                    "id": request.request_id,
                    "tenant": request.tenant,
                    "kind": request.kind.value,
                    "arrival_s": round(request.arrival_s, 9),
                    "deadline_s": round(request.deadline_s, 9),
                    "outcome": record.outcome.value,
                    "finish_s": round(record.finish_s, 9),
                    "latency_ms": round(record.latency_ms, 6),
                    "attempts": record.attempts,
                    "detail": record.detail,
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return lines


def drill_slos(summary: Dict[str, object]) -> Dict[str, float]:
    """The serve SLOs in the shape the NOC / CI gate consumes."""
    return {
        "serve_p99_ms": float(summary["serve_p99_ms"]),
        "serve_shed_rate": float(summary["serve_shed_rate"]),
        "serve_retry_amplification": float(summary["serve_retry_amplification"]),
    }


def failover_slos(summary: Dict[str, object]) -> Dict[str, float]:
    """The failover-drill SLOs (``check_slos`` bounds are upper bounds,
    so availability is gated as unavailability)."""
    return {
        "failover_p99_s": float(summary["failover_p99_s"]),
        "committed_ops_lost": float(summary["committed_ops_lost"]),
        "failover_unavailability": float(summary["failover_unavailability"]),
    }


__all__ = [
    "build_fault_timeline",
    "build_failover_timeline",
    "run_serve_drill",
    "run_failover_drill",
    "report_jsonl_lines",
    "drill_slos",
    "failover_slos",
    "Outcome",
]
