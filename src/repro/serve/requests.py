"""The tenant request taxonomy of the fabric serving layer.

The paper's fabric is operated as a shared service: tenants allocate
slices (§4.2.4), re-stripe topology, push traffic-matrix updates
(§4.2.3), and query telemetry (§3.2.2) against one long-running control
plane.  Every interaction is expressed as a :class:`TenantRequest` so
the serving layer (:mod:`repro.serve.service`) can apply one admission,
queueing, deadline, and accounting discipline to all of them.

Every request ends in exactly one terminal :class:`Outcome`; the
partition invariant the property tests pin is::

    offered == rejected + shed + admitted
    admitted == ok + timeout + error

and :func:`outcomes_digest` hashes the full per-request outcome table so
two runs can be compared byte-for-byte (same seed => equal digests).
"""

from __future__ import annotations

import enum
import hashlib
import sys
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from repro.core.errors import ConfigurationError

ParamValue = Union[int, float, str, bool]


class RequestKind(enum.Enum):
    """What a tenant is asking the control plane to do."""

    #: Place a slice of ``cubes`` cubes and program its fabric circuit.
    SLICE_ALLOC = "slice-alloc"
    #: Release a previously allocated slice (by alloc request id).
    SLICE_RELEASE = "slice-release"
    #: Re-stripe the tenant's circuit through a dedicated transaction
    #: (never coalesced: topology changes are latency-sensitive).
    RECONFIGURE = "reconfigure"
    #: Traffic-matrix-driven circuit retarget; coalescable under
    #: brownout into one batched controller transaction.
    TRAFFIC_UPDATE = "traffic-update"
    #: Read-only fleet telemetry (state digest + circuit counts).
    TELEMETRY_QUERY = "telemetry-query"


#: Service classes: lower is more important.  Sheds take the highest
#: (class, seq) entry first, so telemetry is dropped before mutations.
PRIORITY: dict = {
    RequestKind.SLICE_ALLOC: 0,
    RequestKind.SLICE_RELEASE: 0,
    RequestKind.RECONFIGURE: 0,
    RequestKind.TRAFFIC_UPDATE: 1,
    RequestKind.TELEMETRY_QUERY: 2,
}

#: Kinds whose successful service mutates durable fabric state (and
#: therefore lands in the commit log used for replay verification).
MUTATING_KINDS = frozenset(
    {
        RequestKind.SLICE_ALLOC,
        RequestKind.SLICE_RELEASE,
        RequestKind.RECONFIGURE,
        RequestKind.TRAFFIC_UPDATE,
    }
)


class Outcome(enum.Enum):
    """The exactly-one terminal state of every offered request."""

    #: Served within deadline; mutations committed.
    OK = "ok"
    #: Refused at admission (token bucket); zero work performed.
    REJECTED = "rejected"
    #: Evicted from (or refused by) the bounded queue; reported, never
    #: silent.
    SHED = "shed"
    #: Admitted but the deadline expired before completion; any
    #: downstream mutation was *not* committed.
    TIMEOUT = "timeout"
    #: Admitted but service failed (retries exhausted, breaker open,
    #: no capacity); no mutation committed.
    ERROR = "error"


#: Outcomes that count as *admitted* (the request reached the queue and
#: was carried to a service verdict).
ADMITTED_OUTCOMES = frozenset({Outcome.OK, Outcome.TIMEOUT, Outcome.ERROR})

#: Interned taxonomy strings.  The serving loop renders millions of
#: canonical outcome lines; interning the per-enum fragments makes every
#: join a pointer copy and every label lookup an identity-friendly hit.
KIND_VALUE: dict = {k: sys.intern(k.value) for k in RequestKind}
OUTCOME_VALUE: dict = {o: sys.intern(o.value) for o in Outcome}


@dataclass(frozen=True, slots=True)
class TenantRequest:
    """One tenant call in the open-loop request stream.

    Attributes:
        request_id: unique id, also the idempotency token for retried
            controller mutations.
        tenant: canonical tenant id (``t-017``).
        kind: taxonomy entry.
        arrival_s: arrival time on the service's simulation clock.
        deadline_s: absolute deadline; propagated to every downstream
            attempt (an attempt never starts past it).
        params: kind-specific detail, stored sorted for hashability.
        seq: arrival order assigned by the workload (tie-break).
    """

    request_id: str
    tenant: str
    kind: RequestKind
    arrival_s: float
    deadline_s: float
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    seq: int = -1

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ConfigurationError("arrival must be non-negative")
        if self.deadline_s <= self.arrival_s:
            raise ConfigurationError("deadline must be after arrival")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @property
    def priority(self) -> int:
        return PRIORITY[self.kind]

    def param(self, key: str, default: Optional[ParamValue] = None) -> Optional[ParamValue]:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def canonical(self) -> str:
        params = ",".join(f"{k}={v!r}" for k, v in self.params)
        return (
            f"{self.request_id}|{self.tenant}|{KIND_VALUE[self.kind]}|"
            f"{self.arrival_s!r}|{self.deadline_s!r}|{params}"
        )


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """The terminal accounting entry for one offered request.

    ``finish_s`` is the simulation time the outcome was decided (shed
    records finish at shed time, rejected at arrival).  ``attempts`` is
    the number of downstream controller attempts the request consumed --
    the quantity the retry budget caps.
    """

    request: TenantRequest
    outcome: Outcome
    finish_s: float
    attempts: int = 0
    detail: str = ""

    @property
    def latency_ms(self) -> float:
        return (self.finish_s - self.request.arrival_s) * 1e3

    def canonical(self) -> str:
        return (
            f"{self.request.canonical()}|{OUTCOME_VALUE[self.outcome]}|"
            f"{self.finish_s!r}|{self.attempts}|{self.detail}"
        )


def outcomes_digest(records: Iterable[RequestRecord]) -> str:
    """SHA-256 over every request's canonical outcome, in arrival order.

    Equal digests mean byte-identical per-request outcomes: same
    requests, same verdicts, same finish times, same attempt counts.
    """
    h = hashlib.sha256()
    for record in sorted(records, key=lambda r: (r.request.seq, r.request.request_id)):
        h.update(record.canonical().encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()
