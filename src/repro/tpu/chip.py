"""TPU chips and hosts.

Appendix A: each 4x4x4 cube holds 64 TPU v4 chips and 16 CPU hosts (4
TPUs per host); each host carries one DCN connection.  A full 4096-chip
superpod exceeds one ExaFLOP of aggregate BF16 compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.errors import ConfigurationError

#: Peak BF16 compute per TPU v4 chip, teraFLOPS.
TPU_V4_BF16_TFLOPS = 275.0

#: TPU chips attached to one CPU host.
CHIPS_PER_HOST = 4

#: HBM capacity per chip, GiB (used by the parallelism memory bound).
HBM_GIB_PER_CHIP = 32.0


@dataclass(frozen=True)
class TpuChip:
    """One TPU v4 chip at integer coordinates within its cube."""

    cube_index: int
    x: int
    y: int
    z: int

    def __post_init__(self) -> None:
        for name, v in (("x", self.x), ("y", self.y), ("z", self.z)):
            if not 0 <= v < 4:
                raise ConfigurationError(f"chip {name}={v} outside the 4x4x4 cube")
        if self.cube_index < 0:
            raise ConfigurationError("cube index must be non-negative")

    @property
    def coords(self) -> Tuple[int, int, int]:
        return (self.x, self.y, self.z)

    @property
    def host_index(self) -> int:
        """Host within the cube: chips are grouped 4-per-host along x."""
        linear = self.x + 4 * self.y + 16 * self.z
        return linear // CHIPS_PER_HOST

    def __str__(self) -> str:
        return f"tpu[{self.cube_index}]({self.x},{self.y},{self.z})"


@dataclass
class TpuHost:
    """One CPU host: 4 TPUs and a DCN NIC."""

    cube_index: int
    index: int
    healthy: bool = True
    dcn_gbps: float = 100.0

    def __post_init__(self) -> None:
        if self.index < 0 or self.cube_index < 0:
            raise ConfigurationError("indices must be non-negative")
        if self.dcn_gbps <= 0:
            raise ConfigurationError("DCN bandwidth must be positive")

    @property
    def num_chips(self) -> int:
        return CHIPS_PER_HOST

    def __str__(self) -> str:
        return f"host[{self.cube_index}].{self.index}"


def superpod_peak_exaflops(num_chips: int = 4096) -> float:
    """Aggregate BF16 compute in exaFLOPS (paper: >1 EFLOP at 4096)."""
    if num_chips <= 0:
        raise ConfigurationError("need at least one chip")
    return num_chips * TPU_V4_BF16_TFLOPS / 1e6
