"""Inter-chip-interconnect (ICI) link parameters and latency accounting.

The ICI is the scale-up fabric (§2.2.1): each TPU v4 chip has two links
per torus dimension (one per direction).  Within a cube the links are
electrical; between cubes they ride the lightwave fabric (bidi optics
through one OCS hop, which adds only fiber propagation -- no packet
processing, §3.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.units import fiber_latency_ns

#: ICI bandwidth per link per direction, Gb/s (TPU v4: 50 GB/s ~ 400 Gb/s).
ICI_LINK_GBPS = 400.0

#: Per-hop electrical (intra-cube) latency, ns.
ELECTRICAL_HOP_NS = 25.0

#: Serialization + SerDes + FEC latency added by an optical inter-cube hop,
#: ns (dominated by the inner soft FEC's <20 ns plus DSP).
OPTICAL_HOP_EXTRA_NS = 30.0


@dataclass(frozen=True)
class IciSpec:
    """Link-level ICI parameters for one deployment."""

    link_gbps: float = ICI_LINK_GBPS
    electrical_hop_ns: float = ELECTRICAL_HOP_NS
    optical_hop_extra_ns: float = OPTICAL_HOP_EXTRA_NS
    inter_cube_fiber_m: float = 40.0

    def __post_init__(self) -> None:
        if self.link_gbps <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if min(self.electrical_hop_ns, self.optical_hop_extra_ns) < 0:
            raise ConfigurationError("latencies must be non-negative")
        if self.inter_cube_fiber_m < 0:
            raise ConfigurationError("fiber length must be non-negative")

    @property
    def link_bytes_per_s(self) -> float:
        return self.link_gbps * 1e9 / 8.0

    def hop_latency_ns(self, crosses_cube_boundary: bool) -> float:
        """Latency of one torus hop.

        An intra-cube hop is purely electrical; an inter-cube hop adds
        fiber propagation (to the OCS rack and back) plus optical SerDes/FEC
        overhead -- but no queuing or packet processing.
        """
        if not crosses_cube_boundary:
            return self.electrical_hop_ns
        return (
            self.electrical_hop_ns
            + self.optical_hop_extra_ns
            + fiber_latency_ns(self.inter_cube_fiber_m)
        )

    def path_latency_ns(self, num_hops: int, inter_cube_hops: int) -> float:
        """End-to-end latency of a multi-hop deterministic route."""
        if num_hops < 0 or inter_cube_hops < 0 or inter_cube_hops > num_hops:
            raise ConfigurationError("invalid hop counts")
        intra = num_hops - inter_cube_hops
        return intra * self.hop_latency_ns(False) + inter_cube_hops * self.hop_latency_ns(
            True
        )

    def transfer_time_us(self, volume_bytes: float) -> float:
        """Time to push ``volume_bytes`` through one link, microseconds."""
        if volume_bytes < 0:
            raise ConfigurationError("volume must be non-negative")
        return volume_bytes / self.link_bytes_per_s * 1e6
