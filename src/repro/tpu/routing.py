"""Deterministic 3D-torus routing, topology metrics, degraded mode.

§4.2.1: "In normal operation, the routing is deterministic and set by the
slice configuration."  We implement classic dimension-ordered routing with
shortest-way wraparound, plus the torus metrics (bisection, diameter,
average hop distance) that drive the slice-shape discussion: the symmetric
16x16x16 shape maximizes bisection bandwidth among 4096-chip tori.

§4.2.2 adds the *degraded* mode: each torus dimension's inter-cube links
ride 16 parallel OCS face positions; when an OCS fails, routing re-weights
traffic over the surviving positions instead of failing the slice.
:class:`DegradedRouting` tracks failed (axis, face-position) pairs and
yields the per-dimension bandwidth scales the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Sequence, Tuple

from repro.core.errors import CapacityError, ConfigurationError

Coord = Tuple[int, int, int]


def _check_shape(shape: Sequence[int]) -> Tuple[int, int, int]:
    if len(shape) != 3 or any(s <= 0 for s in shape):
        raise ConfigurationError(f"shape must be three positive extents, got {shape}")
    return tuple(int(s) for s in shape)  # type: ignore[return-value]


def _check_coord(coord: Sequence[int], shape: Sequence[int]) -> None:
    for c, s in zip(coord, shape):
        if not 0 <= c < s:
            raise ConfigurationError(f"coordinate {coord} outside shape {shape}")


def torus_ring_distance(a: int, b: int, extent: int) -> int:
    """Shortest hop count between two positions on a wraparound ring."""
    if extent <= 0:
        raise ConfigurationError("extent must be positive")
    d = abs(a - b) % extent
    return min(d, extent - d)


def torus_hop_distance(src: Coord, dst: Coord, shape: Sequence[int]) -> int:
    """Shortest-path hop count between two chips on the torus."""
    shape = _check_shape(shape)
    _check_coord(src, shape)
    _check_coord(dst, shape)
    return sum(torus_ring_distance(a, b, s) for a, b, s in zip(src, dst, shape))


def torus_route(src: Coord, dst: Coord, shape: Sequence[int]) -> List[Coord]:
    """Dimension-ordered route from ``src`` to ``dst`` (inclusive of both).

    Corrects each dimension in x, y, z order, stepping the shortest way
    around the ring (ties go in the positive direction).
    """
    shape = _check_shape(shape)
    _check_coord(src, shape)
    _check_coord(dst, shape)
    path = [tuple(src)]
    cur = list(src)
    for axis in range(3):
        extent = shape[axis]
        while cur[axis] != dst[axis]:
            forward = (dst[axis] - cur[axis]) % extent
            backward = (cur[axis] - dst[axis]) % extent
            step = 1 if forward <= backward else -1
            cur[axis] = (cur[axis] + step) % extent
            path.append(tuple(cur))
    return path  # type: ignore[return-value]


def torus_diameter(shape: Sequence[int]) -> int:
    """Maximum shortest-path hop count on the torus."""
    shape = _check_shape(shape)
    return sum(s // 2 for s in shape)


def torus_bisection_links(shape: Sequence[int]) -> int:
    """Links crossing the worst-case bisection of the torus.

    Cutting perpendicular to the longest dimension severs each of the
    ``N / d_max`` rings along it in two places (the cut and the
    wraparound), except that a dimension of extent 1 or 2 has no distinct
    wraparound; extents <= 2 contribute ``1`` crossing per ring per cut
    side accordingly.
    """
    shape = _check_shape(shape)
    d_max = max(shape)
    n = shape[0] * shape[1] * shape[2]
    rings = n // d_max
    crossings_per_ring = 2 if d_max > 2 else d_max  # extent 1 -> 1 self-link, 2 -> 2
    return rings * crossings_per_ring


def torus_average_hops(shape: Sequence[int]) -> float:
    """Mean shortest-path distance between distinct chips.

    Uses the closed form for ring average distance: for extent ``k`` the
    mean over all ordered pairs (including self) is ``k/4`` for even ``k``
    and ``(k^2-1)/(4k)`` for odd ``k``; dimensions add.
    """
    shape = _check_shape(shape)

    def ring_mean(k: int) -> float:
        if k % 2 == 0:
            return k / 4.0
        return (k * k - 1.0) / (4.0 * k)

    n = shape[0] * shape[1] * shape[2]
    if n == 1:
        return 0.0
    total_mean = sum(ring_mean(s) for s in shape)
    # Convert from mean over all ordered pairs (incl. self) to distinct pairs.
    return total_mean * n / (n - 1)


@dataclass(frozen=True)
class DegradedRouting:
    """Traffic re-weighting over surviving parallel OCS face positions.

    Each torus dimension's inter-cube bandwidth is striped over
    ``face_ports`` parallel OCSes (16 on the superpod).  A failure
    removes one stripe; the deterministic routing re-spreads the
    dimension's rings over the survivors, so the slice keeps running at
    ``survivors / face_ports`` of the dimension's bandwidth rather than
    failing.

    Immutable: :meth:`fail_position` / :meth:`repair_position` return
    updated copies, so simulators can keep a timeline of states.
    """

    face_ports: int = 16
    failed: FrozenSet[Tuple[int, int]] = frozenset()

    def __post_init__(self) -> None:
        if self.face_ports <= 0:
            raise ConfigurationError("face_ports must be positive")
        for axis, pos in self.failed:
            if axis not in (0, 1, 2):
                raise ConfigurationError(f"axis must be 0, 1, or 2, got {axis}")
            if not 0 <= pos < self.face_ports:
                raise ConfigurationError(
                    f"face position {pos} out of range [0, {self.face_ports})"
                )

    def fail_position(self, axis: int, pos: int) -> "DegradedRouting":
        """State after the OCS at (axis, face position) fails."""
        return replace(self, failed=self.failed | {(axis, pos)})

    def repair_position(self, axis: int, pos: int) -> "DegradedRouting":
        """State after the OCS at (axis, face position) is repaired."""
        return replace(self, failed=self.failed - {(axis, pos)})

    def surviving_positions(self, axis: int) -> Tuple[int, ...]:
        """Face positions of ``axis`` still carrying traffic."""
        down = {p for a, p in self.failed if a == axis}
        return tuple(p for p in range(self.face_ports) if p not in down)

    def weights(self, axis: int) -> Tuple[float, ...]:
        """Per-face-position traffic share for ``axis``.

        Failed positions carry 0; survivors split the dimension's
        traffic evenly.  Raises :class:`~repro.core.errors.CapacityError`
        when the dimension has no surviving position -- only then does
        the slice actually lose connectivity in that dimension.
        """
        survivors = self.surviving_positions(axis)
        if not survivors:
            raise CapacityError(
                f"all {self.face_ports} OCS face positions of axis {axis} failed"
            )
        share = 1.0 / len(survivors)
        alive = set(survivors)
        return tuple(share if p in alive else 0.0 for p in range(self.face_ports))

    def dim_scale(self) -> Tuple[float, float, float]:
        """Surviving bandwidth fraction per torus dimension.

        Feed this to :class:`repro.ml.perfmodel.TrainingStepModel` as
        ``dim_bandwidth_scale`` to price the degradation.
        """
        scales = []
        for axis in range(3):
            survivors = len(self.surviving_positions(axis))
            if survivors == 0:
                raise CapacityError(
                    f"all {self.face_ports} OCS face positions of axis {axis} failed"
                )
            scales.append(survivors / self.face_ports)
        return (scales[0], scales[1], scales[2])

    @property
    def is_healthy(self) -> bool:
        return not self.failed


def best_bisection_shape(num_chips: int) -> Tuple[int, int, int]:
    """The 3D-torus shape with the largest bisection for ``num_chips``.

    Searches all factorizations; for 4096 this is the symmetric 16x16x16
    (the paper's static baseline rationale, §4.2.1).
    """
    if num_chips <= 0:
        raise ConfigurationError("chip count must be positive")
    best: Tuple[int, Tuple[int, int, int]] = (-1, (num_chips, 1, 1))
    for a in range(1, num_chips + 1):
        if num_chips % a:
            continue
        rest = num_chips // a
        for b in range(1, rest + 1):
            if rest % b:
                continue
            c = rest // b
            shape = tuple(sorted((a, b, c)))
            links = torus_bisection_links(shape)
            if links > best[0]:
                best = (links, shape)  # type: ignore[assignment]
    return best[1]
