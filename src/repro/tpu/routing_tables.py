"""Per-chip routing tables for a composed slice.

§3.2.1: "the radix of the OCS, size of an elemental compute building
block, and the size of the routing table that can be supported determine
the overall size of the TPU Superpod."  §4.2.1: "the routing is
deterministic and set by the slice configuration."

This module materializes that state: for a slice's chip-level torus it
builds each chip's dimension-ordered routing table (destination ->
egress port), validates full reachability, and reports the table-size
scaling that constrains pod growth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.errors import ConfigurationError, TopologyError
from repro.tpu.routing import torus_hop_distance, torus_ring_distance

Coord = Tuple[int, int, int]


class Egress(enum.Enum):
    """The six ICI ports of a chip (one per direction per dimension)."""

    X_PLUS = "x+"
    X_MINUS = "x-"
    Y_PLUS = "y+"
    Y_MINUS = "y-"
    Z_PLUS = "z+"
    Z_MINUS = "z-"
    LOCAL = "local"


_AXIS_PORTS = {
    0: (Egress.X_PLUS, Egress.X_MINUS),
    1: (Egress.Y_PLUS, Egress.Y_MINUS),
    2: (Egress.Z_PLUS, Egress.Z_MINUS),
}


def _check_shape(shape: Sequence[int]) -> Tuple[int, int, int]:
    if len(shape) != 3 or any(s <= 0 for s in shape):
        raise ConfigurationError(f"shape must be three positive extents, got {shape}")
    return tuple(int(s) for s in shape)  # type: ignore[return-value]


def next_hop(src: Coord, dst: Coord, shape: Sequence[int]) -> Egress:
    """Dimension-ordered next hop from ``src`` toward ``dst``.

    Corrects x first, then y, then z, stepping the shortest way around
    each ring (ties go positive) -- matching
    :func:`repro.tpu.routing.torus_route`.
    """
    shape = _check_shape(shape)
    for axis in range(3):
        if src[axis] == dst[axis]:
            continue
        extent = shape[axis]
        forward = (dst[axis] - src[axis]) % extent
        backward = (src[axis] - dst[axis]) % extent
        plus, minus = _AXIS_PORTS[axis]
        return plus if forward <= backward else minus
    return Egress.LOCAL


@dataclass(frozen=True)
class RoutingTable:
    """One chip's destination -> egress map."""

    chip: Coord
    shape: Tuple[int, int, int]
    entries: Dict[Coord, Egress]

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def egress_for(self, dst: Coord) -> Egress:
        try:
            return self.entries[tuple(dst)]
        except KeyError:
            raise TopologyError(f"{dst} is not a destination in this slice") from None


def build_routing_table(chip: Coord, shape: Sequence[int]) -> RoutingTable:
    """All-destination dimension-ordered table for one chip."""
    shape = _check_shape(shape)
    entries: Dict[Coord, Egress] = {}
    for x in range(shape[0]):
        for y in range(shape[1]):
            for z in range(shape[2]):
                dst = (x, y, z)
                entries[dst] = next_hop(chip, dst, shape)
    return RoutingTable(chip=tuple(chip), shape=shape, entries=entries)


def walk_route(src: Coord, dst: Coord, shape: Sequence[int], max_hops: int = 10_000) -> List[Coord]:
    """Follow the distributed tables hop by hop from ``src`` to ``dst``.

    This is the reachability check: every chip consults *its own* table,
    exactly as the deterministic hardware routing would.
    """
    shape = _check_shape(shape)
    path = [tuple(src)]
    cur = tuple(src)
    for _ in range(max_hops):
        if cur == tuple(dst):
            return path
        egress = next_hop(cur, dst, shape)
        if egress is Egress.LOCAL:
            raise TopologyError(f"table at {cur} claims local for remote {dst}")
        axis = {"x": 0, "y": 1, "z": 2}[egress.value[0]]
        step = 1 if egress.value[1] == "+" else -1
        nxt = list(cur)
        nxt[axis] = (nxt[axis] + step) % shape[axis]
        cur = tuple(nxt)
        path.append(cur)
    raise TopologyError(f"route {src} -> {dst} did not converge in {max_hops} hops")


def table_entries_per_chip(shape: Sequence[int]) -> int:
    """Routing-table size a chip needs for a slice: one entry per chip."""
    shape = _check_shape(shape)
    return shape[0] * shape[1] * shape[2]


def max_pod_for_table_size(table_capacity: int, cube_chips: int = 64) -> int:
    """Largest pod (in cubes) a given routing-table capacity supports.

    The §3.2.1 constraint: with one entry per destination chip, table
    capacity caps the slice (and hence pod) size.
    """
    if table_capacity <= 0 or cube_chips <= 0:
        raise ConfigurationError("capacity and cube size must be positive")
    return table_capacity // cube_chips
