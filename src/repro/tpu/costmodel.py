"""Fabric cost/power comparison for a 4096-TPU superpod (Table 1).

The paper compares three fabrics for connecting 64 elemental cubes,
normalized to a *static* direct-connect optical topology:

=============  =============  ==============
fabric         relative cost  relative power
=============  =============  ==============
DCN (EPS)      1.24x          1.10x
Lightwave      1.06x          1.01x
Static         1x             1x
=============  =============  ==============

The model is a transparent bill of materials at the *system* level (the
abstract: the lightwave fabric is "less than 6% of the total system
cost").  Unit costs/powers are synthetic but in realistic ratios; the
reproduction target is the relative numbers above.

Common to all fabrics: 64 TPU racks and 3072 x 800G inter-cube face
connections (64 cubes x 48 connections each, one OSFP module per
connection).  The fabrics differ in module class, switching equipment,
and fiber plant:

- **static**: short-reach point-to-point duplex modules, fixed fiber.
- **lightwave**: bidi modules with integrated circulators (costlier, a
  little hungrier) plus 48 Palomar OCSes and OCS-rack fiber.
- **dcn**: an EPS Clos: long-reach duplex modules on the cube side, an
  aggregation + spine switch fabric with its own transceivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.errors import ConfigurationError
from repro.ocs.palomar import PALOMAR_MAX_POWER_W

#: Fabric kinds compared in Table 1.
FABRIC_KINDS = ("dcn", "lightwave", "static")

#: Cubes and face connections for the full pod.
NUM_CUBES = 64
CONNECTIONS_PER_CUBE = 48
NUM_CONNECTIONS = NUM_CUBES * CONNECTIONS_PER_CUBE  # 3072 x 800G

#: OCS count with CWDM4 bidi modules (§4.2.2).
NUM_OCSES = 48


@dataclass(frozen=True)
class BomLine:
    """One bill-of-materials line."""

    item: str
    quantity: int
    unit_cost_usd: float
    unit_power_w: float

    @property
    def cost_usd(self) -> float:
        return self.quantity * self.unit_cost_usd

    @property
    def power_w(self) -> float:
        return self.quantity * self.unit_power_w


@dataclass
class FabricCostModel:
    """Builds and compares the three Table 1 bills of materials.

    The defaults are calibrated so the relative numbers land on the
    paper's; every knob is exposed for ablation.
    """

    # TPU compute (identical across fabrics).
    rack_cost_usd: float = 450_000.0
    rack_power_w: float = 14_300.0

    # Optical modules per 800G face connection.
    static_module_cost_usd: float = 400.0
    static_module_power_w: float = 8.0
    bidi_module_cost_usd: float = 650.0
    bidi_module_power_w: float = 9.0
    dcn_module_cost_usd: float = 450.0
    dcn_module_power_w: float = 8.0

    # Fiber per connection.
    static_fiber_cost_usd: float = 60.0
    ocs_fiber_cost_usd: float = 120.0
    dcn_fiber_cost_usd: float = 120.0

    # Switching equipment.
    ocs_cost_usd: float = 18_000.0
    ocs_power_w: float = PALOMAR_MAX_POWER_W
    eps_chassis_cost_usd: float = 35_000.0
    eps_chassis_power_w: float = 280.0
    eps_ports_per_chassis: int = 128

    def __post_init__(self) -> None:
        for name in (
            "rack_cost_usd",
            "static_module_cost_usd",
            "bidi_module_cost_usd",
            "dcn_module_cost_usd",
            "ocs_cost_usd",
            "eps_chassis_cost_usd",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    # ------------------------------------------------------------------ #
    # Bills of materials
    # ------------------------------------------------------------------ #

    def _compute_lines(self) -> List[BomLine]:
        return [BomLine("tpu-rack", NUM_CUBES, self.rack_cost_usd, self.rack_power_w)]

    def bom(self, kind: str) -> List[BomLine]:
        """The full system BOM for one fabric kind."""
        lines = self._compute_lines()
        if kind == "static":
            lines += [
                BomLine(
                    "short-reach module",
                    NUM_CONNECTIONS,
                    self.static_module_cost_usd,
                    self.static_module_power_w,
                ),
                BomLine(
                    "static fiber", NUM_CONNECTIONS, self.static_fiber_cost_usd, 0.0
                ),
            ]
        elif kind == "lightwave":
            lines += [
                BomLine(
                    "bidi module",
                    NUM_CONNECTIONS,
                    self.bidi_module_cost_usd,
                    self.bidi_module_power_w,
                ),
                BomLine("ocs fiber", NUM_CONNECTIONS, self.ocs_fiber_cost_usd, 0.0),
                BomLine("palomar ocs", NUM_OCSES, self.ocs_cost_usd, self.ocs_power_w),
            ]
        elif kind == "dcn":
            # Clos: cube-side modules, two switching layers (aggregation +
            # spine), a switch-side module on every switch port touched.
            agg_ports = NUM_CONNECTIONS  # down-links
            uplinks = NUM_CONNECTIONS  # agg -> spine
            switch_modules = agg_ports + 2 * uplinks  # agg down + agg up + spine
            chassis = -(-(agg_ports + uplinks) // self.eps_ports_per_chassis) + -(
                -uplinks // self.eps_ports_per_chassis
            )
            lines += [
                BomLine(
                    "long-reach module (cube side)",
                    NUM_CONNECTIONS,
                    self.dcn_module_cost_usd,
                    self.dcn_module_power_w,
                ),
                BomLine(
                    "long-reach module (switch side)",
                    switch_modules,
                    self.dcn_module_cost_usd,
                    self.dcn_module_power_w,
                ),
                BomLine("dcn fiber", NUM_CONNECTIONS * 2, self.dcn_fiber_cost_usd, 0.0),
                BomLine(
                    "eps chassis", chassis, self.eps_chassis_cost_usd, self.eps_chassis_power_w
                ),
            ]
        else:
            raise ConfigurationError(
                f"unknown fabric kind {kind!r}; choose from {FABRIC_KINDS}"
            )
        return lines

    def total_cost_usd(self, kind: str) -> float:
        return sum(l.cost_usd for l in self.bom(kind))

    def total_power_w(self, kind: str) -> float:
        return sum(l.power_w for l in self.bom(kind))

    def fabric_cost_usd(self, kind: str) -> float:
        """Cost of the interconnect alone (everything but TPU racks)."""
        return sum(l.cost_usd for l in self.bom(kind) if l.item != "tpu-rack")

    # ------------------------------------------------------------------ #
    # Table 1
    # ------------------------------------------------------------------ #

    def relative_table(self) -> Dict[str, Tuple[float, float]]:
        """{kind: (relative cost, relative power)} normalized to static."""
        base_cost = self.total_cost_usd("static")
        base_power = self.total_power_w("static")
        return {
            kind: (
                self.total_cost_usd(kind) / base_cost,
                self.total_power_w(kind) / base_power,
            )
            for kind in FABRIC_KINDS
        }

    def lightwave_premium_fraction(self) -> float:
        """The abstract's claim, read as the lightwave fabric's *premium*:
        the extra spend over a static fabric is < 6% of total system cost."""
        extra = self.total_cost_usd("lightwave") - self.total_cost_usd("static")
        return extra / self.total_cost_usd("lightwave")
