"""Slice topologies: X x Y x Z cube arrangements forming 3D tori.

§4.2: the scheduler composes slices from whole cubes; a full 4096-chip pod
supports chip shapes from the symmetric 16x16x16 to the highly asymmetric
4x4x256, always in multiples of the 4-chip cube edge.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.errors import ConfigurationError, TopologyError
from repro.core.ids import CubeId, SliceId
from repro.tpu.cube import CHIPS_PER_CUBE, CUBE_DIM, DIMS

CubeCoord = Tuple[int, int, int]


@dataclass(frozen=True)
class SliceTopology:
    """One composed slice: a cube-shape plus the cubes filling it.

    ``shape_cubes`` is the torus extent in cubes per dimension;
    ``assignment`` maps each logical cube coordinate to a physical cube.
    """

    slice_id: SliceId
    shape_cubes: Tuple[int, int, int]
    assignment: Tuple[Tuple[CubeCoord, CubeId], ...]
    wrap: bool = True

    def __post_init__(self) -> None:
        if any(s <= 0 for s in self.shape_cubes):
            raise ConfigurationError(f"shape must be positive, got {self.shape_cubes}")
        expected = set(itertools.product(*(range(s) for s in self.shape_cubes)))
        coords = [c for c, _ in self.assignment]
        if len(coords) != len(set(coords)):
            raise ConfigurationError("duplicate logical coordinates in assignment")
        if set(coords) != expected:
            raise ConfigurationError(
                f"assignment covers {len(coords)} coords, need {len(expected)}"
            )
        cubes = [cid for _, cid in self.assignment]
        if len(cubes) != len(set(cubes)):
            raise ConfigurationError("a physical cube appears twice in the slice")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def compose(
        cls,
        slice_id: SliceId,
        shape_cubes: Sequence[int],
        cubes: Sequence[CubeId],
        wrap: bool = True,
    ) -> "SliceTopology":
        """Fill the shape with ``cubes`` in row-major logical order."""
        shape = tuple(int(s) for s in shape_cubes)
        if len(shape) != 3:
            raise ConfigurationError(f"shape must have 3 dims, got {shape}")
        needed = shape[0] * shape[1] * shape[2]
        if len(cubes) != needed:
            raise ConfigurationError(
                f"shape {shape} needs {needed} cubes, got {len(cubes)}"
            )
        coords = list(
            itertools.product(range(shape[0]), range(shape[1]), range(shape[2]))
        )
        return cls(
            slice_id=slice_id,
            shape_cubes=shape,
            assignment=tuple(zip(coords, cubes)),
            wrap=wrap,
        )

    @classmethod
    def chip_shape_to_cube_shape(
        cls, chip_shape: Sequence[int]
    ) -> Tuple[int, int, int]:
        """Convert a chip-level shape (e.g. 4x4x256) to cubes (1x1x64)."""
        if len(chip_shape) != 3:
            raise ConfigurationError(f"chip shape must have 3 dims, got {chip_shape}")
        out = []
        for s in chip_shape:
            if s % CUBE_DIM != 0 or s <= 0:
                raise ConfigurationError(
                    f"chip extent {s} is not a positive multiple of {CUBE_DIM}"
                )
            out.append(s // CUBE_DIM)
        return tuple(out)  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def num_cubes(self) -> int:
        return len(self.assignment)

    @property
    def num_chips(self) -> int:
        return self.num_cubes * CHIPS_PER_CUBE

    @property
    def chip_shape(self) -> Tuple[int, int, int]:
        """Torus extent in chips per dimension."""
        return tuple(s * CUBE_DIM for s in self.shape_cubes)  # type: ignore[return-value]

    @property
    def cube_ids(self) -> Tuple[CubeId, ...]:
        return tuple(cid for _, cid in self.assignment)

    def cube_at(self, coord: CubeCoord) -> CubeId:
        for c, cid in self.assignment:
            if c == coord:
                return cid
        raise TopologyError(f"no cube at logical coordinate {coord}")

    # ------------------------------------------------------------------ #
    # Torus structure
    # ------------------------------------------------------------------ #

    def rings(self, dim: str) -> List[List[CubeId]]:
        """The cube rings along ``dim``: each is an ordered wraparound cycle.

        For dimension extent 1 the ring is a single cube whose "+" face
        loops back to its own "-" face.
        """
        if dim not in DIMS:
            raise ConfigurationError(f"dim must be one of {DIMS}, got {dim!r}")
        axis = DIMS.index(dim)
        extent = self.shape_cubes[axis]
        other = [i for i in range(3) if i != axis]
        lookup: Dict[CubeCoord, CubeId] = dict(self.assignment)
        out: List[List[CubeId]] = []
        for u in range(self.shape_cubes[other[0]]):
            for v in range(self.shape_cubes[other[1]]):
                ring = []
                for w in range(extent):
                    coord = [0, 0, 0]
                    coord[axis] = w
                    coord[other[0]] = u
                    coord[other[1]] = v
                    ring.append(lookup[tuple(coord)])
                out.append(ring)
        return out

    def inter_cube_links(self) -> List[Tuple[str, CubeId, CubeId]]:
        """All (dim, from_cube, to_cube) edges: "+" face of ``from``
        connects to "-" face of ``to``.

        With ``wrap=True`` (the default) every line closes into a torus
        ring; ``wrap=False`` yields a mesh (§4.2: *most* slices are tori
        -- the mesh option models the rest, trading wraparound links for
        lower fabric usage at halved edge-dimension bandwidth).
        """
        links = []
        for dim in DIMS:
            for ring in self.rings(dim):
                n = len(ring)
                last = n if self.wrap else n - 1
                for i in range(last):
                    links.append((dim, ring[i], ring[(i + 1) % n]))
        return links

    def __iter__(self) -> Iterator[Tuple[CubeCoord, CubeId]]:
        return iter(self.assignment)

    def __str__(self) -> str:
        cx, cy, cz = self.chip_shape
        kind = "torus" if self.wrap else "mesh"
        return (
            f"Slice({self.slice_id}, {cx}x{cy}x{cz} chips, "
            f"{self.num_cubes} cubes, {kind})"
        )
