"""The TPU v4 superpod: cubes, OCS wiring, and 3D-torus slices.

Reproduces Appendix A and §4.2: 64 chips per 4x4x4 electrically-wired
cube, 64 cubes optically cross-connected by 48 Palomar OCSes (the "+" and
"-" faces of each dimension/index pair land on the same OCS), and
dynamically composed 3D-torus slices of any X x Y x Z cube shape.
"""

from repro.tpu.chip import TpuChip, TpuHost, TPU_V4_BF16_TFLOPS
from repro.tpu.cube import Cube, CUBE_DIM, CHIPS_PER_CUBE, FACE_PORTS
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod, NUM_CUBES, NUM_OCSES
from repro.tpu.routing import torus_route, torus_hop_distance, torus_bisection_links
from repro.tpu.ici import IciSpec
from repro.tpu.costmodel import FabricCostModel, FABRIC_KINDS
from repro.tpu.higher_torus import compare_dimensionalities, near_cubic_shape
from repro.tpu.routing_tables import Egress, RoutingTable, build_routing_table
from repro.tpu.degradation import ocs_failure_impact, worst_case_step_degradation

__all__ = [
    "TpuChip",
    "TpuHost",
    "TPU_V4_BF16_TFLOPS",
    "Cube",
    "CUBE_DIM",
    "CHIPS_PER_CUBE",
    "FACE_PORTS",
    "SliceTopology",
    "Superpod",
    "NUM_CUBES",
    "NUM_OCSES",
    "torus_route",
    "torus_hop_distance",
    "torus_bisection_links",
    "IciSpec",
    "FabricCostModel",
    "FABRIC_KINDS",
    "compare_dimensionalities",
    "near_cubic_shape",
    "Egress",
    "RoutingTable",
    "build_routing_table",
    "ocs_failure_impact",
    "worst_case_step_degradation",
]
