"""Single-OCS-failure degradation analysis (§4.2.2).

"A single failure in the set of OCSes that provide full connectivity
between the elemental cubes will degrade the performance of any slice
composed of more than one elemental cube."  Each of the 48 OCSes carries
one of the 16 parallel face positions of one torus dimension, so losing
one OCS removes 1/16 of every multi-cube slice's inter-cube bandwidth in
that dimension.

:func:`ocs_failure_impact` maps a failed OCS to the per-slice bandwidth
loss, and :func:`step_time_degradation` propagates it through the
training-step model to a throughput hit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.ids import OcsId, SliceId
from repro.tpu.cube import DIMS, FACE_PORTS

if TYPE_CHECKING:  # repro.ml imports repro.tpu.chip; avoid the cycle at runtime
    from repro.ml.parallelism import ParallelismPlan
    from repro.ml.perfmodel import TrainingStepModel
from repro.tpu.routing import DegradedRouting
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import NUM_OCSES, Superpod

#: Fraction of a dimension's inter-cube links one OCS carries.
LINKS_PER_OCS_FRACTION = 1.0 / FACE_PORTS


def ocs_dimension(ocs_id: OcsId) -> str:
    """The torus dimension a superpod OCS serves."""
    if not 0 <= ocs_id.index < NUM_OCSES:
        raise ConfigurationError(f"{ocs_id} outside the superpod's 48 OCSes")
    return DIMS[ocs_id.index // FACE_PORTS]


@dataclass(frozen=True)
class SliceDegradation:
    """Impact of one OCS failure on one slice."""

    slice_id: SliceId
    dimension: str
    affected: bool
    bandwidth_loss_fraction: float


def ocs_failure_impact(
    pod: Superpod, ocs_id: OcsId
) -> Dict[SliceId, SliceDegradation]:
    """Per-slice degradation when ``ocs_id`` fails.

    A slice is affected when it has inter-cube traffic in the failed
    OCS's dimension: extent > 1 in cubes, or the wraparound self-loop of
    a torus slice (extent 1 with ``wrap=True``) -- both route that
    dimension's chip rings through the optical fabric.  Affected slices
    lose 1/16 of that dimension's bandwidth.
    """
    dim = ocs_dimension(ocs_id)
    axis = DIMS.index(dim)
    out: Dict[SliceId, SliceDegradation] = {}
    for topology in pod.slices():
        uses_dim = topology.shape_cubes[axis] > 1 or topology.wrap
        out[topology.slice_id] = SliceDegradation(
            slice_id=topology.slice_id,
            dimension=dim,
            affected=uses_dim,
            bandwidth_loss_fraction=LINKS_PER_OCS_FRACTION if uses_dim else 0.0,
        )
    return out


def ocs_face_position(ocs_id: OcsId) -> Tuple[int, int]:
    """(axis, face position) of a superpod OCS."""
    if not 0 <= ocs_id.index < NUM_OCSES:
        raise ConfigurationError(f"{ocs_id} outside the superpod's {NUM_OCSES} OCSes")
    return ocs_id.index // FACE_PORTS, ocs_id.index % FACE_PORTS


def degraded_routing_for(failed_ocses: Sequence[OcsId]) -> DegradedRouting:
    """Routing re-weighting state after a set of OCS failures.

    The graceful-degradation path: instead of failing multi-cube slices,
    routing re-spreads each dimension's traffic over the surviving
    parallel face positions (§4.2.2).
    """
    state = DegradedRouting(face_ports=FACE_PORTS)
    for ocs_id in failed_ocses:
        axis, pos = ocs_face_position(ocs_id)
        state = state.fail_position(axis, pos)
    return state


def degraded_step_model(
    step_model: TrainingStepModel, failed_ocses: Sequence[OcsId]
) -> TrainingStepModel:
    """The step-time model seeing the post-failure bandwidth.

    Builds the :class:`~repro.tpu.routing.DegradedRouting` re-weighting
    for the failed OCSes and feeds its per-dimension surviving-bandwidth
    scale into the performance model.  Raises
    :class:`~repro.core.errors.CapacityError` only when a dimension has
    lost *all* of its parallel faces.
    """
    scale = degraded_routing_for(failed_ocses).dim_scale()
    return replace(step_model, dim_bandwidth_scale=scale)


def multi_ocs_step_degradation(
    model_plan: ParallelismPlan,
    step_model: TrainingStepModel,
    failed_ocses: Sequence[OcsId],
) -> float:
    """Fractional step-time increase under any set of OCS failures.

    Generalizes :func:`step_time_degradation` beyond a single failure;
    the two agree exactly when one OCS is down.
    """
    healthy = step_model.step_time_s(model_plan)
    degraded = degraded_step_model(step_model, failed_ocses).step_time_s(model_plan)
    return degraded / healthy - 1.0


def step_time_degradation(
    model_plan: ParallelismPlan,
    step_model: TrainingStepModel,
    failed_axis: int,
) -> float:
    """Fractional step-time increase from one OCS failure on ``failed_axis``.

    The surviving 15/16 of the dimension's links carry the collective at
    15/16 of the bandwidth; the returned value is
    ``t_degraded / t_healthy - 1``.
    """
    if failed_axis not in (0, 1, 2):
        raise ConfigurationError("axis must be 0, 1, or 2")
    healthy = step_model.step_time_s(model_plan)
    scale = [1.0, 1.0, 1.0]
    scale[failed_axis] = 1.0 - LINKS_PER_OCS_FRACTION
    degraded_model = replace(step_model, dim_bandwidth_scale=tuple(scale))
    degraded = degraded_model.step_time_s(model_plan)
    return degraded / healthy - 1.0


def quarantine_step_degradation(
    model_plan: ParallelismPlan,
    step_model: TrainingStepModel,
    quarantined_axis: int,
    held_out_fraction: float,
) -> float:
    """Fractional step-time increase from health-driven quarantine.

    The fleet watchdog (:class:`repro.control.health.FleetHealthWatchdog`)
    holds circuits out of service when it cannot steer them to spares;
    ``held_out_fraction`` is the fraction of the quarantining OCS's
    circuits that are dark.  The OCS carries 1/16 of the axis's links, so
    the axis keeps ``1 - fraction/16`` of its bandwidth.  At fraction 1.0
    (the whole OCS dark) this equals :func:`step_time_degradation`
    exactly -- quarantine of everything is a failure.
    """
    if quarantined_axis not in (0, 1, 2):
        raise ConfigurationError("axis must be 0, 1, or 2")
    if not 0.0 <= held_out_fraction <= 1.0:
        raise ConfigurationError("held_out_fraction must be in [0, 1]")
    if held_out_fraction == 0.0:
        return 0.0
    healthy = step_model.step_time_s(model_plan)
    scale = [1.0, 1.0, 1.0]
    scale[quarantined_axis] = 1.0 - held_out_fraction * LINKS_PER_OCS_FRACTION
    degraded_model = replace(step_model, dim_bandwidth_scale=tuple(scale))
    degraded = degraded_model.step_time_s(model_plan)
    return degraded / healthy - 1.0


def worst_case_step_degradation(
    model_plan: ParallelismPlan, step_model: TrainingStepModel
) -> Tuple[int, float]:
    """The most damaging single-OCS failure for a plan: (axis, slowdown)."""
    worst_axis, worst = 0, -1.0
    for axis in range(3):
        hit = step_time_degradation(model_plan, step_model, axis)
        if hit > worst:
            worst_axis, worst = axis, hit
    return worst_axis, worst
