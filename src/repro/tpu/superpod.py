"""The TPU v4 superpod: 64 cubes cross-connected by 48 OCSes (Fig A.1).

Wiring convention (Appendix A): for each dimension ``d`` (x, y, z) and
face position ``p`` (the 16 positions of a 4x4 face) there is one OCS.
Every cube lands its "+d" face link at position ``p`` on that OCS's north
port ``cube_index`` and its "-d" face link on south port ``cube_index``.
A torus edge "cube A +d -> cube B -d" is then the circuit
``N[A] -> S[B]`` on each of the 16 OCSes of dimension ``d`` -- including
the self-loop ``N[A] -> S[A]`` that closes a dimension of extent one.

Because the 16 OCSes of a dimension carry identical cube-level patterns,
slice configuration builds one target cross-connect per dimension and
replicates it.  Slices over disjoint cube sets touch disjoint ports, so
the non-blocking OCS schedules new slices without disturbing running ones
(§4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import (
    CapacityError,
    ConfigurationError,
    SchedulingError,
    TopologyError,
)
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import CubeId, OcsId, SliceId
from repro.ocs.palomar import PALOMAR_RADIX, PalomarOcs
from repro.tpu.cube import Cube, DIMS, FACE_PORTS
from repro.tpu.slice_topology import SliceTopology

#: Cubes per superpod.
NUM_CUBES = 64

#: OCSes per superpod: 6 faces x 16 positions / 2 (+/- share an OCS).
NUM_OCSES = len(DIMS) * FACE_PORTS


def ocs_index(dim: str, face_pos: int) -> int:
    """OCS serving (dimension, face position)."""
    if dim not in DIMS:
        raise ConfigurationError(f"dim must be one of {DIMS}, got {dim!r}")
    if not 0 <= face_pos < FACE_PORTS:
        raise ConfigurationError(f"face position {face_pos} out of range")
    return DIMS.index(dim) * FACE_PORTS + face_pos


@dataclass
class Superpod:
    """A 4096-chip TPU v4 superpod with a reconfigurable lightwave fabric.

    Args:
        detailed_optics: build full Palomar device models (slower) instead
            of map-only switches.
    """

    num_cubes: int = NUM_CUBES
    detailed_optics: bool = False
    seed: int = 0
    manager: FabricManager = field(default_factory=FabricManager)
    cubes: List[Cube] = field(default_factory=list)
    _slices: Dict[SliceId, SliceTopology] = field(default_factory=dict, repr=False)
    _allocated: Dict[CubeId, SliceId] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.num_cubes <= PALOMAR_RADIX:
            raise ConfigurationError(
                f"cube count must be in [1, {PALOMAR_RADIX}], got {self.num_cubes}"
            )
        if not self.cubes:
            self.cubes = [Cube(CubeId(i)) for i in range(self.num_cubes)]
        if len(self.cubes) != self.num_cubes:
            raise ConfigurationError("cube list does not match num_cubes")
        for i in range(NUM_OCSES):
            if self.detailed_optics:
                switch = PalomarOcs.build(name=f"ocs-{i}", seed=self.seed + i)
            else:
                switch = SimpleSwitch(PALOMAR_RADIX)
            self.manager.add_switch(OcsId(i), switch)

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #

    def cube(self, cube_id: CubeId) -> Cube:
        if not 0 <= cube_id.index < self.num_cubes:
            raise TopologyError(f"unknown cube {cube_id}")
        return self.cubes[cube_id.index]

    @property
    def num_chips(self) -> int:
        return self.num_cubes * 64

    def allocated_cubes(self) -> Set[CubeId]:
        return set(self._allocated)

    def free_cubes(self) -> List[CubeId]:
        """Unallocated cubes, ascending."""
        return [
            c.cube_id for c in self.cubes if c.cube_id not in self._allocated
        ]

    def healthy_free_cubes(self) -> List[CubeId]:
        """Unallocated cubes whose 16 hosts are all up."""
        return [
            c.cube_id
            for c in self.cubes
            if c.cube_id not in self._allocated and c.healthy
        ]

    def slices(self) -> Tuple[SliceTopology, ...]:
        return tuple(self._slices[k] for k in sorted(self._slices))

    def slice(self, slice_id: SliceId) -> SliceTopology:
        try:
            return self._slices[slice_id]
        except KeyError:
            raise TopologyError(f"unknown slice {slice_id}") from None

    # ------------------------------------------------------------------ #
    # Slice configuration
    # ------------------------------------------------------------------ #

    def configure_slice(self, topology: SliceTopology) -> float:
        """Program the fabric to realize ``topology``; returns duration (ms).

        Every cube must be free and healthy.  Running slices are untouched
        (their circuits appear unchanged in the per-OCS hitless plans).
        """
        if topology.slice_id in self._slices:
            raise SchedulingError(f"slice {topology.slice_id} already configured")
        for cube_id in topology.cube_ids:
            if cube_id in self._allocated:
                raise SchedulingError(
                    f"{cube_id} is already allocated to {self._allocated[cube_id]}"
                )
            if not self.cube(cube_id).healthy:
                raise SchedulingError(f"{cube_id} is unhealthy")
            if cube_id.index >= self.num_cubes:
                raise CapacityError(f"{cube_id} outside this pod")

        targets = self._targets_with(add=[topology])
        duration = self.manager.reconfigure(targets)
        self._slices[topology.slice_id] = topology
        for cube_id in topology.cube_ids:
            self._allocated[cube_id] = topology.slice_id
        return duration

    def release_slice(self, slice_id: SliceId) -> float:
        """Tear down a slice's circuits; returns duration (ms)."""
        topology = self.slice(slice_id)
        targets = self._targets_with(remove=[topology])
        duration = self.manager.reconfigure(targets)
        del self._slices[slice_id]
        for cube_id in topology.cube_ids:
            del self._allocated[cube_id]
        return duration

    def apply_batch(
        self,
        add: Sequence[SliceTopology] = (),
        remove: Sequence[SliceId] = (),
    ) -> float:
        """Apply several slice changes in ONE fabric transaction.

        The cluster scheduler batches placement decisions (§4.2.4): every
        OCS sees a single hitless plan covering all additions and
        removals, so the whole batch costs one mirror-settle round instead
        of one per slice.  Validation runs up front; a bad batch changes
        nothing.
        """
        removals = [self.slice(sid) for sid in remove]
        removed_cubes = {c for t in removals for c in t.cube_ids}
        seen_new: Set[CubeId] = set()
        for topology in add:
            if topology.slice_id in self._slices and topology.slice_id not in set(remove):
                raise SchedulingError(f"slice {topology.slice_id} already configured")
            for cube_id in topology.cube_ids:
                if cube_id in seen_new:
                    raise SchedulingError(f"{cube_id} appears in two new slices")
                seen_new.add(cube_id)
                allocated_to = self._allocated.get(cube_id)
                if allocated_to is not None and allocated_to not in set(remove):
                    raise SchedulingError(
                        f"{cube_id} is already allocated to {allocated_to}"
                    )
                if not self.cube(cube_id).healthy:
                    raise SchedulingError(f"{cube_id} is unhealthy")
        targets = self._targets_with(add=list(add), remove=removals)
        duration = self.manager.reconfigure(targets)
        for sid, topology in zip(remove, removals):
            del self._slices[sid]
            for cube_id in topology.cube_ids:
                del self._allocated[cube_id]
        for topology in add:
            self._slices[topology.slice_id] = topology
            for cube_id in topology.cube_ids:
                self._allocated[cube_id] = topology.slice_id
        return duration

    def swap_cube(
        self, slice_id: SliceId, bad: CubeId, replacement: Optional[CubeId] = None
    ) -> SliceTopology:
        """Replace one cube of a running slice (the availability lever).

        The replacement must be free and healthy; defaults to the first
        such cube.  The slice's other circuits are preserved where the
        cube-level pattern is unchanged.
        """
        topology = self.slice(slice_id)
        if bad not in topology.cube_ids:
            raise SchedulingError(f"{bad} is not part of {slice_id}")
        if replacement is None:
            candidates = self.healthy_free_cubes()
            if not candidates:
                raise CapacityError("no healthy spare cube available")
            replacement = candidates[0]
        if replacement in self._allocated:
            raise SchedulingError(f"{replacement} is already allocated")
        if not self.cube(replacement).healthy:
            raise SchedulingError(f"{replacement} is unhealthy")
        new_assignment = tuple(
            (coord, replacement if cid == bad else cid)
            for coord, cid in topology.assignment
        )
        new_topology = SliceTopology(
            slice_id=slice_id,
            shape_cubes=topology.shape_cubes,
            assignment=new_assignment,
        )
        targets = self._targets_with(remove=[topology], add=[new_topology])
        self.manager.reconfigure(targets)
        self._slices[slice_id] = new_topology
        del self._allocated[bad]
        self._allocated[replacement] = slice_id
        return new_topology

    # ------------------------------------------------------------------ #
    # Target construction
    # ------------------------------------------------------------------ #

    def _slice_circuits(self, topology: SliceTopology) -> Dict[str, Set[Tuple[int, int]]]:
        """Per-dimension cube-level circuits: {dim: {(north, south)}}."""
        out: Dict[str, Set[Tuple[int, int]]] = {d: set() for d in DIMS}
        for dim, a, b in topology.inter_cube_links():
            out[dim].add((a.index, b.index))
        return out

    def _targets_with(
        self,
        add: Sequence[SliceTopology] = (),
        remove: Sequence[SliceTopology] = (),
    ) -> Dict[OcsId, CrossConnectMap]:
        """Current state plus/minus slices' circuits, for all 48 OCSes."""
        added: Dict[str, Set[Tuple[int, int]]] = {d: set() for d in DIMS}
        removed: Dict[str, Set[Tuple[int, int]]] = {d: set() for d in DIMS}
        for topo in add:
            for dim, circuits in self._slice_circuits(topo).items():
                added[dim] |= circuits
        for topo in remove:
            for dim, circuits in self._slice_circuits(topo).items():
                removed[dim] |= circuits
        targets: Dict[OcsId, CrossConnectMap] = {}
        for dim in DIMS:
            for pos in range(FACE_PORTS):
                oid = OcsId(ocs_index(dim, pos))
                current = self.manager.switch(oid).state
                circuits = set(current.circuits)
                circuits -= removed[dim]
                circuits |= added[dim]
                targets[oid] = CrossConnectMap.from_circuits(
                    PALOMAR_RADIX, dict(sorted(circuits))
                )
        return targets

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def topology_graph(self, slice_id: SliceId, level: str = "cube"):
        """The slice's connectivity as a networkx graph.

        ``level="cube"`` yields one node per cube with torus edges between
        them; ``level="chip"`` expands to the full chip-level torus
        (intra-cube electrical edges plus the optical inter-cube edges).
        Useful for adopters who want to run their own graph analyses.
        """
        import networkx as nx

        topology = self.slice(slice_id)
        g = nx.MultiGraph() if level == "cube" else nx.Graph()
        if level == "cube":
            for coord, cid in topology.assignment:
                g.add_node(cid, coord=coord)
            for dim, a, b in topology.inter_cube_links():
                g.add_edge(a, b, dim=dim, kind="optical")
            return g
        if level != "chip":
            raise ConfigurationError(f"level must be 'cube' or 'chip', got {level!r}")
        sx, sy, sz = topology.chip_shape
        wrap = topology.wrap
        for x in range(sx):
            for y in range(sy):
                for z in range(sz):
                    g.add_node((x, y, z))
        for x in range(sx):
            for y in range(sy):
                for z in range(sz):
                    for axis, extent in ((0, sx), (1, sy), (2, sz)):
                        coord = [x, y, z]
                        if coord[axis] + 1 < extent:
                            nxt = list(coord)
                            nxt[axis] += 1
                        elif wrap and extent > 1:
                            nxt = list(coord)
                            nxt[axis] = 0
                        else:
                            continue
                        crosses = (coord[axis] // 4) != (nxt[axis] // 4) or (
                            coord[axis] + 1 == extent and nxt[axis] == 0 and extent > 4
                        )
                        g.add_edge(
                            tuple(coord),
                            tuple(nxt),
                            kind="optical" if crosses else "electrical",
                        )
        return g

    def circuits_for_dim(self, dim: str) -> Set[Tuple[int, int]]:
        """Cube-level circuits currently programmed for ``dim``."""
        oid = OcsId(ocs_index(dim, 0))
        return set(self.manager.switch(oid).state.circuits)

    def total_circuits(self) -> int:
        return self.manager.num_circuits

    def utilization(self) -> float:
        """Fraction of cubes currently allocated to slices."""
        return len(self._allocated) / self.num_cubes

    def __str__(self) -> str:
        return (
            f"Superpod({self.num_cubes} cubes, {len(self._slices)} slices, "
            f"util {self.utilization():.0%})"
        )
