"""Higher-dimensional tori: the §6 future-work scaling study.

§6: "a different use case is supporting higher-dimensional topologies
such as a 4D or 6D torus that has a larger bisection bandwidth, lower
latency and greater scalability compared to a 3D torus."

This module generalizes the 3D metrics of :mod:`repro.tpu.routing` to an
arbitrary number of dimensions and quantifies the claim: for a fixed chip
count and fixed per-chip link budget, higher-dimensional near-cubic tori
shorten the diameter and raise bisection — at the price of more ports per
chip (2 per dimension) and correspondingly more OCSes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import ConfigurationError

Shape = Tuple[int, ...]


def _check_shape(shape: Sequence[int]) -> Shape:
    if not shape or any(s <= 0 for s in shape):
        raise ConfigurationError(f"shape must be positive extents, got {shape}")
    return tuple(int(s) for s in shape)


def torus_nd_num_chips(shape: Sequence[int]) -> int:
    shape = _check_shape(shape)
    n = 1
    for s in shape:
        n *= s
    return n


def torus_nd_diameter(shape: Sequence[int]) -> int:
    """Max shortest-path hops on the N-D torus."""
    return sum(s // 2 for s in _check_shape(shape))


def torus_nd_average_hops(shape: Sequence[int]) -> float:
    """Mean shortest-path distance between distinct chips (closed form)."""
    shape = _check_shape(shape)

    def ring_mean(k: int) -> float:
        if k % 2 == 0:
            return k / 4.0
        return (k * k - 1.0) / (4.0 * k)

    n = torus_nd_num_chips(shape)
    if n == 1:
        return 0.0
    return sum(ring_mean(s) for s in shape) * n / (n - 1)


def torus_nd_bisection_links(shape: Sequence[int]) -> int:
    """Links crossing the worst-case bisection (cut the longest dim)."""
    shape = _check_shape(shape)
    d_max = max(shape)
    rings = torus_nd_num_chips(shape) // d_max
    crossings = 2 if d_max > 2 else d_max
    return rings * crossings


def torus_nd_links_per_chip(shape: Sequence[int]) -> int:
    """ICI ports per chip: two per dimension with extent > 1 (a dimension
    of extent 1 degenerates to a self-loop and needs no real port pair)."""
    shape = _check_shape(shape)
    return 2 * sum(1 for s in shape if s > 1)


def near_cubic_shape(num_chips: int, dims: int) -> Shape:
    """The most balanced ``dims``-dimensional factorization of ``num_chips``.

    Greedy: repeatedly split off the divisor closest to the remaining
    geometric mean.
    """
    if num_chips <= 0 or dims <= 0:
        raise ConfigurationError("chips and dims must be positive")
    shape: List[int] = []
    remaining = num_chips
    for i in range(dims, 1, -1):
        target = remaining ** (1.0 / i)
        best = 1
        for d in range(1, remaining + 1):
            if remaining % d == 0 and abs(d - target) < abs(best - target):
                best = d
        shape.append(best)
        remaining //= best
    shape.append(remaining)
    return tuple(sorted(shape))


@dataclass(frozen=True)
class TorusComparison:
    """Metrics of one torus dimensionality at fixed chip count."""

    dims: int
    shape: Shape
    num_chips: int
    diameter: int
    average_hops: float
    bisection_links: int
    links_per_chip: int

    @property
    def bisection_per_chip(self) -> float:
        """Bisection links normalized by chip count (scale-free)."""
        return self.bisection_links / self.num_chips


def compare_dimensionalities(
    num_chips: int, dims_options: Sequence[int] = (2, 3, 4, 6)
) -> Dict[int, TorusComparison]:
    """§6's claim, quantified: metrics per dimensionality at fixed chips."""
    out: Dict[int, TorusComparison] = {}
    for dims in dims_options:
        shape = near_cubic_shape(num_chips, dims)
        out[dims] = TorusComparison(
            dims=dims,
            shape=shape,
            num_chips=num_chips,
            diameter=torus_nd_diameter(shape),
            average_hops=torus_nd_average_hops(shape),
            bisection_links=torus_nd_bisection_links(shape),
            links_per_chip=torus_nd_links_per_chip(shape),
        )
    return out


def ocses_for_torus(
    shape: Sequence[int], cube_edge: int = 4, face_positions: int = 16
) -> int:
    """OCS count for a cube-composed N-D torus.

    Generalizes Appendix A's 3D arithmetic: one OCS per (dimension, face
    position), with the "+"/"-" faces of each dimension sharing an OCS.
    A 4x4x4x4 pod of 4-chip-edge hypercubes would need 4 x 16 = 64 OCSes
    per cube layer -- the port-count pressure behind §6's 300x300 OCS
    development.
    """
    shape = _check_shape(shape)
    del cube_edge  # geometry fixed by face_positions; kept for clarity
    return len(shape) * face_positions
