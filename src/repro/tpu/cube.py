"""The 4x4x4 elemental cube: one rack of 64 TPUs with optical faces.

Fig 14 / Appendix A: chips within a cube are statically wired electrically;
each of the six faces exposes 4x4 = 16 optical links, and the "+"/"-" face
pair of every (dimension, face-position) combination lands on the same OCS
-- 6 x 16 / 2 = 48 OCS connections per cube.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.errors import ConfigurationError
from repro.core.ids import CubeId
from repro.tpu.chip import CHIPS_PER_HOST, TpuChip, TpuHost

#: Chips per cube edge.
CUBE_DIM = 4

#: Chips per cube.
CHIPS_PER_CUBE = CUBE_DIM ** 3

#: Hosts per cube.
HOSTS_PER_CUBE = CHIPS_PER_CUBE // CHIPS_PER_HOST

#: Optical links per cube face (4x4).
FACE_PORTS = CUBE_DIM * CUBE_DIM

#: Torus dimensions.
DIMS = ("x", "y", "z")

#: Distinct OCS connections per cube: one per (dimension, face position).
OCS_CONNECTIONS_PER_CUBE = len(DIMS) * FACE_PORTS


@dataclass
class Cube:
    """One elemental 4x4x4 cube (a single rack)."""

    cube_id: CubeId
    hosts: List[TpuHost] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.hosts:
            self.hosts = [
                TpuHost(cube_index=self.cube_id.index, index=i)
                for i in range(HOSTS_PER_CUBE)
            ]
        if len(self.hosts) != HOSTS_PER_CUBE:
            raise ConfigurationError(
                f"cube needs exactly {HOSTS_PER_CUBE} hosts, got {len(self.hosts)}"
            )

    # ------------------------------------------------------------------ #
    # Chips
    # ------------------------------------------------------------------ #

    def chips(self) -> List[TpuChip]:
        """All 64 chips with their intra-cube coordinates."""
        return [
            TpuChip(self.cube_id.index, x, y, z)
            for z in range(CUBE_DIM)
            for y in range(CUBE_DIM)
            for x in range(CUBE_DIM)
        ]

    def chip_at(self, x: int, y: int, z: int) -> TpuChip:
        return TpuChip(self.cube_id.index, x, y, z)

    # ------------------------------------------------------------------ #
    # Faces
    # ------------------------------------------------------------------ #

    @staticmethod
    def face_positions() -> List[Tuple[int, int]]:
        """The 16 (a, b) positions on any face, row-major."""
        return [(a, b) for b in range(CUBE_DIM) for a in range(CUBE_DIM)]

    def face_chips(self, dim: str, sign: int) -> List[TpuChip]:
        """Chips on the given face, ordered to match :meth:`face_positions`.

        ``dim`` in {'x','y','z'}; ``sign`` +1 for the far face (index 3),
        -1 for the near face (index 0).  Position (a, b) enumerates the two
        non-``dim`` coordinates in dimension order.
        """
        if dim not in DIMS:
            raise ConfigurationError(f"dim must be one of {DIMS}, got {dim!r}")
        if sign not in (1, -1):
            raise ConfigurationError(f"sign must be +1 or -1, got {sign}")
        fixed = CUBE_DIM - 1 if sign == 1 else 0
        out: List[TpuChip] = []
        for a, b in self.face_positions():
            if dim == "x":
                out.append(self.chip_at(fixed, a, b))
            elif dim == "y":
                out.append(self.chip_at(a, fixed, b))
            else:
                out.append(self.chip_at(a, b, fixed))
        return out

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #

    @property
    def healthy(self) -> bool:
        """A cube is usable only when all 16 hosts are up (§4.2.2)."""
        return all(h.healthy for h in self.hosts)

    def fail_host(self, index: int) -> None:
        self._host(index).healthy = False

    def repair_host(self, index: int) -> None:
        self._host(index).healthy = True

    def _host(self, index: int) -> TpuHost:
        if not 0 <= index < len(self.hosts):
            raise ConfigurationError(
                f"host {index} out of range [0, {len(self.hosts)})"
            )
        return self.hosts[index]

    def __str__(self) -> str:
        return f"Cube({self.cube_id}, healthy={self.healthy})"
