"""Core primitives shared by every subsystem.

The core package holds the vocabulary of the reproduction: physical units
(:mod:`repro.core.units`), typed identifiers (:mod:`repro.core.ids`), the
exception hierarchy (:mod:`repro.core.errors`), port/link primitives
(:mod:`repro.core.topology`), OCS cross-connect maps
(:mod:`repro.core.crossconnect`), reconfiguration planning
(:mod:`repro.core.reconfig`), and the multi-OCS fabric manager
(:mod:`repro.core.fabric_manager`).
"""

from repro.core.crossconnect import CrossConnectMap
from repro.core.ids import BlockId, CubeId, JobId, LinkId, OcsId, PortId, SliceId
from repro.core.reconfig import ReconfigPlan, plan_reconfiguration
from repro.core.topology import Direction, Endpoint, Link, Port
from repro.core.units import (
    db_to_linear,
    dbm_to_mw,
    dbm_to_w,
    linear_to_db,
    mw_to_dbm,
    sum_powers_dbm,
    w_to_dbm,
)

__all__ = [
    "CrossConnectMap",
    "ReconfigPlan",
    "plan_reconfiguration",
    "Direction",
    "Endpoint",
    "Link",
    "Port",
    "OcsId",
    "PortId",
    "LinkId",
    "CubeId",
    "BlockId",
    "JobId",
    "SliceId",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_mw",
    "mw_to_dbm",
    "dbm_to_w",
    "w_to_dbm",
    "sum_powers_dbm",
]
