"""The fabric-manager control plane: programming circuits across many OCSes.

The paper integrates OCSes into the same control/monitoring infrastructure
as electrical switches (§3.2.2).  :class:`FabricManager` is the
reproduction's stand-in for that control plane: it owns a set of switch
devices (anything satisfying :class:`SwitchLike`), a table of *logical
links* (named end-to-end connections), and executes multi-OCS
reconfiguration transactions built from hitless per-OCS plans.

The manager is deliberately independent of the Palomar physics model so it
can drive both the detailed :class:`repro.ocs.palomar.PalomarOcs` and
lightweight map-only switches in tests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Tuple

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import (
    ConfigurationError,
    CrossConnectError,
    PartialTransactionError,
    TopologyError,
)
from repro.core.ids import LinkId, OcsId
from repro.core.reconfig import ReconfigPlan, ReconfigStats, plan_reconfiguration
from repro.obs import NULL_OBS, Observability


class SwitchLike(Protocol):
    """Minimal interface the fabric manager needs from a switch device."""

    @property
    def radix(self) -> int:
        """Number of duplex ports per side."""

    @property
    def state(self) -> CrossConnectMap:
        """Current cross-connect state (live view)."""

    def apply_plan(self, plan: ReconfigPlan) -> float:
        """Execute a reconfiguration plan; return its duration in ms."""


@dataclass
class SimpleSwitch:
    """A map-only switch used by tests and by the pure control-plane paths."""

    _radix: int
    _state: CrossConnectMap = field(init=False)

    def __post_init__(self) -> None:
        self._state = CrossConnectMap(self._radix)

    @property
    def radix(self) -> int:
        return self._radix

    @property
    def state(self) -> CrossConnectMap:
        return self._state

    def apply_plan(self, plan: ReconfigPlan) -> float:
        duration = plan.duration_ms()
        plan.apply(self._state)
        return duration


@dataclass(frozen=True)
class LogicalLink:
    """A named end-to-end connection realized by one OCS circuit."""

    link_id: LinkId
    ocs: OcsId
    north: int
    south: int

    def __str__(self) -> str:
        return f"{self.link_id}@{self.ocs}[N{self.north}<->S{self.south}]"


class FabricManager:
    """Central controller for a fleet of optical circuit switches.

    Typical use::

        mgr = FabricManager()
        mgr.add_switch(OcsId(0), PalomarOcs.build(seed=1))
        mgr.establish(LinkId("cubeA-cubeB"), OcsId(0), north=3, south=41)
        ...
        mgr.reconfigure({OcsId(0): target_map})
    """

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self._switches: Dict[OcsId, SwitchLike] = {}
        self._links: Dict[LinkId, LogicalLink] = {}
        self.stats = ReconfigStats()
        #: Observability bundle; NULL_OBS (shared no-op) when not supplied,
        #: so the instrumented paths cost one no-op call each.
        self.obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #

    def add_switch(self, ocs_id: OcsId, switch: SwitchLike) -> None:
        """Register a switch under ``ocs_id``."""
        if ocs_id in self._switches:
            raise ConfigurationError(f"{ocs_id} already registered")
        self._switches[ocs_id] = switch

    def switch(self, ocs_id: OcsId) -> SwitchLike:
        """Return the registered switch for ``ocs_id``."""
        try:
            return self._switches[ocs_id]
        except KeyError:
            raise TopologyError(f"unknown switch {ocs_id}") from None

    @property
    def switch_ids(self) -> Tuple[OcsId, ...]:
        return tuple(sorted(self._switches))

    @property
    def num_circuits(self) -> int:
        """Total circuits established across all switches."""
        return sum(sw.state.num_circuits for sw in self._switches.values())

    # ------------------------------------------------------------------ #
    # Logical links
    # ------------------------------------------------------------------ #

    def establish(self, link_id: LinkId, ocs_id: OcsId, north: int, south: int) -> LogicalLink:
        """Create one circuit and record it as a logical link."""
        if link_id in self._links:
            raise ConfigurationError(f"link {link_id} already exists")
        sw = self.switch(ocs_id)
        sw.state.connect(north, south)
        link = LogicalLink(link_id, ocs_id, north, south)
        self._links[link_id] = link
        self.obs.metrics.counter("fabric.link.establish").inc()
        return link

    def adopt_link(self, link_id: LinkId, ocs_id: OcsId, north: int, south: int) -> LogicalLink:
        """Record a logical link for a circuit that already exists.

        Used after a transaction established the circuit through a
        reconfiguration plan rather than :meth:`establish`.
        """
        if link_id in self._links:
            raise ConfigurationError(f"link {link_id} already exists")
        sw = self.switch(ocs_id)
        if sw.state.south_of(north) != south:
            raise CrossConnectError(
                f"{ocs_id}: no circuit N{north} -> S{south} to adopt for {link_id}"
            )
        link = LogicalLink(link_id, ocs_id, north, south)
        self._links[link_id] = link
        return link

    def teardown(self, link_id: LinkId) -> None:
        """Destroy a logical link and its circuit.

        Validates first, then mutates: the circuit is disconnected before
        the logical-link record is dropped, so a failure (unknown switch,
        circuit already gone) leaves the record in place where
        :meth:`verify_links` and the reconciler can still see the drift.
        """
        link = self._links.get(link_id)
        if link is None:
            raise TopologyError(f"unknown link {link_id}")
        sw = self.switch(link.ocs)  # may raise; record intentionally kept
        if sw.state.south_of(link.north) != link.south:
            raise CrossConnectError(
                f"{link_id}: circuit N{link.north} -> S{link.south} not present "
                f"on {link.ocs} (drift); record kept for reconciliation"
            )
        sw.state.disconnect(link.north)
        del self._links[link_id]
        self.obs.metrics.counter("fabric.link.teardown").inc()

    def link(self, link_id: LinkId) -> LogicalLink:
        """Look up a logical link by id."""
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(f"unknown link {link_id}") from None

    @property
    def links(self) -> Tuple[LogicalLink, ...]:
        return tuple(self._links[k] for k in sorted(self._links))

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #

    def plan(self, targets: Mapping[OcsId, CrossConnectMap]) -> Dict[OcsId, ReconfigPlan]:
        """Compute per-switch hitless plans toward the given target maps."""
        plans: Dict[OcsId, ReconfigPlan] = {}
        for ocs_id, target in targets.items():
            sw = self.switch(ocs_id)
            if target.radix != sw.radix:
                raise CrossConnectError(
                    f"{ocs_id}: target radix {target.radix} != switch radix {sw.radix}"
                )
            plans[ocs_id] = plan_reconfiguration(sw.state, target)
        return plans

    def reconfigure(self, targets: Mapping[OcsId, CrossConnectMap]) -> float:
        """Atomically drive a set of switches to target maps.

        All plans are computed first (so a bad target aborts the whole
        transaction with no partial state), then applied.  If a switch's
        ``apply_plan`` raises mid-transaction, every switch already
        programmed is restored from the pre-transaction snapshot and a
        :class:`~repro.core.errors.PartialTransactionError` is raised
        listing the applied and unapplied switches.  Switches reconfigure
        in parallel in the real system; the returned duration is
        therefore the *maximum* per-switch duration, not the sum.
        """
        plans = self.plan(targets)
        order = sorted(plans)
        pre_state = {ocs_id: self.switch(ocs_id).state.copy() for ocs_id in order}
        applied: List[OcsId] = []
        max_duration = 0.0
        with self.obs.tracer.span(
            "fabric.reconfigure", switches=len(order)
        ) as span:
            for i, ocs_id in enumerate(order):
                try:
                    duration = self.apply_switch_plan(ocs_id, plans[ocs_id])
                except Exception as err:
                    rolled_back = self._restore_applied(applied, pre_state)
                    self.obs.metrics.counter("fabric.reconfig.rollbacks").inc()
                    span.set_attr("rolled_back", rolled_back)
                    raise PartialTransactionError(
                        f"programming {ocs_id} raised mid-transaction ({err}); "
                        f"applied switches {'restored' if rolled_back else 'NOT restored'}",
                        ocs_id=ocs_id,
                        applied=applied,
                        unapplied=order[i:],
                        rolled_back=rolled_back,
                    ) from err
                applied.append(ocs_id)
                max_duration = max(max_duration, duration)
            self.drop_stale_links()
            self.obs.metrics.counter("fabric.reconfig.commits").inc()
            # The returned latency models parallel switch programming
            # (max, not the span's serialized sum).
            self.obs.metrics.histogram("fabric.reconfig.duration_ms").observe(
                max_duration
            )
        return max_duration

    def _restore_applied(
        self, applied: List[OcsId], pre_state: Mapping[OcsId, CrossConnectMap]
    ) -> bool:
        """Drive already-applied switches back to their pre-transaction maps.

        Returns True when every switch verifiably matches its snapshot
        again; restore failures are swallowed (the caller is already
        raising) and reported as ``False``.
        """
        ok = True
        for ocs_id in reversed(applied):
            sw = self.switch(ocs_id)
            try:
                undo = plan_reconfiguration(sw.state, pre_state[ocs_id])
                if not undo.is_noop:
                    sw.apply_plan(undo)
            except Exception:
                ok = False
                continue
            if sw.state != pre_state[ocs_id]:
                ok = False
        return ok

    def apply_switch_plan(self, ocs_id: OcsId, plan: ReconfigPlan) -> float:
        """Apply one switch's plan and record statistics; returns ms.

        The building block resilient transactions retry per switch
        (:mod:`repro.faults.resilience`); callers composing several
        switch plans should finish with :meth:`drop_stale_links`.
        """
        with self.obs.tracer.span(
            "fabric.apply_plan", ocs=ocs_id, disturbed=plan.num_disturbed
        ):
            duration = self.switch(ocs_id).apply_plan(plan)
            self.obs.clock.advance(duration)
        self.stats.record(plan, duration)
        self.obs.metrics.counter("fabric.plan.applies").inc()
        self.obs.metrics.histogram("fabric.plan.duration_ms").observe(duration)
        return duration

    def drop_stale_links(self) -> None:
        """Remove logical-link records whose circuit no longer exists."""
        stale: List[LinkId] = []
        for link_id, link in self._links.items():
            sw = self._switches.get(link.ocs)
            if sw is None or sw.state.south_of(link.north) != link.south:
                stale.append(link_id)
        for link_id in stale:
            del self._links[link_id]
        if stale:
            self.obs.metrics.counter("fabric.link.dropped_stale").inc(len(stale))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[OcsId, CrossConnectMap]:
        """Deep-copy of every switch's current cross-connect state."""
        return {ocs_id: sw.state.copy() for ocs_id, sw in self._switches.items()}

    def verify_links(self) -> Tuple[LinkId, ...]:
        """Return ids of logical links whose circuit is missing or wrong."""
        bad = []
        for link_id, link in sorted(self._links.items()):
            sw = self._switches.get(link.ocs)
            if sw is None or sw.state.south_of(link.north) != link.south:
                bad.append(link_id)
        return tuple(bad)

    # ------------------------------------------------------------------ #
    # Durability (checkpoint / restore / digests)
    # ------------------------------------------------------------------ #

    def replace_links(self, links: Iterable[LogicalLink]) -> None:
        """Overwrite the logical-link table (recovery / reconciliation).

        Unlike :meth:`establish` this records intent without touching any
        switch: recovery rebuilds the table from the journal and then
        drives hardware toward it.
        """
        self._links = {link.link_id: link for link in links}

    def checkpoint(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the full control-plane state.

        Captures every switch's circuits and the logical-link table in a
        canonical (sorted) form; feed it back to :meth:`restore`, or hash
        it with :meth:`state_digest`.
        """
        return {
            "switches": {
                str(ocs_id.index): {
                    "radix": sw.radix,
                    "circuits": [[n, s] for n, s in sorted(sw.state.circuits)],
                }
                for ocs_id, sw in sorted(self._switches.items())
            },
            "links": [
                [str(link.link_id), link.ocs.index, link.north, link.south]
                for link in (self._links[k] for k in sorted(self._links))
            ],
        }

    def restore(self, snapshot: Mapping[str, object]) -> None:
        """Drive registered switches and the link table to a checkpoint.

        Every switch named in the snapshot must already be registered
        with a matching radix (devices survive a controller crash; only
        the controller's volatile state is being restored).  Hardware is
        moved with hitless plans, so circuits already in the checkpointed
        position are not disturbed.
        """
        switches: Mapping[str, Mapping[str, object]] = snapshot["switches"]  # type: ignore[assignment]
        for key, entry in sorted(switches.items()):
            ocs_id = OcsId(int(key))
            sw = self.switch(ocs_id)
            if sw.radix != entry["radix"]:
                raise ConfigurationError(
                    f"{ocs_id}: checkpoint radix {entry['radix']} != switch "
                    f"radix {sw.radix}"
                )
            target = CrossConnectMap.from_circuits(
                sw.radix, {int(n): int(s) for n, s in entry["circuits"]}
            )
            undo = plan_reconfiguration(sw.state, target)
            if not undo.is_noop:
                sw.apply_plan(undo)
        self.replace_links(
            LogicalLink(LinkId(str(name)), OcsId(int(ocs)), int(n), int(s))
            for name, ocs, n, s in snapshot["links"]  # type: ignore[union-attr]
        )

    def state_digest(self) -> str:
        """SHA-256 over the canonical checkpoint: equal digests mean the
        switch states and link tables are byte-identical."""
        payload = json.dumps(self.checkpoint(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
