"""Reconfiguration planning: hitless diffs between cross-connect maps.

The paper's key reconfiguration-flexibility requirement (§2.3) is *the
ability to keep certain connections undisturbed while making changes
elsewhere* -- job isolation.  Given a current and a target
:class:`~repro.core.crossconnect.CrossConnectMap`, the planner computes the
minimal set of circuits to break and make; circuits present in both maps
are left untouched, so jobs whose connectivity is unchanged never see a
glitch.

The plan also estimates the reconfiguration duration.  MEMS mirrors switch
in parallel, so the duration of a batch is one mirror settle time plus a
fixed control-plane overhead -- not proportional to the number of circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.core.crossconnect import Circuit, CrossConnectMap
from repro.core.errors import CrossConnectError

#: Mirror settle time for a MEMS OCS, milliseconds (Table C.1: milliseconds).
DEFAULT_SWITCH_TIME_MS = 10.0

#: Fixed control-plane overhead per reconfiguration transaction, ms.
DEFAULT_CONTROL_OVERHEAD_MS = 5.0


@dataclass(frozen=True)
class ReconfigPlan:
    """The delta between two cross-connect maps.

    Attributes:
        breaks: circuits present now but absent from the target.
        makes: circuits absent now but present in the target.
        unchanged: circuits present in both (left physically untouched).
    """

    radix: int
    breaks: FrozenSet[Circuit]
    makes: FrozenSet[Circuit]
    unchanged: FrozenSet[Circuit]

    @property
    def is_noop(self) -> bool:
        """True when the target equals the current state."""
        return not self.breaks and not self.makes

    @property
    def num_disturbed(self) -> int:
        """Number of circuits that experience an interruption."""
        return len(self.breaks) + len(self.makes)

    def duration_ms(
        self,
        switch_time_ms: float = DEFAULT_SWITCH_TIME_MS,
        control_overhead_ms: float = DEFAULT_CONTROL_OVERHEAD_MS,
    ) -> float:
        """Wall-clock duration of applying this plan.

        Breaks and makes each take one parallel mirror-settle batch; a noop
        costs nothing.
        """
        if self.is_noop:
            return 0.0
        batches = (1 if self.breaks else 0) + (1 if self.makes else 0)
        return control_overhead_ms + batches * switch_time_ms

    def inverse(self) -> "ReconfigPlan":
        """The plan that exactly undoes this one.

        Applying a plan and then its inverse restores the starting
        :class:`~repro.core.crossconnect.CrossConnectMap` bit for bit --
        the rollback primitive of resilient transactions
        (:mod:`repro.faults.resilience`).  Unchanged circuits stay
        unchanged, so a rollback is as job-isolating as the forward plan.
        """
        return ReconfigPlan(
            radix=self.radix,
            breaks=self.makes,
            makes=self.breaks,
            unchanged=self.unchanged,
        )

    def apply(self, current: CrossConnectMap) -> None:
        """Mutate ``current`` in place to realize this plan.

        Breaks are executed before makes so freed ports become available.
        """
        if current.radix != self.radix:
            raise CrossConnectError(
                f"plan radix {self.radix} does not match map radix {current.radix}"
            )
        for north, south in sorted(self.breaks):
            freed = current.disconnect(north)
            if freed != south:
                raise CrossConnectError(
                    f"plan expected north {north} -> south {south}, found {freed}"
                )
        for north, south in sorted(self.makes):
            current.connect(north, south)


def plan_reconfiguration(
    current: CrossConnectMap, target: CrossConnectMap
) -> ReconfigPlan:
    """Compute the hitless delta taking ``current`` to ``target``.

    The returned plan touches exactly the symmetric difference of the two
    circuit sets; shared circuits are reported in ``unchanged``.
    """
    if current.radix != target.radix:
        raise CrossConnectError(
            f"cannot plan between radix {current.radix} and {target.radix}"
        )
    now = current.circuits
    want = target.circuits
    return ReconfigPlan(
        radix=current.radix,
        breaks=frozenset(now - want),
        makes=frozenset(want - now),
        unchanged=frozenset(now & want),
    )


@dataclass
class ReconfigStats:
    """Running statistics over a sequence of reconfigurations."""

    transactions: int = 0
    circuits_broken: int = 0
    circuits_made: int = 0
    circuits_preserved: int = 0
    total_duration_ms: float = 0.0
    _durations: list = field(default_factory=list, repr=False)

    def record(self, plan: ReconfigPlan, duration_ms: float) -> None:
        """Accumulate one executed plan."""
        self.transactions += 1
        self.circuits_broken += len(plan.breaks)
        self.circuits_made += len(plan.makes)
        self.circuits_preserved += len(plan.unchanged)
        self.total_duration_ms += duration_ms
        self._durations.append(duration_ms)

    @property
    def mean_duration_ms(self) -> float:
        return self.total_duration_ms / self.transactions if self.transactions else 0.0

    @property
    def hitless_fraction(self) -> float:
        """Fraction of all touched-or-preserved circuits left undisturbed."""
        total = self.circuits_broken + self.circuits_made + self.circuits_preserved
        return self.circuits_preserved / total if total else 1.0
