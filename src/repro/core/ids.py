"""Typed identifiers for devices, ports, and jobs.

Plain strings invite mixing up an OCS name with a cube name; these small
frozen dataclasses make identifiers self-describing, hashable, and sortable
while staying cheap.  Each wraps a string ``name`` (or integer coordinates
for :class:`CubeId`) and renders a stable prefix in ``str()``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class OcsId:
    """Identifier of one optical circuit switch, e.g. ``ocs-17``."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"OCS index must be non-negative, got {self.index}")

    def __str__(self) -> str:
        return f"ocs-{self.index}"


@dataclass(frozen=True, order=True)
class PortId:
    """Identifier of one OCS port: side 'N' (north) or 'S' (south) + index."""

    side: str
    index: int

    def __post_init__(self) -> None:
        if self.side not in ("N", "S"):
            raise ValueError(f"port side must be 'N' or 'S', got {self.side!r}")
        if self.index < 0:
            raise ValueError(f"port index must be non-negative, got {self.index}")

    def __str__(self) -> str:
        return f"{self.side}{self.index}"


@dataclass(frozen=True, order=True)
class LinkId:
    """Identifier of one logical (bidirectional) link in a fabric."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class CubeId:
    """Identifier of a 4x4x4 TPU cube by its index within the superpod."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"cube index must be non-negative, got {self.index}")

    def __str__(self) -> str:
        return f"cube-{self.index:02d}"


@dataclass(frozen=True, order=True)
class BlockId:
    """Identifier of a DCN aggregation block."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"block index must be non-negative, got {self.index}")

    def __str__(self) -> str:
        return f"ab-{self.index:02d}"


@dataclass(frozen=True, order=True)
class JobId:
    """Identifier of a scheduled training job."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class SliceId:
    """Identifier of a compute slice composed by the scheduler."""

    name: str

    def __str__(self) -> str:
        return self.name
