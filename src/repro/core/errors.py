"""Exception hierarchy for the reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A topology is malformed (bad shape, unknown port, broken invariant)."""


class CrossConnectError(TopologyError):
    """A cross-connect operation would violate the bijection invariant."""


class PortInUseError(CrossConnectError):
    """A port that is already part of a circuit was reused."""


class CapacityError(ReproError):
    """A resource request exceeds available capacity (ports, cubes, OCSes).

    Carries optional context for programmatic handling by remediation
    code: ``degraded_circuit`` is the (north, south) circuit that needed
    the capacity, ``attempted_spares`` the spare ports that were tried
    and rejected before giving up.
    """

    def __init__(
        self,
        message: str = "",
        *,
        degraded_circuit=None,
        attempted_spares=(),
    ) -> None:
        super().__init__(message)
        self.degraded_circuit = degraded_circuit
        self.attempted_spares = tuple(attempted_spares)


class SchedulingError(ReproError):
    """The scheduler cannot satisfy a slice request."""


class ServeError(ReproError):
    """The serving layer violated one of its invariants (replay
    divergence, double-terminal outcome, non-monotonic service time)."""


class LinkBudgetError(ReproError):
    """An optical path does not close its link budget."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class FaultInjectionError(ReproError):
    """A fault event is malformed or cannot be applied to its target."""


class TransactionError(ReproError):
    """A control-plane transaction exhausted its retries and was rolled back.

    Attributes:
        ocs_id: the switch whose programming could not be completed.
        attempts: RPC attempts made against that switch before giving up.
        rolled_back: whether previously-applied switches were restored to
            their exact pre-transaction state.
    """

    def __init__(
        self, message: str = "", *, ocs_id=None, attempts: int = 0, rolled_back: bool = False
    ) -> None:
        super().__init__(message)
        self.ocs_id = ocs_id
        self.attempts = attempts
        self.rolled_back = rolled_back


class PartialTransactionError(TransactionError):
    """A multi-OCS transaction failed with some switches already programmed.

    Raised by :meth:`repro.core.fabric_manager.FabricManager.reconfigure`
    when one switch's ``apply_plan`` raises mid-transaction.  The manager
    restores the already-applied switches from the pre-transaction
    snapshot before raising; ``rolled_back`` reports whether that restore
    itself succeeded.

    Attributes:
        applied: switches that had been programmed before the failure
            (and were restored when ``rolled_back`` is True).
        unapplied: switches never reached, including the failing one.
    """

    def __init__(
        self,
        message: str = "",
        *,
        ocs_id=None,
        applied=(),
        unapplied=(),
        rolled_back: bool = False,
    ) -> None:
        super().__init__(message, ocs_id=ocs_id, rolled_back=rolled_back)
        self.applied = tuple(applied)
        self.unapplied = tuple(unapplied)


class WalError(ReproError):
    """A write-ahead-log record is malformed (bad frame, checksum mismatch)."""

    def __init__(self, message: str = "", *, offset: int = -1) -> None:
        super().__init__(message)
        self.offset = offset


class RecoveryError(ReproError):
    """Controller crash recovery could not reach a consistent state."""


class IdempotencyError(ReproError):
    """An idempotency token was presented after its table entry was
    evicted: the controller can no longer tell a retry of a committed
    mutation from a new request, so re-executing would risk a silent
    double-apply.  Size ``token_table_cap`` above the maximum in-flight
    retry window instead of retrying through this error."""


class ReplicationError(ReproError):
    """Base class for replicated-control-plane failures."""


class NotLeaderError(ReplicationError):
    """A mutation was routed to a replica that is not the current leader
    (or whose lease has lapsed); redirect to the leader and retry."""


class FencingError(ReplicationError):
    """A write carried a stale fencing token (epoch): the writer was
    deposed after the write left it, and applying it would double-apply
    against the new leader's history.  The write must be rejected, never
    merged."""


class QuorumError(ReplicationError):
    """The replica group could not assemble a quorum (election or
    commit): too many peers are down, partitioned away, or promised to a
    higher epoch."""


class ControllerCrash(ReproError):
    """An injected controller crash (``FaultKind.CONTROLLER_CRASH``).

    Raised at an instrumented crash point inside the durable control
    plane; drills catch it, then recover from the WAL.

    Attributes:
        step: the instrumented step index at which the crash fired.
        label: the crash point's label (e.g. ``wal-append`` / ``hw-apply``).
    """

    def __init__(self, message: str = "", *, step: int = -1, label: str = "") -> None:
        super().__init__(message)
        self.step = step
        self.label = label
