"""Exception hierarchy for the reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A topology is malformed (bad shape, unknown port, broken invariant)."""


class CrossConnectError(TopologyError):
    """A cross-connect operation would violate the bijection invariant."""


class PortInUseError(CrossConnectError):
    """A port that is already part of a circuit was reused."""


class CapacityError(ReproError):
    """A resource request exceeds available capacity (ports, cubes, OCSes)."""


class SchedulingError(ReproError):
    """The scheduler cannot satisfy a slice request."""


class LinkBudgetError(ReproError):
    """An optical path does not close its link budget."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""
