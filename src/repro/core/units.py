"""Physical-unit helpers used throughout the optical models.

The optical-layer code works in the conventional engineering units:

- power in **dBm** (decibels relative to 1 mW) or milliwatts,
- gains/losses in **dB** (ratios),
- data rates in **Gb/s**,
- wavelengths in **nm**.

All conversions live here so the formulas in the physics modules stay
readable.  The functions accept floats or numpy arrays and return the same
shape.
"""

from __future__ import annotations

import math
from typing import Iterable, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

#: Speed of light in vacuum, meters/second.
SPEED_OF_LIGHT_M_S = 299_792_458.0

#: Planck constant, joule-seconds.
PLANCK_J_S = 6.626_070_15e-34

#: Elementary charge, coulombs.
ELEMENTARY_CHARGE_C = 1.602_176_634e-19

#: Boltzmann constant, joules/kelvin.
BOLTZMANN_J_K = 1.380_649e-23


def db_to_linear(db: ArrayLike) -> ArrayLike:
    """Convert a dB ratio to a linear power ratio (10^(dB/10))."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0) if isinstance(db, np.ndarray) else 10.0 ** (db / 10.0)


def linear_to_db(ratio: ArrayLike) -> ArrayLike:
    """Convert a linear power ratio to dB (10*log10)."""
    if isinstance(ratio, np.ndarray):
        return 10.0 * np.log10(ratio)
    if ratio <= 0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_to_mw(dbm: ArrayLike) -> ArrayLike:
    """Convert power in dBm to milliwatts."""
    return db_to_linear(dbm)


def mw_to_dbm(mw: ArrayLike) -> ArrayLike:
    """Convert power in milliwatts to dBm."""
    return linear_to_db(mw)


def dbm_to_w(dbm: ArrayLike) -> ArrayLike:
    """Convert power in dBm to watts."""
    return dbm_to_mw(dbm) * 1e-3


def w_to_dbm(watts: ArrayLike) -> ArrayLike:
    """Convert power in watts to dBm."""
    return mw_to_dbm(np.asarray(watts) * 1e3 if isinstance(watts, np.ndarray) else watts * 1e3)


def sum_powers_dbm(powers_dbm: Iterable[float]) -> float:
    """Sum incoherent optical powers expressed in dBm.

    Powers add linearly in milliwatts, so the result is
    ``mw_to_dbm(sum(dbm_to_mw(p)))``.
    """
    total_mw = sum(dbm_to_mw(p) for p in powers_dbm)
    if total_mw <= 0:
        raise ValueError("cannot sum an empty or zero power collection")
    return mw_to_dbm(total_mw)


def wavelength_nm_to_freq_thz(wavelength_nm: float) -> float:
    """Convert an optical wavelength in nm to frequency in THz."""
    if wavelength_nm <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength_nm}")
    return SPEED_OF_LIGHT_M_S / (wavelength_nm * 1e-9) / 1e12


def freq_thz_to_wavelength_nm(freq_thz: float) -> float:
    """Convert an optical frequency in THz to wavelength in nm."""
    if freq_thz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_thz}")
    return SPEED_OF_LIGHT_M_S / (freq_thz * 1e12) * 1e9


def fiber_latency_ns(length_m: float, group_index: float = 1.468) -> float:
    """Propagation latency through ``length_m`` of fiber, in nanoseconds.

    Standard single-mode fiber has a group index near 1.468, i.e. roughly
    4.9 ns per meter of 1000 m -- 4.9 us/km.
    """
    if length_m < 0:
        raise ValueError(f"length must be non-negative, got {length_m}")
    return length_m * group_index / SPEED_OF_LIGHT_M_S * 1e9


def q_from_ber(ber: float) -> float:
    """Return the Gaussian Q factor corresponding to a BER (inverse of Q(x)).

    Uses ``BER = 0.5*erfc(Q/sqrt(2))``.
    """
    from scipy.special import erfcinv

    if not 0 < ber < 0.5:
        raise ValueError(f"BER must be in (0, 0.5), got {ber}")
    return math.sqrt(2.0) * float(erfcinv(2.0 * ber))


def ber_from_q(q: float) -> float:
    """Return the BER corresponding to a Gaussian Q factor."""
    from scipy.special import erfc

    return 0.5 * float(erfc(q / math.sqrt(2.0)))
