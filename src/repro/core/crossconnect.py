"""Cross-connect maps: the programmable state of one OCS.

The Palomar OCS establishes a *bijective* partial mapping between its north
(input) and south (output) duplex ports: every north port connects to at
most one south port and vice versa, and because the optical path is
reciprocal a circuit carries traffic in both directions.

:class:`CrossConnectMap` enforces the bijection invariant on every mutation
and supports the set operations the control plane needs: diffing two maps
(for hitless reconfiguration), composing permutations, and validating
full-permutation states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.core.errors import CrossConnectError, PortInUseError

Circuit = Tuple[int, int]


@dataclass
class CrossConnectMap:
    """A partial bijection between north ports and south ports of one OCS.

    Ports are integers in ``[0, radix)`` on each side.  The map is mutable;
    use :meth:`copy` to snapshot.
    """

    radix: int
    _n_to_s: Dict[int, int] = field(default_factory=dict, repr=False)
    _s_to_n: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.radix <= 0:
            raise CrossConnectError(f"radix must be positive, got {self.radix}")
        # Validate any pre-seeded state.
        for n, s in self._n_to_s.items():
            self._check_range(n, s)
        if dict((s, n) for n, s in self._n_to_s.items()) != self._s_to_n:
            raise CrossConnectError("inconsistent seed maps: _s_to_n is not the inverse")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_circuits(cls, radix: int, circuits: Dict[int, int]) -> "CrossConnectMap":
        """Build a map from a ``{north: south}`` dict, validating bijection."""
        m = cls(radix)
        for n, s in sorted(circuits.items()):
            m.connect(n, s)
        return m

    @classmethod
    def identity(cls, radix: int) -> "CrossConnectMap":
        """Full permutation mapping every north port i to south port i."""
        return cls.from_circuits(radix, {i: i for i in range(radix)})

    def copy(self) -> "CrossConnectMap":
        """Return an independent snapshot of this map."""
        return CrossConnectMap(self.radix, dict(self._n_to_s), dict(self._s_to_n))

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _check_range(self, north: int, south: int) -> None:
        if not 0 <= north < self.radix:
            raise CrossConnectError(f"north port {north} out of range [0, {self.radix})")
        if not 0 <= south < self.radix:
            raise CrossConnectError(f"south port {south} out of range [0, {self.radix})")

    def connect(self, north: int, south: int) -> None:
        """Create the circuit ``north <-> south``.

        Raises :class:`PortInUseError` if either port already carries a
        circuit (disconnect first; the control plane never silently moves
        live circuits).
        """
        self._check_range(north, south)
        if north in self._n_to_s:
            raise PortInUseError(
                f"north port {north} already connected to south {self._n_to_s[north]}"
            )
        if south in self._s_to_n:
            raise PortInUseError(
                f"south port {south} already connected to north {self._s_to_n[south]}"
            )
        self._n_to_s[north] = south
        self._s_to_n[south] = north

    def disconnect(self, north: int) -> int:
        """Tear down the circuit on ``north``; returns the freed south port."""
        if north not in self._n_to_s:
            raise CrossConnectError(f"north port {north} has no circuit")
        south = self._n_to_s.pop(north)
        del self._s_to_n[south]
        return south

    def clear(self) -> None:
        """Tear down every circuit."""
        self._n_to_s.clear()
        self._s_to_n.clear()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def south_of(self, north: int) -> Optional[int]:
        """South port connected to ``north``, or None."""
        return self._n_to_s.get(north)

    def north_of(self, south: int) -> Optional[int]:
        """North port connected to ``south``, or None."""
        return self._s_to_n.get(south)

    @property
    def circuits(self) -> FrozenSet[Circuit]:
        """The set of (north, south) circuits currently established."""
        return frozenset(self._n_to_s.items())

    @property
    def num_circuits(self) -> int:
        return len(self._n_to_s)

    @property
    def free_north(self) -> Set[int]:
        """North ports with no circuit."""
        return set(range(self.radix)) - set(self._n_to_s)

    @property
    def free_south(self) -> Set[int]:
        """South ports with no circuit."""
        return set(range(self.radix)) - set(self._s_to_n)

    def is_full_permutation(self) -> bool:
        """True when every port on both sides carries a circuit."""
        return len(self._n_to_s) == self.radix

    def is_bijective(self) -> bool:
        """Invariant check: the map is always a partial bijection.

        Returns True; provided for property-based tests which re-verify the
        internal inverse consistency.
        """
        if len(self._n_to_s) != len(self._s_to_n):
            return False
        return all(self._s_to_n.get(s) == n for n, s in self._n_to_s.items())

    def as_permutation(self) -> Tuple[int, ...]:
        """Return the full map as a tuple ``p`` with ``p[north] = south``.

        Raises :class:`CrossConnectError` if the map is not a full
        permutation.
        """
        if not self.is_full_permutation():
            raise CrossConnectError(
                f"map has {self.num_circuits}/{self.radix} circuits; not a permutation"
            )
        return tuple(self._n_to_s[n] for n in range(self.radix))

    def compose(self, other: "CrossConnectMap") -> "CrossConnectMap":
        """Return the composition ``other ∘ self`` as a new map.

        North port ``n`` of the result maps to ``other.south_of(self.south_of(n))``
        whenever both hops exist.  Useful for reasoning about two-stage
        optical paths.
        """
        if other.radix != self.radix:
            raise CrossConnectError(
                f"cannot compose maps of radix {self.radix} and {other.radix}"
            )
        out = CrossConnectMap(self.radix)
        for n, s in self._n_to_s.items():
            s2 = other.south_of(s)
            if s2 is not None:
                out.connect(n, s2)
        return out

    def __iter__(self) -> Iterator[Circuit]:
        return iter(sorted(self._n_to_s.items()))

    def __len__(self) -> int:
        return self.num_circuits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CrossConnectMap):
            return NotImplemented
        return self.radix == other.radix and self._n_to_s == other._n_to_s

    def __str__(self) -> str:
        return f"CrossConnectMap(radix={self.radix}, circuits={self.num_circuits})"
