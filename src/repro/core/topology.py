"""Generic port/link primitives shared by fabric, DCN, and TPU models.

A *port* is one fiber attachment point on a device; an *endpoint* is a
device that terminates optical links (a cube face port, a DCN block, a
transceiver); a *link* is a logical bidirectional connection between two
endpoints, realized either directly (static fiber) or through one or more
OCS circuits.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.core.errors import TopologyError


class Direction(enum.Enum):
    """Direction of light through a port, for duplex bookkeeping."""

    TX = "tx"
    RX = "rx"
    BIDI = "bidi"


@functools.total_ordering
@dataclass(frozen=True)
class Port:
    """One fiber attachment point: ``device`` name + port ``index``.

    ``direction`` distinguishes duplex TX/RX strands from a bidirectional
    strand that carries both directions over a single fiber (the paper's
    circulator-enabled links).
    """

    device: str
    index: int
    direction: Direction = Direction.BIDI

    def __post_init__(self) -> None:
        if self.index < 0:
            raise TopologyError(f"port index must be non-negative, got {self.index}")

    def __str__(self) -> str:
        return f"{self.device}:{self.index}/{self.direction.value}"

    def _key(self) -> Tuple[str, int, str]:
        return (self.device, self.index, self.direction.value)

    def __lt__(self, other: "Port") -> bool:
        if not isinstance(other, Port):
            return NotImplemented
        return self._key() < other._key()


@dataclass
class Endpoint:
    """A device that terminates links: name plus a fixed number of ports.

    Ports are allocated lazily by :meth:`port`; the endpoint tracks which
    are attached so that wiring code can detect double-use.
    """

    name: str
    num_ports: int
    _attached: Dict[int, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise TopologyError(f"endpoint needs at least one port, got {self.num_ports}")

    def port(self, index: int, direction: Direction = Direction.BIDI) -> Port:
        """Return the :class:`Port` object for ``index`` on this endpoint."""
        if not 0 <= index < self.num_ports:
            raise TopologyError(
                f"{self.name}: port {index} out of range [0, {self.num_ports})"
            )
        return Port(self.name, index, direction)

    def attach(self, index: int, what: str) -> None:
        """Mark port ``index`` as attached to ``what`` (a cable/OCS label)."""
        if not 0 <= index < self.num_ports:
            raise TopologyError(
                f"{self.name}: port {index} out of range [0, {self.num_ports})"
            )
        if index in self._attached:
            raise TopologyError(
                f"{self.name}: port {index} already attached to {self._attached[index]}"
            )
        self._attached[index] = what

    def detach(self, index: int) -> None:
        """Remove the attachment on port ``index``."""
        if index not in self._attached:
            raise TopologyError(f"{self.name}: port {index} is not attached")
        del self._attached[index]

    def attachment(self, index: int) -> Optional[str]:
        """Return what port ``index`` is attached to, or None."""
        return self._attached.get(index)

    @property
    def free_ports(self) -> Tuple[int, ...]:
        """Indices of ports with no attachment, ascending."""
        return tuple(i for i in range(self.num_ports) if i not in self._attached)

    def __iter__(self) -> Iterator[Port]:
        for i in range(self.num_ports):
            yield self.port(i)


@dataclass(frozen=True)
class Link:
    """A logical bidirectional link between two ports.

    ``rate_gbps`` is the full-duplex data rate carried by the link and
    ``length_m`` the end-to-end fiber length (used for latency/dispersion).
    """

    a: Port
    b: Port
    rate_gbps: float = 400.0
    length_m: float = 30.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"link endpoints must differ, got {self.a} twice")
        if self.rate_gbps <= 0:
            raise TopologyError(f"rate must be positive, got {self.rate_gbps}")
        if self.length_m < 0:
            raise TopologyError(f"length must be non-negative, got {self.length_m}")

    def other(self, port: Port) -> Port:
        """Return the far-side port given one side of the link."""
        if port == self.a:
            return self.b
        if port == self.b:
            return self.a
        raise TopologyError(f"{port} is not an endpoint of this link")

    def __str__(self) -> str:
        return f"{self.a} <-> {self.b} @ {self.rate_gbps:g}G"
