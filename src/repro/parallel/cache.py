"""Content-addressed result cache for sweep tasks.

Every sweep surface in this repo is a pure function of its spec and its
seed, so a result computed once is a result computed forever -- the key
is ``sha256(version tag + canonical digest of the task spec)`` and the
value is the pickled task result (pickle round-trips floats bit-exactly,
which is what the parity tests demand of a warm cache).

Layout of an on-disk cache root::

    <root>/objects/<key>.pkl    one pickled result per key
    <root>/manifest.jsonl       one JSON record per stored entry

The manifest is append-only during normal operation; explicit
invalidation (:meth:`ResultCache.invalidate` by tag, or
:meth:`ResultCache.clear`) deletes objects and rewrites it.  Keys embed
:data:`CACHE_SCHEMA_VERSION` plus the caller's surface tag, so bumping
either orphans stale entries rather than returning them.

:meth:`ResultCache.in_memory` backs the same API with a dict of pickled
bytes -- used by the observed drill and tests, where determinism and
hermeticity matter more than persistence.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS
from repro.parallel.canon import spec_digest

#: Bump to orphan every existing cache entry (schema/semantics change).
CACHE_SCHEMA_VERSION = "repro.parallel.cache/1"


@dataclass
class CacheStats:
    """Lookup/store tallies since the cache was created."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "stores": float(self.stores),
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Content-addressed store of pickled sweep results.

    Args:
        root: directory for the on-disk layout, or None for a purely
            in-memory cache (no files are ever touched).
        obs: optional :class:`~repro.obs.Observability` bundle; lookups
            and stores land on ``sweep.cache.*`` counters labeled by the
            surface tag.
        now_fn: optional clock for manifest ``created_s`` stamps.  The
            default stamps each record with its store ordinal, so two
            runs that store the same results write byte-identical
            manifests; pass ``time.time`` to record wall-clock
            provenance instead (at the cost of that determinism).
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        obs=None,
        now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.obs = obs if obs is not None else NULL_OBS
        self._now_fn = now_fn
        self.stats = CacheStats()
        self._memory: Dict[str, bytes] = {}
        self._manifest: List[Dict[str, object]] = []
        if self.root is not None:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            self._manifest = self._read_manifest()

    @classmethod
    def in_memory(cls, obs=None) -> "ResultCache":
        """A hermetic cache backed by a dict (drills, tests)."""
        return cls(root=None, obs=obs)

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #

    @staticmethod
    def key(tag: str, spec: object) -> str:
        """Content address of one task spec under one surface tag."""
        if not tag:
            raise ConfigurationError("cache tag must be non-empty")
        return spec_digest(
            {"version": CACHE_SCHEMA_VERSION, "tag": tag, "spec": spec}
        )

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #

    def _object_path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / "objects" / f"{key}.pkl"

    def get(self, key: str, tag: str = "-") -> Tuple[bool, object]:
        """(hit, value).  A miss returns ``(False, None)``."""
        blob: Optional[bytes] = None
        if self.root is None:
            blob = self._memory.get(key)
        else:
            path = self._object_path(key)
            if path.exists():
                blob = path.read_bytes()
        if blob is None:
            self.stats.misses += 1
            self.obs.metrics.counter("sweep.cache.misses", tag=tag).inc()
            return False, None
        self.stats.hits += 1
        self.obs.metrics.counter("sweep.cache.hits", tag=tag).inc()
        return True, pickle.loads(blob)

    def put(self, key: str, value: object, tag: str = "-") -> None:
        """Store one result and append its manifest record."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record: Dict[str, object] = {
            "key": key,
            "tag": tag,
            "version": CACHE_SCHEMA_VERSION,
            "bytes": len(blob),
        }
        if self.root is None:
            self._memory[key] = blob
            self._manifest.append(record)
        else:
            # Deterministic by default: the stamp is the store ordinal,
            # not wall-clock, so same stores => same manifest bytes.
            record["created_s"] = (
                float(len(self._manifest))
                if self._now_fn is None
                else round(self._now_fn(), 3)
            )
            path = self._object_path(key)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
            self._manifest.append(record)
            with (self.root / "manifest.jsonl").open("a") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.stats.stores += 1
        self.obs.metrics.counter("sweep.cache.stores", tag=tag).inc()

    # ------------------------------------------------------------------ #
    # Manifest / invalidation
    # ------------------------------------------------------------------ #

    def _read_manifest(self) -> List[Dict[str, object]]:
        assert self.root is not None
        path = self.root / "manifest.jsonl"
        if not path.exists():
            return []
        records = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if line:
                records.append(json.loads(line))
        return records

    def entries(self, tag: Optional[str] = None) -> List[Dict[str, object]]:
        """Manifest records, optionally filtered by surface tag."""
        return [r for r in self._manifest if tag is None or r.get("tag") == tag]

    def __len__(self) -> int:
        return len(self._manifest)

    def invalidate(self, tag: Optional[str] = None) -> int:
        """Drop entries (all, or those under one tag); returns the count.

        On disk this deletes the object files and rewrites the manifest;
        lookups of the dropped keys miss afterwards.
        """
        if tag is None:
            dropped, kept = list(self._manifest), []
        else:
            dropped = [r for r in self._manifest if r.get("tag") == tag]
            kept = [r for r in self._manifest if r.get("tag") != tag]
        for record in dropped:
            key = str(record["key"])
            if self.root is None:
                self._memory.pop(key, None)
            else:
                self._object_path(key).unlink(missing_ok=True)
        self._manifest = kept
        if self.root is not None:
            path = self.root / "manifest.jsonl"
            payload = "".join(
                json.dumps(r, sort_keys=True) + "\n" for r in kept
            )
            path.write_text(payload)
        self.obs.metrics.counter(
            "sweep.cache.invalidated", tag=tag if tag is not None else "*"
        ).add(float(len(dropped)))
        return len(dropped)

    def clear(self) -> int:
        """Drop every entry."""
        return self.invalidate(tag=None)
