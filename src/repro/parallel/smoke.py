"""The CI cache-smoke gate: ``python -m repro.parallel.smoke``.

Runs one Monte-Carlo BER grid twice against an on-disk result cache --
cold, then warm through a fresh :class:`~repro.parallel.ResultCache` on
the same root (so the second run exercises real disk lookups, not the
first run's memory) -- and enforces the cache contract end to end:

1. the warm results are byte-identical to the cold ones;
2. the warm run is 100% cache hits (zero tasks computed);
3. the warm run is at least ``--min-speedup`` (default 5x) faster.

Exit code 0 when every check passes, 1 otherwise; ``--out`` writes the
measured stats as JSON for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.optics.mc_sweep import monte_carlo_ber_grid
from repro.optics.pam4 import Pam4LinkModel
from repro.parallel.cache import ResultCache
from repro.parallel.engine import SweepEngine


def run_smoke(
    cache_root: Path,
    jobs: int = 1,
    points: int = 8,
    num_symbols: int = 100_000,
    min_speedup: float = 5.0,
    seed: int = 0,
) -> dict:
    """Cold + warm sweep against ``cache_root``; returns the stats dict."""
    model = Pam4LinkModel()
    powers = np.linspace(-12.0, -6.0, points)

    def sweep(cache: ResultCache):
        engine = SweepEngine(workers=jobs, cache=cache)
        t0 = time.perf_counter()
        results = monte_carlo_ber_grid(
            model, powers, num_symbols=num_symbols, seed=seed, engine=engine
        )
        return results, time.perf_counter() - t0, engine.last_run

    cold, cold_s, cold_run = sweep(ResultCache(cache_root))
    warm, warm_s, warm_run = sweep(ResultCache(cache_root))

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    identical = pickle.dumps(list(cold)) == pickle.dumps(list(warm))
    all_hits = warm_run.cache_hits == len(powers) and warm_run.computed == 0
    return {
        "jobs": jobs,
        "points": points,
        "num_symbols": num_symbols,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(speedup, 3),
        "min_speedup": min_speedup,
        "cold_computed": cold_run.computed,
        "warm_cache_hits": warm_run.cache_hits,
        "warm_computed": warm_run.computed,
        "results_identical": identical,
        "all_hits": all_hits,
        "ok": bool(identical and all_hits and speedup >= min_speedup),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="engine workers")
    parser.add_argument("--points", type=int, default=8, help="grid points")
    parser.add_argument(
        "--symbols", type=int, default=100_000, help="MC symbols per point"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required warm-over-cold speedup",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cache root (default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write stats JSON here"
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        stats = run_smoke(
            args.cache_dir, args.jobs, args.points, args.symbols,
            args.min_speedup,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="sweep-cache-") as tmp:
            stats = run_smoke(
                Path(tmp), args.jobs, args.points, args.symbols,
                args.min_speedup,
            )

    payload = json.dumps(stats, indent=2, sort_keys=True)
    print(payload)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")
    if not stats["results_identical"]:
        print("FAIL: warm results differ from cold", file=sys.stderr)
    if not stats["all_hits"]:
        print("FAIL: warm run was not 100% cache hits", file=sys.stderr)
    if stats["speedup"] < args.min_speedup:
        print(
            f"FAIL: warm speedup {stats['speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
    return 0 if stats["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
