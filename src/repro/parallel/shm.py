"""Zero-copy ndarray shipping for :mod:`repro.parallel`: the shm arena.

Why
---

``SweepEngine.pmap`` ships chunks to workers by pickling ``(fn, items)``
through a pipe.  For plain-data task specs that is fine; for tasks
carrying large ndarrays (a shared BER grid, a fleet telemetry cube) the
parent serializes the same megabytes once per chunk and every worker
deserializes its own private copy -- shipping cost grows with
``chunks x payload`` and quickly dwarfs compute.  The arena makes array
payloads cost ``O(payload)`` once, total:

1. The parent walks the pending task specs, pulls out every ndarray at
   least :data:`DEFAULT_MIN_BYTES` big (deduplicated by object
   identity, so a grid shared by 100 tasks ships once), and packs them
   back-to-back into one :class:`multiprocessing.shared_memory.SharedMemory`
   segment.
2. Each extracted array position is replaced by a tiny picklable
   :class:`ArrayRef` placeholder; the stripped specs ship through the
   normal pipe as before.
3. Workers attach the segment by name (header + view reconstruction:
   an :class:`ArenaSpec` of ``(offset, dtype, shape)`` slots is enough
   to rebuild every array as a **read-only view** of the mapping -- no
   copy), substitute views for placeholders, and run the chunk.

Ownership rules
---------------

The *creator* (the parent) owns the segment: it alone calls
:meth:`ShmArena.unlink` (destroy), always after the pool has drained.
Workers and the serial twin only ever :meth:`ShmArena.close` (detach).
Attachments suppress CPython ``resource_tracker`` registration -- before
3.13 the tracker wrongly assumes ownership of attachments and would
destroy the segment when the first worker exits.
Views handed to tasks are read-only: a worker that wants to mutate a
shipped array must copy it, which keeps the "same bytes for every
worker" determinism contract trivially true.

The serial parity twin
----------------------

``SweepEngine(ship="shm", workers=1)`` round-trips every chunk through
pack -> spec -> attach -> restore *in-process*, so the exact
strip/restore path the pool exercises is also the path the
bit-identical serial oracle runs -- byte-level divergence cannot hide
behind the transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError

#: Arrays smaller than this ship through the ordinary pickle pipe: below
#: a page or two, placeholder bookkeeping costs more than copying.
DEFAULT_MIN_BYTES = 4096


@dataclass(frozen=True)
class ArrayRef:
    """Placeholder left where an ndarray was extracted: arena slot index."""

    slot: int


@dataclass(frozen=True)
class ArenaSlot:
    """One packed array: where it lives and how to view it."""

    offset: int
    dtype: str
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class ArenaSpec:
    """Everything a worker needs to rebuild the views: name + headers.

    Picklable and tiny -- this is what ships through the pipe instead of
    the array bytes.
    """

    name: str
    size: int
    slots: Tuple[ArenaSlot, ...]


def _attach_untracked(name: str) -> SharedMemory:
    """Attach to a segment without resource-tracker 'ownership'.

    CPython < 3.13 registers every ``SharedMemory(name=...)`` attachment
    with the resource tracker, which then unlinks the segment when the
    attaching process exits -- destroying it under the real owner (and,
    with a fork-shared tracker, un-registering after the fact clobbers
    the owner's own registration).  Suppressing registration during the
    attach leaves the owner's explicit :meth:`ShmArena.unlink` as the
    only destroy path.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class ShmArena:
    """A packed shared-memory segment of ndarrays; see module docstring."""

    def __init__(self, shm: SharedMemory, spec: ArenaSpec, owner: bool) -> None:
        self._shm = shm
        self.spec = spec
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def pack(cls, arrays: Sequence[np.ndarray]) -> "ShmArena":
        """Create a segment holding copies of ``arrays``, C-contiguous.

        The creator owns the segment and must eventually call both
        :meth:`close` and :meth:`unlink` (or use :meth:`destroy`).
        """
        if not arrays:
            raise ConfigurationError("cannot pack an empty arena")
        slots: List[ArenaSlot] = []
        offset = 0
        contiguous: List[np.ndarray] = []
        for a in arrays:
            c = np.ascontiguousarray(a)
            contiguous.append(c)
            slots.append(
                ArenaSlot(offset=offset, dtype=c.dtype.str, shape=c.shape)
            )
            offset += c.nbytes
        # A zero-byte segment is an OS error; arenas with only empty
        # arrays still need one addressable byte.
        shm = SharedMemory(create=True, size=max(offset, 1))
        spec = ArenaSpec(name=shm.name, size=max(offset, 1), slots=tuple(slots))
        for slot, c in zip(slots, contiguous):
            if c.nbytes:
                dst = np.ndarray(
                    c.shape, dtype=c.dtype, buffer=shm.buf, offset=slot.offset
                )
                dst[...] = c
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "ShmArena":
        """Attach to an existing segment by spec; attachments never unlink."""
        return cls(_attach_untracked(spec.name), spec, owner=False)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def views(self) -> List[np.ndarray]:
        """Read-only ndarray views over the mapping, one per slot, no copy.

        Views are valid only while this arena object stays referenced
        and open: dropping or closing it unmaps the segment underneath
        them.  The engine's worker-side cache and serial twin both
        uphold this; external callers must too.
        """
        if self._closed:
            raise ConfigurationError("arena is closed")
        out: List[np.ndarray] = []
        for slot in self.spec.slots:
            v = np.ndarray(
                slot.shape,
                dtype=np.dtype(slot.dtype),
                buffer=self._shm.buf,
                offset=slot.offset,
            )
            v.flags.writeable = False
            out.append(v)
        return out

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Detach this process's mapping (safe to call twice)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment.  Owner only."""
        if not self.owner:
            raise ConfigurationError("only the arena owner may unlink")
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        """Owner teardown: detach and destroy."""
        self.close()
        if self.owner:
            self.unlink()


# ---------------------------------------------------------------------- #
# Strip / restore over task specs
# ---------------------------------------------------------------------- #


def extract_arrays(
    tasks: Sequence[object], min_bytes: int = DEFAULT_MIN_BYTES
) -> Tuple[List[object], List[np.ndarray]]:
    """Replace big ndarrays in task specs with :class:`ArrayRef` markers.

    Walks dicts, lists, and tuples recursively.  Arrays are deduplicated
    by object identity: the same grid referenced by every task occupies
    one slot and ships once.  Returns the rewritten specs plus the slot
    arrays (in slot order); an empty array list means nothing qualified
    and the specs came back unchanged.
    """
    slot_of: Dict[int, int] = {}
    arrays: List[np.ndarray] = []

    def strip(obj: object) -> object:
        if isinstance(obj, np.ndarray) and obj.nbytes >= min_bytes:
            key = id(obj)
            slot = slot_of.get(key)
            if slot is None:
                slot = len(arrays)
                slot_of[key] = slot
                arrays.append(obj)
            return ArrayRef(slot)
        if isinstance(obj, dict):
            return {k: strip(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [strip(v) for v in obj]
        if isinstance(obj, tuple):
            return tuple(strip(v) for v in obj)
        return obj

    return [strip(t) for t in tasks], arrays


def restore_arrays(obj: object, views: Sequence[np.ndarray]) -> object:
    """Inverse of :func:`extract_arrays`: swap markers for arena views."""
    if isinstance(obj, ArrayRef):
        return views[obj.slot]
    if isinstance(obj, dict):
        return {k: restore_arrays(v, views) for k, v in obj.items()}
    if isinstance(obj, list):
        return [restore_arrays(v, views) for v in obj]
    if isinstance(obj, tuple):
        return tuple(restore_arrays(v, views) for v in obj)
    return obj
