"""Deterministic parallel fan-out: :meth:`SweepEngine.pmap`.

The determinism contract
------------------------

``pmap(fn, tasks, seed=s)`` returns **bit-identical results for any
worker count (1..N) and any chunk size**, because nothing that affects a
task's value depends on scheduling:

1. *Seed splitting is positional.*  Task ``i`` always receives the
   ``i``-th child of ``np.random.SeedSequence(s).spawn(len(tasks))``.
   A child's stream is fully determined by ``(s, i)`` -- not by which
   worker runs it, which chunk carries it, or how many siblings exist
   beside it in the chunk.
2. *Chunks are index ranges.*  Tasks are sharded into consecutive
   ``(index, task, seed)`` slices **after** seed assignment, so chunking
   is pure transport.
3. *Results are reassembled by index.*  Workers return
   ``(index, value)`` pairs; the parent writes them back into position.

:meth:`SweepEngine.pmap_serial` is the in-process oracle: a plain loop
over the same per-task seeds, no pool, no cache.  The property suite
(``tests/parallel/test_determinism.py``) pins ``pmap`` to it byte-for-
byte across worker counts {1, 2, 4} and random chunk sizes.

Caching
-------

Give the engine a :class:`~repro.parallel.cache.ResultCache` and a
``cache_tag`` and each task is content-addressed individually:
``key = sha256(schema version + tag + fn identity + task spec + seed
identity)``.  Warm lookups skip the pool entirely; partial hits compute
only the missing indices.  Because the per-task seed identity is part
of the key, a cached value can never be replayed under a different
stream.

Observability
-------------

With an :class:`~repro.obs.Observability` bundle attached, every call
opens a ``sweep.pmap`` span, every executed chunk lands a
``sweep.chunk`` span (serial path) or a worker-measured duration
(parallel path) on the ``sweep.chunk.duration_ms`` histogram, and the
``sweep.tasks.*`` / ``sweep.cache.*`` counters feed the NOC report and
its SLO gate.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS
from repro.parallel.cache import ResultCache
from repro.parallel.canon import fn_identity
from repro.parallel.shm import (
    DEFAULT_MIN_BYTES,
    ArenaSpec,
    ShmArena,
    extract_arrays,
    restore_arrays,
)

#: One task as shipped to a worker: (index, task, per-task seed or None).
_Item = Tuple[int, object, Optional[np.random.SeedSequence]]

_MISSING = object()


def _apply(fn: Callable, task: object, seed) -> object:
    return fn(task) if seed is None else fn(task, seed)


def _run_chunk(payload: Tuple[Callable, List[_Item]]):
    """Worker entry point: run one chunk, report wall duration (ms)."""
    fn, items = payload
    t0 = time.perf_counter()
    results = [(index, _apply(fn, task, seed)) for index, task, seed in items]
    return results, (time.perf_counter() - t0) * 1e3


#: Arenas this worker process has attached, by segment name.  A pool
#: worker attaches each arena once and holds the mapping until process
#: exit (pools are per-pmap-call, so exit promptly follows the drain);
#: keeping the mapping open also makes it safe for task results to alias
#: arena views -- they are pickled for the trip home while the mapping
#: is still live.
_ATTACHED: dict = {}


def _attached_arena(spec: ArenaSpec) -> ShmArena:
    arena = _ATTACHED.get(spec.name)
    if arena is None:
        arena = ShmArena.attach(spec)
        _ATTACHED[spec.name] = arena
    return arena


def _run_chunk_shm(payload: Tuple[Callable, ArenaSpec, List[_Item]]):
    """Worker entry point for shm shipping: attach, rebuild views, run."""
    fn, spec, items = payload
    views = _attached_arena(spec).views()
    t0 = time.perf_counter()
    results = [
        (index, _apply(fn, restore_arrays(task, views), seed))
        for index, task, seed in items
    ]
    return results, (time.perf_counter() - t0) * 1e3


@dataclass
class SweepRunStats:
    """What the last :meth:`SweepEngine.pmap` call did."""

    tasks: int = 0
    computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    chunks: int = 0
    workers: int = 1
    parallel: bool = False
    shm_arrays: int = 0
    shm_bytes: int = 0


class SweepEngine:
    """Shards task lists over a process pool, deterministically.

    Args:
        workers: process count; None means ``os.cpu_count()``.  With one
            worker (or one pending chunk) everything runs in-process --
            the serial fallback, which doubles as the parity oracle.
        chunk_size: tasks per shipped chunk; None picks
            ``ceil(pending / (workers * 4))`` so each worker sees a few
            chunks (smoothing stragglers without drowning in transport).
        cache: optional :class:`ResultCache`; enables per-task result
            caching whenever ``pmap`` is called with a ``cache_tag``.
        obs: optional observability bundle (spans, counters, histogram).
        mp_context: multiprocessing start method; defaults to ``fork``
            where available (cheap on Linux), else ``spawn``.  Parallel
            runs require ``fn`` and tasks to be picklable -- module-level
            functions and plain-data specs; the serial path has no such
            constraint.
        ship: ``"pickle"`` ships task specs whole through the pool pipe;
            ``"shm"`` extracts large ndarrays into one shared-memory
            arena per call (see :mod:`repro.parallel.shm`) and ships
            tiny placeholders instead, so a payload referenced by every
            task crosses the process boundary once instead of once per
            chunk.  Tasks with no qualifying arrays fall back to plain
            pickle shipping automatically.  Results are unaffected
            (workers return values through the normal pipe); cache keys
            are computed on the original, un-stripped specs, so a cached
            value is ship-mode independent.
        shm_min_bytes: minimum ndarray payload size worth a slot in the
            arena; smaller arrays ride the pickle pipe.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        obs=None,
        mp_context: Optional[str] = None,
        ship: str = "pickle",
        shm_min_bytes: int = DEFAULT_MIN_BYTES,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if ship not in ("pickle", "shm"):
            raise ConfigurationError(
                f"ship must be 'pickle' or 'shm', got {ship!r}"
            )
        if shm_min_bytes < 1:
            raise ConfigurationError("shm_min_bytes must be >= 1")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.cache = cache
        self.obs = obs if obs is not None else NULL_OBS
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.mp_context = mp_context
        self.ship = ship
        self.shm_min_bytes = shm_min_bytes
        self.last_run = SweepRunStats()

    # ------------------------------------------------------------------ #
    # Seed splitting
    # ------------------------------------------------------------------ #

    @staticmethod
    def task_seeds(
        seed: Optional[int], num_tasks: int
    ) -> List[Optional[np.random.SeedSequence]]:
        """The per-task seed assignment: child ``i`` of the root stream.

        This is the whole seed-splitting contract -- surfaces that need a
        serial twin outside the engine reuse it to stay bit-identical.
        """
        if seed is None:
            return [None] * num_tasks
        return list(np.random.SeedSequence(seed).spawn(num_tasks))

    # ------------------------------------------------------------------ #
    # The serial oracle
    # ------------------------------------------------------------------ #

    def pmap_serial(
        self, fn: Callable, tasks: Sequence[object], *, seed: Optional[int] = None
    ) -> List[object]:
        """Plain in-process loop with the same per-task seeds: the oracle."""
        items = list(tasks)
        seeds = self.task_seeds(seed, len(items))
        return [_apply(fn, task, s) for task, s in zip(items, seeds)]

    # ------------------------------------------------------------------ #
    # The engine
    # ------------------------------------------------------------------ #

    def pmap(
        self,
        fn: Callable,
        tasks: Sequence[object],
        *,
        seed: Optional[int] = None,
        cache_tag: Optional[str] = None,
    ) -> List[object]:
        """Deterministic parallel map; see the module docstring.

        Args:
            fn: ``fn(task)`` or, when ``seed`` is given, ``fn(task,
                seed_sequence)``.  Must be module-level/picklable for
                parallel runs.
            tasks: the task specs, one result per entry, order preserved.
            seed: root seed for positional seed splitting (None = no
                seeds are passed).
            cache_tag: surface tag enabling the per-task result cache
                (requires the engine to have been built with one).
        """
        items = list(tasks)
        n = len(items)
        seeds = self.task_seeds(seed, n)
        stats = SweepRunStats(tasks=n, workers=self.workers)
        self.last_run = stats
        obs = self.obs
        use_cache = self.cache is not None and cache_tag is not None
        tag = cache_tag or "-"

        with obs.tracer.span(
            "sweep.pmap", tasks=n, workers=self.workers, tag=tag
        ) as span:
            obs.metrics.counter("sweep.pmap.calls", tag=tag).inc()
            results: List[object] = [_MISSING] * n

            keys: List[Optional[str]] = [None] * n
            if use_cache:
                assert self.cache is not None
                identity = fn_identity(fn)
                for i, (task, s) in enumerate(zip(items, seeds)):
                    key = self.cache.key(
                        tag, {"fn": identity, "task": task, "seed": s}
                    )
                    keys[i] = key
                    hit, value = self.cache.get(key, tag=tag)
                    if hit:
                        results[i] = value
            pending = [i for i in range(n) if results[i] is _MISSING]
            if use_cache:
                assert self.cache is not None
                stats.cache_hits = n - len(pending)
                stats.cache_misses = len(pending)
                obs.metrics.counter("sweep.tasks.cached", tag=tag).add(
                    float(stats.cache_hits)
                )

            # Zero-copy shipping: pull big ndarrays out of the pending
            # specs into one shared-memory arena; chunks carry tiny
            # placeholders.  Cache keys above were computed on the
            # original specs, so caching is ship-mode independent.
            arena: Optional[ShmArena] = None
            if self.ship == "shm" and pending:
                stripped, arrays = extract_arrays(
                    [items[i] for i in pending], self.shm_min_bytes
                )
                if arrays:
                    arena = ShmArena.pack(arrays)
                    stats.shm_arrays = len(arrays)
                    stats.shm_bytes = sum(int(a.nbytes) for a in arrays)
                    obs.metrics.counter("sweep.shm.arenas", tag=tag).inc()
                    obs.metrics.counter("sweep.shm.arrays", tag=tag).add(
                        float(stats.shm_arrays)
                    )
                    obs.metrics.counter("sweep.shm.bytes", tag=tag).add(
                        float(stats.shm_bytes)
                    )
                    pending_items = [
                        (i, stripped[k], seeds[i]) for k, i in enumerate(pending)
                    ]
            if arena is None:
                pending_items = [(i, items[i], seeds[i]) for i in pending]
            chunks = self._chunk(pending_items)
            stats.chunks = len(chunks)
            stats.computed = len(pending)
            parallel = self.workers > 1 and len(chunks) > 1
            stats.parallel = parallel

            try:
                if parallel:
                    ctx = multiprocessing.get_context(self.mp_context)
                    with ctx.Pool(
                        processes=min(self.workers, len(chunks))
                    ) as pool:
                        if arena is not None:
                            payloads = [
                                (fn, arena.spec, chunk) for chunk in chunks
                            ]
                            runner = _run_chunk_shm
                        else:
                            payloads = [(fn, chunk) for chunk in chunks]
                            runner = _run_chunk
                        for chunk_results, wall_ms in pool.imap(runner, payloads):
                            for index, value in chunk_results:
                                results[index] = value
                            obs.metrics.histogram(
                                "sweep.chunk.duration_ms"
                            ).observe(wall_ms)
                            obs.metrics.counter(
                                "sweep.chunks.completed", tag=tag
                            ).inc()
                else:
                    views: List[np.ndarray] = []
                    if arena is not None:
                        # The serial parity twin: round-trip through the
                        # arena bytes exactly as a worker would, but copy
                        # the views (still read-only) so in-process
                        # results may safely alias them after teardown.
                        twin = ShmArena.attach(arena.spec)
                        try:
                            for v in twin.views():
                                c = v.copy()
                                c.flags.writeable = False
                                views.append(c)
                        finally:
                            twin.close()
                    for chunk in chunks:
                        with obs.tracer.span(
                            "sweep.chunk", size=len(chunk), tag=tag
                        ) as chunk_span:
                            for index, task, s in chunk:
                                if arena is not None:
                                    task = restore_arrays(task, views)
                                results[index] = _apply(fn, task, s)
                        obs.metrics.histogram("sweep.chunk.duration_ms").observe(
                            chunk_span.duration_ms
                        )
                        obs.metrics.counter("sweep.chunks.completed", tag=tag).inc()
            finally:
                if arena is not None:
                    arena.destroy()

            if use_cache:
                assert self.cache is not None
                for i in pending:
                    key = keys[i]
                    assert key is not None
                    self.cache.put(key, results[i], tag=tag)

            obs.metrics.counter("sweep.tasks.completed", tag=tag).add(float(n))
            span.set_attr("computed", stats.computed)
            span.set_attr("cache_hits", stats.cache_hits)
        assert not any(r is _MISSING for r in results)
        return results

    def _chunk(self, items: List[_Item]) -> List[List[_Item]]:
        if not items:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(items) / (self.workers * 4)))
        return [items[i : i + size] for i in range(0, len(items), size)]
