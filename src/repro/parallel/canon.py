"""Canonical serialization: the content-addressing substrate.

A cache key must be a pure function of *what was asked for* -- not of
dict insertion order, tuple-vs-list spelling, or float printing.  This
module renders a task spec into canonical bytes with explicit type
tags, then hashes them:

- floats are encoded via :meth:`float.hex` (bit-exact, locale-free);
- dicts are sorted by the canonical encoding of their keys;
- tuples and lists encode identically (a spec is a value, not a type);
- dataclasses encode as their qualified name plus each field in
  declaration order, so adding a field (new behavior) changes every key;
- :class:`numpy.ndarray` encodes dtype, shape, and C-order payload
  bytes; numpy scalars encode as their Python equivalents;
- :class:`numpy.random.SeedSequence` encodes entropy, spawn key, and
  pool size -- the full identity of a spawned child stream.

Anything else is rejected with :class:`ConfigurationError` rather than
falling back to ``repr``/``pickle``: a silent unstable encoding would
poison the cache with keys that never hit again (or worse, collide).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Iterable, List

import numpy as np

from repro.core.errors import ConfigurationError


def _encode(obj: object, out: List[bytes]) -> None:
    if obj is None:
        out.append(b"n;")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        out.append(b"b1;" if obj else b"b0;")
    elif isinstance(obj, int):
        out.append(b"i%d;" % obj)
    elif isinstance(obj, float):
        # float.hex() round-trips every finite double exactly and spells
        # nan/inf unambiguously.
        out.append(b"f" + obj.hex().encode("ascii") + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(b"s%d:" % len(raw) + raw + b";")
    elif isinstance(obj, bytes):
        out.append(b"y%d:" % len(obj) + obj + b";")
    elif isinstance(obj, np.generic):
        _encode(obj.item(), out)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        out.append(
            b"a" + arr.dtype.str.encode("ascii")
            + repr(arr.shape).encode("ascii") + b":"
        )
        out.append(arr.tobytes())
        out.append(b";")
    elif isinstance(obj, (tuple, list)):
        out.append(b"l(")
        for item in obj:
            _encode(item, out)
        out.append(b")")
    elif isinstance(obj, dict):
        pairs = []
        for key, value in obj.items():
            key_out: List[bytes] = []
            _encode(key, key_out)
            pairs.append((b"".join(key_out), value))
        pairs.sort(key=lambda kv: kv[0])
        out.append(b"d(")
        for key_bytes, value in pairs:
            out.append(key_bytes)
            _encode(value, out)
        out.append(b")")
    elif isinstance(obj, enum.Enum):
        tag = f"{type(obj).__module__}.{type(obj).__qualname__}.{obj.name}"
        out.append(b"e" + tag.encode("utf-8") + b";")
    elif isinstance(obj, np.random.SeedSequence):
        out.append(b"S(")
        _encode(obj.entropy, out)
        _encode(tuple(obj.spawn_key), out)
        _encode(int(obj.pool_size), out)
        out.append(b")")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        tag = f"{type(obj).__module__}.{type(obj).__qualname__}"
        out.append(b"D" + tag.encode("utf-8") + b"(")
        for field in dataclasses.fields(obj):
            _encode(field.name, out)
            _encode(getattr(obj, field.name), out)
        out.append(b")")
    else:
        raise ConfigurationError(
            f"cannot canonicalize {type(obj).__qualname__!r} for a cache key; "
            "use primitives, containers, dataclasses, numpy arrays, or "
            "SeedSequence"
        )


def canonical_bytes(obj: object) -> bytes:
    """Deterministic, type-tagged byte encoding of a task spec."""
    out: List[bytes] = []
    _encode(obj, out)
    return b"".join(out)


def spec_digest(obj: object) -> str:
    """SHA-256 hex digest of :func:`canonical_bytes`."""
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


def fn_identity(fn: object) -> str:
    """The stable name a callable contributes to cache keys."""
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or getattr(
        fn, "__name__", type(fn).__qualname__
    )
    return f"{module}.{qualname}"


def digest_many(parts: Iterable[str]) -> str:
    """One SHA-256 over an ordered sequence of hex digests/strings."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()
