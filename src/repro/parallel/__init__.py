"""Deterministic parallel sweeps with content-addressed result caching.

The repo's sweep surfaces -- Monte-Carlo PAM4 validation (Fig 11a),
goodput Monte-Carlo grids (Fig 15b), chaos-scenario ensembles,
scheduler parameter sweeps, and the slice-shape search -- all fan out
through one engine:

- :class:`SweepEngine` (:mod:`repro.parallel.engine`) -- ``pmap`` over a
  ``multiprocessing`` pool with positional seed splitting via
  ``np.random.SeedSequence.spawn``; results are bit-identical for any
  worker count and chunk size, and ``pmap_serial`` is the in-process
  oracle.
- :class:`ResultCache` (:mod:`repro.parallel.cache`) -- per-task
  content-addressed pickle store (disk layout with a JSONL manifest, or
  purely in-memory), keyed by schema version + surface tag + canonical
  spec digest, with explicit invalidation.
- :mod:`repro.parallel.canon` -- the canonical byte encoding behind the
  digests.
- :mod:`repro.parallel.shm` -- zero-copy ndarray shipping: large task
  payloads are packed once into a ``multiprocessing.shared_memory``
  arena and workers rebuild read-only views from a tiny header spec,
  so shipping cost stops scaling with ``chunks x payload``
  (``SweepEngine(ship="shm")``).
- ``python -m repro.parallel.smoke`` -- the CI cache-smoke gate: one
  sweep run cold then warm, asserting 100% hits and a >=5x speedup.

See ``docs/SYSTEMS.md`` §11 for the engine semantics, the seed-splitting
contract, and the cache key/invalidation rules.
"""

from repro.parallel.cache import CACHE_SCHEMA_VERSION, CacheStats, ResultCache
from repro.parallel.canon import canonical_bytes, fn_identity, spec_digest
from repro.parallel.engine import SweepEngine, SweepRunStats
from repro.parallel.shm import (
    ArenaSpec,
    ArrayRef,
    ShmArena,
    extract_arrays,
    restore_arrays,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ArenaSpec",
    "ArrayRef",
    "CacheStats",
    "ResultCache",
    "ShmArena",
    "SweepEngine",
    "SweepRunStats",
    "canonical_bytes",
    "extract_arrays",
    "fn_identity",
    "restore_arrays",
    "spec_digest",
]
