"""Parallelism plans: mapping an LLM onto a torus slice shape.

§4.2.1: the automated optimizer assigns the slice's **1st dimension to
model parallelism and the 2nd and 3rd dimensions to data parallelism**:

- ``tensor = shape[0]``: tensor-model parallelism with per-layer
  activation all-reduces on the first torus dimension's rings.
- ``data_extents = (shape[1], shape[2])``: data parallelism with the
  gradient all-reduce running hierarchically over the second and third
  torus dimensions.

An optional ``pipeline`` degree (not drawn from the slice shape in the
paper's mapping, available for ablations) splits layers into stages with
a 1F1B bubble.

Feasibility constraints:
- per-chip memory: the bf16 weight shard and unshardable working set
  (``WEIGHT_SHARD_BYTES_PER_PARAM``) plus the data-sharded
  gradient/optimizer state must fit HBM -- this is what forces large
  models (LLM2) to high tensor parallelism;
- layers must split over pipeline stages (``L >= pp``);
- every data replica needs at least one sequence (``batch >= data``);
- the tensor dimension cannot exceed attention-head-level parallelism
  (bounded by ``hidden/128``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.errors import ConfigurationError
from repro.ml.models import LlmConfig
from repro.tpu.chip import HBM_GIB_PER_CHIP

#: Bytes per parameter that must live on every chip of a tensor-model
#: shard: bf16 weights plus the unshardable working set.  Calibrated so
#: a 150B model needs tensor parallelism of at least 16 on 32 GiB HBM
#: while a 70B model still fits at tensor parallelism 4.
WEIGHT_SHARD_BYTES_PER_PARAM = 1.85

#: Gradient + optimizer-state bytes per parameter, fully sharded across
#: data replicas (ZeRO-style: fp32 master weights and Adam moments).
OPTIMIZER_BYTES_PER_PARAM = 16.0


@dataclass(frozen=True)
class ParallelismPlan:
    """One (tensor, data-extents, pipeline) assignment for a model."""

    model: LlmConfig
    tensor: int
    data_extents: Tuple[int, ...]
    pipeline: int = 1
    microbatch_seqs: int = 1

    def __post_init__(self) -> None:
        if self.tensor <= 0 or self.pipeline <= 0 or self.microbatch_seqs <= 0:
            raise ConfigurationError("parallelism degrees must be positive")
        if not self.data_extents or any(d <= 0 for d in self.data_extents):
            raise ConfigurationError(
                f"data extents must be positive, got {self.data_extents}"
            )

    @classmethod
    def for_shape(
        cls, model: LlmConfig, shape: Tuple[int, int, int], microbatch_seqs: int = 1
    ) -> "ParallelismPlan":
        """The paper's dimension assignment: dim1 model, dims 2+3 data."""
        if len(shape) != 3 or any(s <= 0 for s in shape):
            raise ConfigurationError(f"shape must be 3 positive extents, got {shape}")
        return cls(
            model=model,
            tensor=shape[0],
            data_extents=(shape[1], shape[2]),
            microbatch_seqs=microbatch_seqs,
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def data(self) -> int:
        """Total data parallelism."""
        out = 1
        for d in self.data_extents:
            out *= d
        return out

    @property
    def num_chips(self) -> int:
        return self.tensor * self.pipeline * self.data

    @property
    def model_shards(self) -> int:
        """Ways the weights are split (tensor x pipeline)."""
        return self.tensor * self.pipeline

    @property
    def batch_seqs_per_replica(self) -> int:
        return self.model.global_batch_seqs // self.data

    @property
    def num_microbatches(self) -> int:
        """Microbatches flowing through each pipeline per step."""
        return max(1, self.batch_seqs_per_replica // self.microbatch_seqs)

    @property
    def pipeline_bubble_fraction(self) -> float:
        """1F1B bubble: (pp - 1) / m of the pipeline-busy time is idle."""
        return (self.pipeline - 1) / self.num_microbatches

    @property
    def layers_per_stage(self) -> float:
        return self.model.num_layers / self.pipeline

    def memory_per_chip_bytes(self) -> float:
        """Weight shard on every chip; optimizer sharded over data."""
        shard = self.model.num_params / self.model_shards
        return (
            WEIGHT_SHARD_BYTES_PER_PARAM * shard
            + OPTIMIZER_BYTES_PER_PARAM * shard / self.data
        )

    # ------------------------------------------------------------------ #
    # Feasibility
    # ------------------------------------------------------------------ #

    def infeasibility_reason(self) -> str:
        """Empty string when feasible, else a human-readable reason."""
        hbm = HBM_GIB_PER_CHIP * 2 ** 30
        if self.memory_per_chip_bytes() > hbm:
            return (
                f"model shard needs {self.memory_per_chip_bytes() / 2**30:.1f} GiB "
                f"> {HBM_GIB_PER_CHIP:.0f} GiB HBM"
            )
        if self.model.num_layers < self.pipeline:
            return f"{self.pipeline} stages exceed {self.model.num_layers} layers"
        if self.model.global_batch_seqs < self.data:
            return (
                f"data parallelism {self.data} exceeds global batch "
                f"{self.model.global_batch_seqs}"
            )
        if self.tensor > self.model.hidden_dim // 128:
            return f"tensor parallelism {self.tensor} exceeds head parallelism"
        return ""

    @property
    def feasible(self) -> bool:
        return not self.infeasibility_reason()

    def __str__(self) -> str:
        return (
            f"Plan({self.model.name}: tp={self.tensor} "
            f"dp={'x'.join(str(d) for d in self.data_extents)} pp={self.pipeline})"
        )
