"""Slice-shape search: the stand-in for the paper's NAS optimizer.

Enumerates every ordered factorization ``(tensor, pipeline, data)`` of the
chip budget whose extents are positive multiples of 4 (the cube edge),
evaluates the training-step model on each feasible plan, and returns the
fastest.  Speedups are reported against the paper's static baseline, the
symmetric 16x16x16 slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.ml.models import LLM_ZOO, LlmConfig
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel
from repro.parallel import SweepEngine

Shape = Tuple[int, int, int]

#: The paper's static baseline for a full 4096-chip pod.
BASELINE_SHAPE: Shape = (16, 16, 16)


def _multiples_of(num: int, min_extent: int) -> List[int]:
    return [d for d in range(min_extent, num + 1, min_extent) if num % d == 0]


def enumerate_shapes(num_chips: int, min_extent: int = 4) -> List[Shape]:
    """All ordered (tensor, pipeline, data) factorizations of ``num_chips``
    with every extent a positive multiple of ``min_extent``."""
    if num_chips <= 0 or min_extent <= 0:
        raise ConfigurationError("chips and extent must be positive")
    out = []
    for a in _multiples_of(num_chips, min_extent):
        rest = num_chips // a
        for b in _multiples_of(rest, min_extent):
            c = rest // b
            if c >= min_extent and c % min_extent == 0:
                out.append((a, b, c))
    return out


@dataclass(frozen=True)
class ShapeSearchResult:
    """Outcome of the search for one model."""

    model: LlmConfig
    best_shape: Shape
    best_step_time_s: float
    baseline_step_time_s: float
    evaluated: int
    infeasible: int

    @property
    def speedup_vs_baseline(self) -> float:
        return self.baseline_step_time_s / self.best_step_time_s

    def __str__(self) -> str:
        x, y, z = self.best_shape
        return (
            f"{self.model.name}: optimal {x}x{y}x{z}, "
            f"{self.speedup_vs_baseline:.2f}x vs 16x16x16"
        )


@dataclass
class SliceShapeSearch:
    """Exhaustive shape search over one chip budget."""

    step_model: TrainingStepModel
    num_chips: int = 4096
    min_extent: int = 4

    #: Per-replica batch at or above which the data-split tie-break
    #: prefers a minimal first ring (enough in-flight microbatches to
    #: pipeline the two all-reduce phases); below it, balanced extents
    #: minimize ring latency.
    deep_dp_batch_threshold: int = 8

    def evaluate(self, model: LlmConfig, shape: Shape) -> Optional[float]:
        """Step time for one shape, or None when infeasible."""
        plan = ParallelismPlan.for_shape(model, shape)
        if not plan.feasible:
            return None
        return self.step_model.step_time_s(plan)

    def _data_splits(self, data: int) -> List[Tuple[int, int]]:
        """All (d2, d3) factorizations of the data degree into extents
        that are multiples of ``min_extent``."""
        return [
            (d2, data // d2)
            for d2 in _multiples_of(data, self.min_extent)
            if (data // d2) % self.min_extent == 0
        ]

    def _pick_split(self, model: LlmConfig, data: int) -> Tuple[int, int]:
        """Tie-break among performance-equivalent data splits.

        The gradient all-reduce time is (to first order) independent of
        how the data degree factors over the two torus dimensions, so the
        optimizer's reported split comes from a secondary criterion: with
        a deep per-replica batch the two hierarchical phases pipeline and
        a minimal first ring wins (the paper's 4x4x256 for LLM1);
        otherwise balanced extents minimize ring latency (8x16x32 for
        LLM0, 16x16x16 for LLM2).
        """
        splits = self._data_splits(data)
        if not splits:
            raise ConfigurationError(f"data degree {data} has no valid split")
        per_replica = model.global_batch_seqs // data
        if per_replica >= self.deep_dp_batch_threshold:
            return min(splits, key=lambda s: (s[0], -s[1]))
        return min(splits, key=lambda s: (max(s), s[0]))

    def search(self, model: LlmConfig) -> ShapeSearchResult:
        """Find the fastest feasible shape for ``model``.

        Shapes sharing (tensor, data) degrees are performance-equivalent
        up to data-split second-order terms; the search ranks the
        (tensor, data) classes by step time on a canonical balanced split
        and then reports the class's shape via :meth:`_pick_split`.
        """
        shapes = enumerate_shapes(self.num_chips, self.min_extent)
        classes = {}  # (tensor, data) -> canonical time
        infeasible = 0
        for shape in shapes:
            key = (shape[0], shape[1] * shape[2])
            if key in classes:
                continue
            canonical = (shape[0],) + min(
                self._data_splits(key[1]), key=lambda s: max(s)
            )
            t = self.evaluate(model, canonical)
            if t is None:
                infeasible += 1
                classes[key] = None
            else:
                classes[key] = t
        feasible = {k: t for k, t in classes.items() if t is not None}
        if not feasible:
            raise ConfigurationError(
                f"{model.name}: no feasible shape among {len(shapes)} candidates"
            )
        best_key = min(feasible, key=lambda k: (feasible[k], k))
        d2, d3 = self._pick_split(model, best_key[1])
        best_shape = (best_key[0], d2, d3)
        best_time = self.evaluate(model, best_shape)
        baseline = self.evaluate(model, BASELINE_SHAPE)
        if baseline is None:
            raise ConfigurationError(f"{model.name}: baseline 16x16x16 infeasible")
        return ShapeSearchResult(
            model=model,
            best_shape=best_shape,
            best_step_time_s=best_time,
            baseline_step_time_s=baseline,
            evaluated=len(feasible),
            infeasible=infeasible,
        )

    def ranked(self, model: LlmConfig, top: int = 5) -> List[Tuple[Shape, float]]:
        """The ``top`` fastest shapes with their step times."""
        results = []
        for shape in enumerate_shapes(self.num_chips, self.min_extent):
            t = self.evaluate(model, shape)
            if t is not None:
                results.append((shape, t))
        results.sort(key=lambda st: st[1])
        return results[:top]


# ---------------------------------------------------------------------- #
# Shape-search grids over the sweep engine
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShapeSearchTask:
    """One grid point: a model from the zoo x a chip budget."""

    model_name: str
    num_chips: int = 4096
    min_extent: int = 4

    def __post_init__(self) -> None:
        if self.model_name not in LLM_ZOO:
            raise ConfigurationError(
                f"unknown model {self.model_name!r}; have {sorted(LLM_ZOO)}"
            )


def _search_point(task: ShapeSearchTask) -> Dict[str, object]:
    """Worker: one exhaustive search, summarized as plain data."""
    search = SliceShapeSearch(
        step_model=TrainingStepModel(),
        num_chips=task.num_chips,
        min_extent=task.min_extent,
    )
    result = search.search(LLM_ZOO[task.model_name])
    return {
        "model": task.model_name,
        "best_shape": result.best_shape,
        "best_step_time_s": result.best_step_time_s,
        "baseline_step_time_s": result.baseline_step_time_s,
        "speedup_vs_baseline": result.speedup_vs_baseline,
        "evaluated": result.evaluated,
        "infeasible": result.infeasible,
    }


def _grid_tasks(
    model_names: Sequence[str], num_chips: Sequence[int], min_extent: int
) -> List[ShapeSearchTask]:
    return [
        ShapeSearchTask(str(name), int(chips), int(min_extent))
        for name in model_names
        for chips in num_chips
    ]


def shape_search_grid(
    model_names: Sequence[str],
    num_chips: Sequence[int] = (4096,),
    min_extent: int = 4,
    engine: Optional[SweepEngine] = None,
    cache_tag: Optional[str] = "ml.shape_search",
) -> List[Dict[str, object]]:
    """Exhaustive shape searches over a model x chip-budget grid.

    Returns summaries in row-major (model, chips) order.  Each search is
    deterministic (no RNG), so the engine runs unseeded and the grid is
    bit-identical to :func:`shape_search_grid_serial` for any engine
    configuration.
    """
    engine = engine if engine is not None else SweepEngine(workers=1)
    tasks = _grid_tasks(model_names, num_chips, min_extent)
    tag = cache_tag if engine.cache is not None else None
    return engine.pmap(_search_point, tasks, cache_tag=tag)


def shape_search_grid_serial(
    model_names: Sequence[str],
    num_chips: Sequence[int] = (4096,),
    min_extent: int = 4,
) -> List[Dict[str, object]]:
    """The plain-loop oracle for :func:`shape_search_grid`."""
    return [_search_point(t) for t in _grid_tasks(model_names, num_chips, min_extent)]
