"""Hybrid ICI-DCN scale-out collectives (§2.2.2, Fig 2).

Training models too large for one superpod combines the scale-up ICI
(50-100x the per-TPU bandwidth of the DCN) with the scale-out DCN.  The
canonical collective is the two-level all-reduce of Fig 2:

1. **intra-pod** reduce-scatter on ICI rings (Fig 2b),
2. **inter-pod** all-reduce of each shard over the DCN (Fig 2c, the red
   and blue rings), on the critical path,
3. **intra-pod** all-gather on ICI rings.

The model quantifies why DCN-level topology engineering matters: step 2's
time scales with the DCN bandwidth actually provisioned between the pods,
which the reconfigurable DCN lightwave fabric can concentrate where the
traffic is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.ml.collectives import ring_all_gather_time_s, ring_all_reduce_time_s, ring_reduce_scatter_time_s


@dataclass(frozen=True)
class HybridClusterSpec:
    """A multi-pod training cluster.

    Args:
        num_pods: superpods participating.
        chips_per_pod: TPU chips per pod.
        ici_gbytes_per_s: ICI link bandwidth per direction, GB/s.
        dcn_gbytes_per_chip_s: DCN bandwidth available *per chip* for
            cross-pod traffic, GB/s (the 50-100x gap: ~0.5-2 vs 25-50).
    """

    num_pods: int = 4
    chips_per_pod: int = 4096
    ici_gbytes_per_s: float = 25.0
    dcn_gbytes_per_chip_s: float = 0.4

    def __post_init__(self) -> None:
        if self.num_pods <= 0 or self.chips_per_pod <= 0:
            raise ConfigurationError("pods and chips must be positive")
        if self.ici_gbytes_per_s <= 0 or self.dcn_gbytes_per_chip_s <= 0:
            raise ConfigurationError("bandwidths must be positive")

    @property
    def ici_to_dcn_ratio(self) -> float:
        """The paper's 50-100x scale-up vs scale-out bandwidth gap."""
        return self.ici_gbytes_per_s / self.dcn_gbytes_per_chip_s


def cross_pod_all_reduce_time_s(
    spec: HybridClusterSpec,
    volume_bytes_per_chip: float,
    intra_pod_ring: int = 64,
) -> float:
    """Two-level all-reduce time for ``volume_bytes_per_chip`` gradients.

    Phase 1 reduce-scatters over an intra-pod ring (``intra_pod_ring``
    chips), phase 2 all-reduces each shard across pods over the DCN, and
    phase 3 all-gathers back over ICI.
    """
    if volume_bytes_per_chip < 0:
        raise ConfigurationError("volume must be non-negative")
    if intra_pod_ring <= 0 or intra_pod_ring > spec.chips_per_pod:
        raise ConfigurationError("intra-pod ring size out of range")
    ici_bw = spec.ici_gbytes_per_s * 1e9
    dcn_bw = spec.dcn_gbytes_per_chip_s * 1e9
    t1 = ring_reduce_scatter_time_s(volume_bytes_per_chip, intra_pod_ring, ici_bw)
    shard = volume_bytes_per_chip / intra_pod_ring
    # DCN phase: each chip owns a shard replicated across pods; the DCN
    # ring spans the pods.  The DCN link is not doubled (single NIC path).
    t2 = ring_all_reduce_time_s(shard, spec.num_pods, dcn_bw / 2.0)
    t3 = ring_all_gather_time_s(volume_bytes_per_chip, intra_pod_ring, ici_bw)
    return t1 + t2 + t3


def dcn_critical_path_fraction(
    spec: HybridClusterSpec,
    volume_bytes_per_chip: float,
    intra_pod_ring: int = 64,
) -> float:
    """Fraction of the collective spent in the DCN phase (§2.2.2: the
    transfers over the DCN are on the critical path)."""
    total = cross_pod_all_reduce_time_s(spec, volume_bytes_per_chip, intra_pod_ring)
    if total == 0:
        return 0.0
    ici_bw = spec.ici_gbytes_per_s * 1e9
    dcn_bw = spec.dcn_gbytes_per_chip_s * 1e9
    shard = volume_bytes_per_chip / intra_pod_ring
    t2 = ring_all_reduce_time_s(shard, spec.num_pods, dcn_bw / 2.0)
    return t2 / total
