"""Mid-training slice reshaping: the §6 fast-reconfiguration study.

§6: "changing the configuration of the slice during a training session to
match communication patterns of different computing phases has the
potential to improve performance [63]" -- but "must balance the benefits
with the challenge of ... a control plane that can operate on the
requisite time scale."

This module quantifies that balance for a training run with phases whose
optimal slice shapes differ (e.g. a large-batch pretraining phase and a
small-batch fine-tuning/long-context phase): given a per-reshape cost
(fabric reconfiguration + job checkpoint/restore), when does reshaping
win, and what switching time makes it break even?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.ml.models import LlmConfig
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import Shape, SliceShapeSearch


@dataclass(frozen=True)
class TrainingPhase:
    """One phase of a training run."""

    name: str
    model: LlmConfig
    steps: int

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ConfigurationError("phase needs at least one step")


@dataclass(frozen=True)
class ReshapingPlan:
    """Outcome of the fixed-vs-reshaped comparison."""

    fixed_shape: Shape
    fixed_time_s: float
    phase_shapes: Tuple[Shape, ...]
    reshaped_compute_s: float
    num_reshapes: int
    reshape_cost_s: float

    @property
    def reshaped_time_s(self) -> float:
        return self.reshaped_compute_s + self.num_reshapes * self.reshape_cost_s

    @property
    def speedup(self) -> float:
        return self.fixed_time_s / self.reshaped_time_s

    @property
    def breakeven_reshape_cost_s(self) -> float:
        """Per-reshape cost at which reshaping stops paying off."""
        if self.num_reshapes == 0:
            return float("inf")
        return max(0.0, (self.fixed_time_s - self.reshaped_compute_s) / self.num_reshapes)


@dataclass
class ReshapingStudy:
    """Compares a fixed slice shape against per-phase reshaping.

    Args:
        step_model: the calibrated training-step model.
        reshape_cost_s: wall-clock cost of one reshape (OCS reconfigure is
            milliseconds; the cost is dominated by checkpoint/restore and
            collective re-initialization).
    """

    step_model: TrainingStepModel
    num_chips: int = 4096
    reshape_cost_s: float = 120.0

    def __post_init__(self) -> None:
        if self.reshape_cost_s < 0:
            raise ConfigurationError("reshape cost must be non-negative")

    def _search(self) -> SliceShapeSearch:
        return SliceShapeSearch(self.step_model, num_chips=self.num_chips)

    def phase_time_s(self, phase: TrainingPhase, shape: Shape) -> Optional[float]:
        """Total time of one phase on one shape, or None if infeasible."""
        t = self._search().evaluate(phase.model, shape)
        return None if t is None else t * phase.steps

    def best_fixed_shape(self, phases: Sequence[TrainingPhase]) -> Tuple[Shape, float]:
        """The single shape minimizing the whole run (no reshaping)."""
        from repro.ml.shape_search import enumerate_shapes

        best: Optional[Tuple[Shape, float]] = None
        for shape in enumerate_shapes(self.num_chips):
            total = 0.0
            feasible = True
            for phase in phases:
                t = self.phase_time_s(phase, shape)
                if t is None:
                    feasible = False
                    break
                total += t
            if feasible and (best is None or total < best[1]):
                best = (shape, total)
        if best is None:
            raise ConfigurationError("no single shape is feasible for every phase")
        return best

    def plan(self, phases: Sequence[TrainingPhase]) -> ReshapingPlan:
        """Build the comparison for a phase sequence."""
        if not phases:
            raise ConfigurationError("need at least one phase")
        fixed_shape, fixed_time = self.best_fixed_shape(phases)
        search = self._search()
        shapes: List[Shape] = []
        reshaped_time = 0.0
        for phase in phases:
            result = search.search(phase.model)
            shapes.append(result.best_shape)
            reshaped_time += result.best_step_time_s * phase.steps
        reshapes = sum(1 for a, b in zip(shapes, shapes[1:]) if a != b)
        return ReshapingPlan(
            fixed_shape=fixed_shape,
            fixed_time_s=fixed_time,
            phase_shapes=tuple(shapes),
            reshaped_compute_s=reshaped_time,
            num_reshapes=reshapes,
            reshape_cost_s=self.reshape_cost_s,
        )
