"""ML training performance models and slice-shape search.

Reproduces §4.2.1 (Table 2): an analytic training-step cost model for
transformer LLMs on 3D-torus TPU slices, combining tensor (model),
pipeline, and data parallelism, and a shape-search optimizer standing in
for the paper's NAS system.  Also models the hybrid ICI-DCN scale-out
collectives of §2.2.2 (Fig 2).
"""

from repro.ml.models import LLM_ZOO, LlmConfig
from repro.ml.parallelism import ParallelismPlan
from repro.ml.collectives import (
    hierarchical_all_reduce_time_s,
    ring_all_gather_time_s,
    ring_all_reduce_time_s,
    ring_reduce_scatter_time_s,
)
from repro.ml.perfmodel import StepTimeBreakdown, TrainingStepModel
from repro.ml.shape_search import (
    ShapeSearchResult,
    ShapeSearchTask,
    SliceShapeSearch,
    shape_search_grid,
    shape_search_grid_serial,
)
from repro.ml.hybrid import HybridClusterSpec, cross_pod_all_reduce_time_s
from repro.ml.reshaping import ReshapingPlan, ReshapingStudy, TrainingPhase
from repro.ml.collective_sim import RingCollectiveSim, simulate_hierarchical_all_reduce

__all__ = [
    "LLM_ZOO",
    "LlmConfig",
    "ParallelismPlan",
    "ring_all_reduce_time_s",
    "ring_reduce_scatter_time_s",
    "ring_all_gather_time_s",
    "hierarchical_all_reduce_time_s",
    "TrainingStepModel",
    "StepTimeBreakdown",
    "SliceShapeSearch",
    "ShapeSearchResult",
    "ShapeSearchTask",
    "shape_search_grid",
    "shape_search_grid_serial",
    "HybridClusterSpec",
    "cross_pod_all_reduce_time_s",
    "ReshapingStudy",
    "ReshapingPlan",
    "TrainingPhase",
    "RingCollectiveSim",
    "simulate_hierarchical_all_reduce",
]
