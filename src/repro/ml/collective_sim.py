"""Step-level collective execution: validates the analytic cost models.

The analytic formulas in :mod:`repro.ml.collectives` follow from the ring
algorithms' structure; this module actually *executes* reduce-scatter /
all-gather / hierarchical all-reduce step by step over modeled chips,
tracking per-chip shard contents and per-step transfer times.  Tests use
it two ways:

- correctness: after the all-reduce, every chip holds the full reduction;
- timing: the simulated wall-clock matches the analytic expression.

Convention: in a ring of ``n`` chips the reduce-scatter leaves chip ``c``
owning fully-reduced shard ``(c + 1) % n`` (the standard ring algorithm's
landing position); the all-gather uses the same convention and returns
each chip's full vector in original shard order.
"""

from __future__ import annotations

from itertools import product
from typing import List, Sequence, Tuple

import numpy as np
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.ml.collectives import DEFAULT_STEP_OVERHEAD_S


@dataclass
class RingCollectiveSim:
    """Executes ring collectives over ``ring_size`` chips."""

    ring_size: int
    link_bytes_per_s: float
    step_overhead_s: float = DEFAULT_STEP_OVERHEAD_S

    def __post_init__(self) -> None:
        if self.ring_size <= 0:
            raise ConfigurationError("ring size must be positive")
        if self.link_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")

    def owned_shard_index(self, chip: int) -> int:
        """The shard chip ``chip`` owns after a reduce-scatter."""
        return (chip + 1) % self.ring_size

    # ------------------------------------------------------------------ #
    # Reduce-scatter
    # ------------------------------------------------------------------ #

    def reduce_scatter(
        self, chip_data: List[np.ndarray]
    ) -> Tuple[List[np.ndarray], float]:
        """Ring reduce-scatter.

        ``chip_data[c]`` is chip ``c``'s full vector, logically split into
        ``ring_size`` equal shards.  Returns ``(owned, time)`` where
        ``owned[c]`` is the fully reduced shard ``(c+1) % n``.  Each of
        the ``n-1`` steps moves one shard per chip; the bidirectional
        ring gives effective bandwidth ``2 * link``.
        """
        n = self.ring_size
        self._check_data(chip_data)
        if n == 1:
            return [d.astype(float).copy() for d in chip_data], 0.0
        shards = [np.array_split(d.astype(float), n) for d in chip_data]
        acc = [[shards[c][k].copy() for k in range(n)] for c in range(n)]
        shard_bytes = max(s.nbytes for s in shards[0])
        total_time = 0.0
        for step in range(n - 1):
            # Chip c receives from its predecessor the shard the
            # predecessor has been accumulating: index (c - step - 1) % n.
            incoming = []
            for c in range(n):
                prev = (c - 1) % n
                k = (c - step - 1) % n
                incoming.append((c, k, acc[prev][k]))
            for c, k, data in incoming:
                acc[c][k] = acc[c][k] + data
            total_time += shard_bytes / (2.0 * self.link_bytes_per_s)
            total_time += self.step_overhead_s
        owned = [acc[c][self.owned_shard_index(c)] for c in range(n)]
        return owned, total_time

    # ------------------------------------------------------------------ #
    # All-gather
    # ------------------------------------------------------------------ #

    def all_gather(
        self, owned_shards: List[np.ndarray]
    ) -> Tuple[List[np.ndarray], float]:
        """Ring all-gather of per-chip owned shards (same convention).

        Returns ``(full_vectors, time)`` with shards concatenated in
        original order on every chip.
        """
        n = self.ring_size
        if len(owned_shards) != n:
            raise ConfigurationError(f"need {n} shards, got {len(owned_shards)}")
        if n == 1:
            return [owned_shards[0].copy()], 0.0
        have = [{self.owned_shard_index(c): owned_shards[c]} for c in range(n)]
        shard_bytes = max(s.nbytes for s in owned_shards)
        total_time = 0.0
        for step in range(n - 1):
            # Chip c receives the shard its predecessor obtained at the
            # previous step: index (c - step) % n.
            moves = []
            for c in range(n):
                prev = (c - 1) % n
                k = (c - step) % n
                moves.append((c, k, have[prev][k]))
            for c, k, data in moves:
                have[c][k] = data
            total_time += shard_bytes / (2.0 * self.link_bytes_per_s)
            total_time += self.step_overhead_s
        gathered = [
            np.concatenate([have[c][k] for k in range(n)]) for c in range(n)
        ]
        return gathered, total_time

    def all_reduce(
        self, chip_data: List[np.ndarray]
    ) -> Tuple[List[np.ndarray], float]:
        """Reduce-scatter followed by all-gather."""
        owned, t1 = self.reduce_scatter(chip_data)
        gathered, t2 = self.all_gather(owned)
        return gathered, t1 + t2

    def _check_data(self, chip_data: Sequence[np.ndarray]) -> None:
        if len(chip_data) != self.ring_size:
            raise ConfigurationError(
                f"need data for {self.ring_size} chips, got {len(chip_data)}"
            )
        sizes = {d.size for d in chip_data}
        if len(sizes) != 1:
            raise ConfigurationError("all chips must hold equal-size vectors")


def simulate_hierarchical_all_reduce(
    extents: Sequence[int],
    vector_size: int,
    link_bytes_per_s: float,
    step_overhead_s: float = DEFAULT_STEP_OVERHEAD_S,
    seed: int = 0,
) -> Tuple[bool, float]:
    """Execute the multi-dimension all-reduce over a small torus group.

    Lays ``prod(extents)`` chips on the grid, reduce-scatters down each
    dimension then all-gathers back up (lines of a dimension run in
    parallel; their max time counts), and checks every chip ends with the
    global sum.  Returns ``(correct, simulated_time)``.
    """
    extents = tuple(int(e) for e in extents)
    if not extents or any(e <= 0 for e in extents):
        raise ConfigurationError(f"extents must be positive, got {extents}")
    num = 1
    for e in extents:
        num *= e
    rng = np.random.default_rng(seed)
    data = [rng.normal(size=vector_size) for _ in range(num)]
    expected = np.sum(data, axis=0)

    coords = list(np.ndindex(*extents))
    index_of = {c: i for i, c in enumerate(coords)}

    def lines(axis: int) -> List[List[int]]:
        out = []
        other_axes = [a for a in range(len(extents)) if a != axis]
        for fixed in product(*(range(extents[a]) for a in other_axes)):
            line = []
            for w in range(extents[axis]):
                coord = [0] * len(extents)
                for a, v in zip(other_axes, fixed):
                    coord[a] = v
                coord[axis] = w
                line.append(index_of[tuple(coord)])
            out.append(line)
        return out

    total_time = 0.0
    current: List[np.ndarray] = [d.copy() for d in data]
    for axis in range(len(extents)):
        sim = RingCollectiveSim(extents[axis], link_bytes_per_s, step_overhead_s)
        axis_time = 0.0
        next_current = list(current)
        for line in lines(axis):
            owned, t = sim.reduce_scatter([current[i] for i in line])
            axis_time = max(axis_time, t)
            for i, shard in zip(line, owned):
                next_current[i] = shard
        current = next_current
        total_time += axis_time
    for axis in reversed(range(len(extents))):
        sim = RingCollectiveSim(extents[axis], link_bytes_per_s, step_overhead_s)
        axis_time = 0.0
        next_current = list(current)
        for line in lines(axis):
            gathered, t = sim.all_gather([current[i] for i in line])
            axis_time = max(axis_time, t)
            for i, full in zip(line, gathered):
                next_current[i] = full
        current = next_current
        total_time += axis_time
    correct = all(np.allclose(c, expected) for c in current)
    return correct, total_time
