"""Training-step time model: compute + TP/PP/DP communication + bubble.

The step time for a :class:`~repro.ml.parallelism.ParallelismPlan` is::

    step = (compute + t_tensor + t_pipeline) * (1 + bubble) + t_data

- **compute**: ``6 * P * tokens / (chips * peak_flops * mfu)``.
- **t_tensor**: Megatron tensor parallelism performs ~4 all-reduces of
  the per-microbatch activations (``b*s*h`` bf16) per layer (forward +
  backward) on the first torus dimension's rings; each chip's stage
  processes all its replica's tokens.
- **t_pipeline**: inter-stage activation transfers (both directions).
- **bubble**: 1F1B pipeline fill/drain, ``(pp-1)/m``.
- **t_data**: gradient all-reduce of the model shard (bf16) on the third
  torus dimension's rings, overlapping with backward compute by a
  configurable fraction.

The knobs (`mfu`, effective link bandwidth, overlap) are calibrated once
so the Table 2 shape search reproduces the paper's optima and speedups;
they are exposed for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.errors import ConfigurationError
from repro.ml.collectives import (
    hierarchical_all_reduce_time_s,
    point_to_point_time_s,
    ring_all_reduce_time_s,
)
from repro.ml.parallelism import ParallelismPlan
from repro.tpu.chip import TPU_V4_BF16_TFLOPS

#: Activation bytes per element (bf16).
ACTIVATION_BYTES = 2.0

#: Gradient bytes per element exchanged in the data-parallel all-reduce.
GRADIENT_BYTES = 2.0

#: All-reduces of b*s*h activations per transformer layer (fwd + bwd)
#: under Megatron-style tensor parallelism.
TP_ALLREDUCES_PER_LAYER = 4.0


@dataclass(frozen=True)
class StepTimeBreakdown:
    """Per-component timing of one training step, seconds."""

    compute_s: float
    tensor_comm_s: float
    pipeline_comm_s: float
    data_comm_s: float
    bubble_fraction: float

    @property
    def total_s(self) -> float:
        busy = self.compute_s + self.tensor_comm_s + self.pipeline_comm_s
        return busy * (1.0 + self.bubble_fraction) + self.data_comm_s

    @property
    def comm_fraction(self) -> float:
        """Share of the step not spent in useful compute."""
        total = self.total_s
        return 1.0 - self.compute_s / total if total > 0 else 0.0


@dataclass(frozen=True)
class TrainingStepModel:
    """Evaluates step time for plans on TPU v4 torus slices.

    Args:
        peak_tflops: per-chip peak BF16 TFLOPS.
        mfu: model FLOPS utilization of the compute phase.
        link_gbytes_per_s: *effective* per-direction ICI bandwidth
            delivered to collectives.  The default is heavily de-rated
            from the 50 GB/s hardware figure: it folds in collective
            scheduling inefficiency at 4096 chips and places the
            symmetric baseline in the communication-bound regime that
            the paper's up-to-3.3x speedups imply.  Absolute step times
            are therefore not calibrated -- only their ratios.
        dp_overlap: fraction of the data-parallel all-reduce hidden under
            backward compute.
    """

    peak_tflops: float = TPU_V4_BF16_TFLOPS
    mfu: float = 0.5
    link_gbytes_per_s: float = 1.0
    dp_overlap: float = 0.0
    #: Per-torus-dimension bandwidth multipliers (dim1, dim2, dim3): an
    #: OCS failure degrades one dimension to 15/16 of its links (§4.2.2).
    dim_bandwidth_scale: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0 or not 0 < self.mfu <= 1:
            raise ConfigurationError("peak flops and mfu must be positive (mfu <= 1)")
        if self.link_gbytes_per_s <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if not 0 <= self.dp_overlap <= 1:
            raise ConfigurationError("overlap must be in [0, 1]")
        if len(self.dim_bandwidth_scale) != 3 or any(
            not 0 < f <= 1 for f in self.dim_bandwidth_scale
        ):
            raise ConfigurationError("dimension scales must be in (0, 1]")

    @property
    def _bw(self) -> float:
        return self.link_gbytes_per_s * 1e9

    def _dim_bw(self, dim_index: int) -> float:
        return self._bw * self.dim_bandwidth_scale[dim_index]

    # ------------------------------------------------------------------ #
    # Components
    # ------------------------------------------------------------------ #

    def compute_time_s(self, plan: ParallelismPlan) -> float:
        fleet_flops = plan.num_chips * self.peak_tflops * 1e12 * self.mfu
        return plan.model.flops_per_step / fleet_flops

    def tensor_comm_time_s(self, plan: ParallelismPlan) -> float:
        """Per-layer activation all-reduces over the tensor dimension."""
        if plan.tensor == 1:
            return 0.0
        model = plan.model
        tokens_per_replica = model.global_batch_tokens / plan.data
        volume_per_layer = tokens_per_replica * model.hidden_dim * ACTIVATION_BYTES
        per_layer = ring_all_reduce_time_s(
            volume_per_layer, plan.tensor, self._dim_bw(0)
        )
        return TP_ALLREDUCES_PER_LAYER * plan.layers_per_stage * per_layer

    def pipeline_comm_time_s(self, plan: ParallelismPlan) -> float:
        """Stage-boundary activation traffic (forward + backward)."""
        if plan.pipeline == 1:
            return 0.0
        model = plan.model
        tokens_per_replica = model.global_batch_tokens / plan.data
        # Activations are sharded over the tensor dimension at boundaries.
        volume = tokens_per_replica * model.hidden_dim * ACTIVATION_BYTES / plan.tensor
        return 2.0 * point_to_point_time_s(volume, self._bw)

    def data_comm_time_s(self, plan: ParallelismPlan) -> float:
        """Gradient all-reduce over the data torus dimensions, minus overlap."""
        if plan.data == 1:
            return 0.0
        shard_bytes = plan.model.num_params / plan.model_shards * GRADIENT_BYTES
        # Hierarchical all-reduce over data dims 2 and 3: the slowest
        # (most degraded) dimension bounds the sequential phases.
        data_bw = min(
            self._dim_bw(i + 1) for i in range(min(2, len(plan.data_extents)))
        )
        raw = hierarchical_all_reduce_time_s(shard_bytes, plan.data_extents, data_bw)
        return raw * (1.0 - self.dp_overlap)

    # ------------------------------------------------------------------ #
    # Step time
    # ------------------------------------------------------------------ #

    def breakdown(self, plan: ParallelismPlan) -> StepTimeBreakdown:
        reason = plan.infeasibility_reason()
        if reason:
            raise ConfigurationError(f"{plan}: infeasible: {reason}")
        return StepTimeBreakdown(
            compute_s=self.compute_time_s(plan),
            tensor_comm_s=self.tensor_comm_time_s(plan),
            pipeline_comm_s=self.pipeline_comm_time_s(plan),
            data_comm_s=self.data_comm_time_s(plan),
            bubble_fraction=plan.pipeline_bubble_fraction,
        )

    def step_time_s(self, plan: ParallelismPlan) -> float:
        return self.breakdown(plan).total_s

    def throughput_seqs_per_s(self, plan: ParallelismPlan) -> float:
        """Training throughput (Table 2's samples/second metric)."""
        return plan.model.global_batch_seqs / self.step_time_s(plan)
