"""Collective-communication cost models on torus rings.

All times follow the standard bandwidth-term analysis of ring algorithms
(latency terms are included as a per-step overhead):

- reduce-scatter / all-gather over a ring of ``n``: each node moves
  ``(n-1)/n * V`` bytes in ``n-1`` steps.
- all-reduce = reduce-scatter + all-gather: ``2 * (n-1)/n * V``.
- hierarchical (multi-dimension) all-reduce: reduce-scatter down each
  torus dimension in turn (shrinking the shard), then all-gather back up.

``link_bytes_per_s`` is the bandwidth of one ICI link *per direction*;
a torus dimension gives each chip two links (both ring directions), which
bidirectional ring algorithms exploit, so the effective ring bandwidth is
``2 * link_bytes_per_s``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ConfigurationError

#: Per-ring-step overhead (software + hop latency), seconds.
DEFAULT_STEP_OVERHEAD_S = 2e-6


def _check(volume_bytes: float, ring_size: int, link_bytes_per_s: float) -> None:
    if volume_bytes < 0:
        raise ConfigurationError("volume must be non-negative")
    if ring_size <= 0:
        raise ConfigurationError("ring size must be positive")
    if link_bytes_per_s <= 0:
        raise ConfigurationError("bandwidth must be positive")


def ring_reduce_scatter_time_s(
    volume_bytes: float,
    ring_size: int,
    link_bytes_per_s: float,
    step_overhead_s: float = DEFAULT_STEP_OVERHEAD_S,
) -> float:
    """Reduce-scatter ``volume_bytes`` (per node) over a bidirectional ring."""
    _check(volume_bytes, ring_size, link_bytes_per_s)
    if ring_size == 1:
        return 0.0
    bw = 2.0 * link_bytes_per_s
    return (ring_size - 1) / ring_size * volume_bytes / bw + (
        ring_size - 1
    ) * step_overhead_s


def ring_all_gather_time_s(
    volume_bytes: float,
    ring_size: int,
    link_bytes_per_s: float,
    step_overhead_s: float = DEFAULT_STEP_OVERHEAD_S,
) -> float:
    """All-gather producing ``volume_bytes`` per node (same cost shape)."""
    return ring_reduce_scatter_time_s(
        volume_bytes, ring_size, link_bytes_per_s, step_overhead_s
    )


def ring_all_reduce_time_s(
    volume_bytes: float,
    ring_size: int,
    link_bytes_per_s: float,
    step_overhead_s: float = DEFAULT_STEP_OVERHEAD_S,
) -> float:
    """All-reduce ``volume_bytes`` over one ring: RS + AG."""
    return ring_reduce_scatter_time_s(
        volume_bytes, ring_size, link_bytes_per_s, step_overhead_s
    ) + ring_all_gather_time_s(volume_bytes, ring_size, link_bytes_per_s, step_overhead_s)


def hierarchical_all_reduce_time_s(
    volume_bytes: float,
    extents: Sequence[int],
    link_bytes_per_s: float,
    step_overhead_s: float = DEFAULT_STEP_OVERHEAD_S,
) -> float:
    """All-reduce over a multi-dimensional torus group.

    Reduce-scatters along each dimension in turn -- the live shard shrinks
    by the dimension extent each time -- then all-gathers in reverse
    order.  For a single dimension this degenerates to
    :func:`ring_all_reduce_time_s`.
    """
    if not extents:
        return 0.0
    for n in extents:
        if n <= 0:
            raise ConfigurationError(f"extents must be positive, got {extents}")
    total = 0.0
    shard = volume_bytes
    shards = []
    for n in extents:
        total += ring_reduce_scatter_time_s(shard, n, link_bytes_per_s, step_overhead_s)
        shards.append(shard)
        shard /= n
    for n, shard_before in zip(reversed(list(extents)), reversed(shards)):
        total += ring_all_gather_time_s(
            shard_before, n, link_bytes_per_s, step_overhead_s
        )
    return total


def point_to_point_time_s(
    volume_bytes: float, link_bytes_per_s: float, hops: int = 1
) -> float:
    """Pipelined point-to-point transfer (pipeline-stage activations)."""
    if hops <= 0:
        raise ConfigurationError("hops must be positive")
    _check(volume_bytes, 1, link_bytes_per_s)
    return volume_bytes / link_bytes_per_s + hops * DEFAULT_STEP_OVERHEAD_S
