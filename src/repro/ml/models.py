"""LLM configurations: the Table 2 model zoo.

Table 2 evaluates three production-scale LLMs on a 4096-chip slice:

======  ===========  ====================  ================
model   parameters   optimal slice         speedup vs 16^3
======  ===========  ====================  ================
LLM0    35 billion   8 x 16 x 32           1.54x
LLM1    70 billion   4 x 4 x 256           3.32x
LLM2    150 billion  16 x 16 x 16          1.00x
======  ===========  ====================  ================

§4.2.1 explains the drivers: model size sets the inherent *model*
parallelism; global batch size sets the inherent *data* parallelism.
LLM0/LLM1 have batch sizes much larger than their model sizes (LLM1 most
skewed), so they prefer asymmetric shapes; LLM2 is large with a moderate
batch, preferring the maximum-bisection symmetric shape.

The zoo's hidden sizes follow the standard transformer parameter count
``P ~ 12 * L * h^2``; batch sizes are calibrated so the shape search of
:mod:`repro.ml.shape_search` reproduces the table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class LlmConfig:
    """One transformer LLM training configuration."""

    name: str
    num_params: float
    num_layers: int
    hidden_dim: int
    seq_len: int
    global_batch_seqs: int

    def __post_init__(self) -> None:
        if self.num_params <= 0:
            raise ConfigurationError("parameter count must be positive")
        if min(self.num_layers, self.hidden_dim, self.seq_len, self.global_batch_seqs) <= 0:
            raise ConfigurationError("all model dimensions must be positive")

    @classmethod
    def from_params(
        cls,
        name: str,
        num_params: float,
        num_layers: int,
        seq_len: int,
        global_batch_seqs: int,
    ) -> "LlmConfig":
        """Derive the hidden size from ``P ~ 12 * L * h^2``."""
        if num_params <= 0 or num_layers <= 0:
            raise ConfigurationError("parameters and layers must be positive")
        hidden = int(round(math.sqrt(num_params / (12.0 * num_layers)) / 128) * 128)
        if hidden <= 0:
            raise ConfigurationError("derived hidden size is zero; check inputs")
        return cls(
            name=name,
            num_params=num_params,
            num_layers=num_layers,
            hidden_dim=hidden,
            seq_len=seq_len,
            global_batch_seqs=global_batch_seqs,
        )

    @property
    def global_batch_tokens(self) -> float:
        return float(self.global_batch_seqs) * self.seq_len

    @property
    def flops_per_step(self) -> float:
        """Training FLOPs per step: the standard 6 * P * tokens."""
        return 6.0 * self.num_params * self.global_batch_tokens

    def __str__(self) -> str:
        return (
            f"{self.name}({self.num_params / 1e9:.0f}B, L={self.num_layers}, "
            f"h={self.hidden_dim}, GB={self.global_batch_seqs} seqs)"
        )


#: The Table 2 model zoo.  Batch sizes encode the paper's parallelism
#: skew: LLM1's batch/params ratio is the largest (most data-parallel),
#: LLM2's the smallest.  The values are calibrated jointly with
#: :class:`repro.ml.perfmodel.TrainingStepModel` so the shape search
#: reproduces Table 2's optima and speedups.
LLM_ZOO: Dict[str, LlmConfig] = {
    "llm0": LlmConfig.from_params(
        "LLM0", 35e9, num_layers=48, seq_len=2048, global_batch_seqs=1440
    ),
    "llm1": LlmConfig.from_params(
        "LLM1", 70e9, num_layers=80, seq_len=2048, global_batch_seqs=10240
    ),
    "llm2": LlmConfig.from_params(
        "LLM2", 150e9, num_layers=96, seq_len=2048, global_batch_seqs=1024
    ),
}
