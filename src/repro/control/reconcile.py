"""Anti-entropy reconciliation: intended links vs. hardware snapshots.

Crash recovery (:mod:`repro.control.journal`) restores the *controller*;
this loop heals the *fabric*.  Divergence between the logical-link table
and the switches' actual cross-connect state creeps in from stuck
mirrors, HV board failures, operators poking devices directly, or a
half-programmed transaction a dead controller left behind.  The
reconciler periodically:

1. **diffs** intent against a :meth:`~repro.core.fabric_manager.
   FabricManager.snapshot` of every switch, classifying each divergence
   (:class:`DriftKind`): a *missing circuit* (intent with no hardware),
   a *wrong peer* (north port landed on the wrong south port), or an
   *orphan circuit* (hardware nobody intends);
2. builds the **minimal repair plan** -- only drifted switches are
   targeted, and on those, only the drifted circuits are disturbed
   (bystanders ride through untouched, §2.3 job isolation);
3. issues the plan through the **resilient transaction path**
   (:class:`~repro.faults.resilience.ResilientReconfigurer`), so repair
   programming itself retries through RPC timeouts and rolls back
   cleanly on exhaustion, to try again next round.

The loop converges when :meth:`~repro.core.fabric_manager.FabricManager.
verify_links` is empty and no orphans remain.

Scope note: the reconciler treats the logical-link table as the *whole*
intent, so it only suits managers operated through that table (the
durable controller path).  Assemblies that program circuits without
logical links (e.g. the superpod's wiring) would see those circuits as
orphans; point it only at fabrics it owns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import TransactionError
from repro.core.fabric_manager import FabricManager
from repro.core.ids import LinkId, OcsId
from repro.faults.resilience import (
    ControlPlaneFaults,
    ResilientReconfigurer,
    RetryPolicy,
)
from repro.obs import NULL_OBS, Observability


class DriftKind(enum.Enum):
    """Classification of one intent/hardware divergence."""

    #: An intended link's circuit does not exist on the switch.
    MISSING_CIRCUIT = "missing-circuit"
    #: The link's north port is connected, but to the wrong south port.
    WRONG_PEER = "wrong-peer"
    #: A hardware circuit no logical link claims.
    ORPHAN_CIRCUIT = "orphan-circuit"


@dataclass(frozen=True)
class Drift:
    """One detected divergence.

    Attributes:
        kind: the classification.
        ocs: switch the drift lives on.
        link_id: the intended link (None for orphans).
        north: north port involved.
        want_south: intended south port (None for orphans).
        have_south: observed south port (None when no circuit exists).
    """

    kind: DriftKind
    ocs: OcsId
    link_id: Optional[LinkId]
    north: int
    want_south: Optional[int]
    have_south: Optional[int]

    def __str__(self) -> str:
        who = self.link_id if self.link_id is not None else "(orphan)"
        return (
            f"[{self.kind.value}] {who}@{self.ocs} N{self.north}: "
            f"want S{self.want_south}, have S{self.have_south}"
        )


@dataclass(frozen=True)
class ReconcileReport:
    """Outcome of one :meth:`Reconciler.run` pass."""

    rounds: int
    initial_drifts: Tuple[Drift, ...]
    repaired_circuits: int
    transactions: int
    rollbacks: int
    converged: bool


@dataclass
class Reconciler:
    """The anti-entropy loop over one fabric manager.

    Args:
        manager: the fabric under management.
        policy: retry policy for repair transactions.
        faults: injected control-plane fault state (repairs run through
            it, like any other programming).
        seed: seed for the repair transactions' backoff jitter.
        drop_orphans: tear down hardware circuits no link intends
            (the anti-entropy default); False leaves them in place and
            reports them every round.
    """

    manager: FabricManager
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    faults: Optional[ControlPlaneFaults] = None
    seed: int = 0
    drop_orphans: bool = True
    obs: Optional[Observability] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]

    # ------------------------------------------------------------------ #
    # Diff
    # ------------------------------------------------------------------ #

    def diff(self) -> Tuple[Drift, ...]:
        """Classify every divergence between intent and hardware."""
        snapshot = self.manager.snapshot()
        drifts: List[Drift] = []
        claimed: Dict[OcsId, Dict[int, int]] = {ocs: {} for ocs in snapshot}
        for link in self.manager.links:
            state = snapshot.get(link.ocs)
            if state is None:
                drifts.append(
                    Drift(DriftKind.MISSING_CIRCUIT, link.ocs, link.link_id,
                          link.north, link.south, None)
                )
                continue
            claimed[link.ocs][link.north] = link.south
            have = state.south_of(link.north)
            if have is None:
                drifts.append(
                    Drift(DriftKind.MISSING_CIRCUIT, link.ocs, link.link_id,
                          link.north, link.south, None)
                )
            elif have != link.south:
                drifts.append(
                    Drift(DriftKind.WRONG_PEER, link.ocs, link.link_id,
                          link.north, link.south, have)
                )
        for ocs in sorted(snapshot):
            intent = claimed[ocs]
            for north, south in sorted(snapshot[ocs].circuits):
                if intent.get(north) != south:
                    # Either nobody intends this north port, or it is a
                    # wrong-peer occupation (already reported above via
                    # the link); only unclaimed circuits are orphans.
                    if north not in intent and not self._south_claimed(
                        intent, south
                    ):
                        drifts.append(
                            Drift(DriftKind.ORPHAN_CIRCUIT, ocs, None,
                                  north, None, south)
                        )
        return tuple(drifts)

    @staticmethod
    def _south_claimed(intent: Dict[int, int], south: int) -> bool:
        return south in intent.values()

    # ------------------------------------------------------------------ #
    # Repair
    # ------------------------------------------------------------------ #

    def repair_targets(
        self, drifts: Tuple[Drift, ...]
    ) -> Dict[OcsId, CrossConnectMap]:
        """Minimal per-switch target maps fixing the given drifts.

        Only drifted switches appear; each target starts from the
        switch's current state so undrifted circuits are preserved
        verbatim (and therefore land in the plan's ``unchanged`` set).
        """
        touched = sorted({d.ocs for d in drifts if self._repairable(d)})
        snapshot = self.manager.snapshot()
        intent: Dict[OcsId, Dict[int, int]] = {ocs: {} for ocs in touched}
        for link in self.manager.links:
            if link.ocs in intent:
                intent[link.ocs][link.north] = link.south
        targets: Dict[OcsId, CrossConnectMap] = {}
        for ocs in touched:
            circuits = {n: s for n, s in snapshot[ocs].circuits}
            want = intent[ocs]
            if self.drop_orphans:
                claimed_souths = set(want.values())
                circuits = {
                    n: s
                    for n, s in circuits.items()
                    if n in want or s in claimed_souths
                }
            # Clear both ports of every intended circuit, then land it.
            for north, south in sorted(want.items()):
                circuits.pop(north, None)
                circuits = {n: s for n, s in circuits.items() if s != south}
            for north, south in sorted(want.items()):
                circuits[north] = south
            targets[ocs] = CrossConnectMap.from_circuits(
                snapshot[ocs].radix, circuits
            )
        return targets

    def _repairable(self, drift: Drift) -> bool:
        if drift.kind is DriftKind.ORPHAN_CIRCUIT and not self.drop_orphans:
            return False
        try:
            self.manager.switch(drift.ocs)
        except Exception:
            return False
        return True

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def run_once(self) -> Tuple[Tuple[Drift, ...], int, bool]:
        """One diff-and-repair pass.

        Returns ``(drifts, circuits_disturbed, rolled_back)``; a rolled
        back repair transaction (injected faults exhausted the retries)
        leaves the fabric for the next round.
        """
        with self.obs.tracer.span("reconcile.round") as span:
            drifts = self.diff()
            span.set_attr("drifts", len(drifts))
            for drift in drifts:
                self.obs.metrics.counter(
                    "reconcile.drifts", kind=drift.kind.value
                ).inc()
            if not any(self._repairable(d) for d in drifts):
                return drifts, 0, False
            targets = self.repair_targets(drifts)
            if not targets:
                return drifts, 0, False
            reconfigurer = ResilientReconfigurer(
                manager=self.manager,
                policy=self.policy,
                faults=self.faults,
                seed=self.seed,
                obs=self.obs,
            )
            try:
                result = reconfigurer.reconfigure(targets)
            except TransactionError:
                self.obs.metrics.counter("reconcile.rollbacks").inc()
                span.set_attr("rolled_back", True)
                return drifts, 0, True
            self.obs.metrics.counter("reconcile.repaired_circuits").inc(
                result.circuits_disturbed
            )
            return drifts, result.circuits_disturbed, False

    def run(self, max_rounds: int = 5) -> ReconcileReport:
        """Diff and repair until clean or ``max_rounds`` is exhausted."""
        initial: Tuple[Drift, ...] = ()
        repaired = 0
        transactions = 0
        rollbacks = 0
        rounds = 0
        with self.obs.tracer.span("reconcile.run", max_rounds=max_rounds) as span:
            for round_index in range(max_rounds):
                drifts, disturbed, rolled_back = self.run_once()
                if round_index == 0:
                    initial = drifts
                if not any(self._repairable(d) for d in drifts):
                    break
                rounds += 1
                transactions += 1
                repaired += disturbed
                rollbacks += 1 if rolled_back else 0
            # Convergence ignores drift the loop is configured not to act on
            # (orphans under drop_orphans=False, unregistered switches).
            converged = not any(
                self._repairable(d) for d in self.diff()
            ) and not self.manager.verify_links()
            span.set_attr("rounds", rounds)
            span.set_attr("converged", converged)
            self.obs.metrics.counter("reconcile.runs").inc()
            if not converged:
                self.obs.metrics.counter("reconcile.unconverged_runs").inc()
        return ReconcileReport(
            rounds=rounds,
            initial_drifts=initial,
            repaired_circuits=repaired,
            transactions=transactions,
            rollbacks=rollbacks,
            converged=converged,
        )
