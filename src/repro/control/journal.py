"""The durable fabric-manager front end and its crash-recovery protocol.

Mission-Apollo-style management plane (§3.2.2): the controller's
volatile state (the logical-link table, in-flight transactions) must be
reconstructible after a crash, because the hardware keeps running -- the
switches hold their mirrors wherever the dead controller left them.

:class:`DurableController` wraps a :class:`~repro.core.fabric_manager.
FabricManager` so that **every intent mutation is journaled before any
switch is touched**:

- single ops (``establish``/``adopt``/``teardown``) are one WAL record
  each -- the record *is* the commit marker, so a crash between the
  append and the hardware apply rolls the op forward on recovery;
- multi-OCS ``reconfigure`` is a transaction: a ``txn-begin`` record
  carries the full targets *and* the pre-transaction state, per-switch
  ``txn-apply`` records land as each switch is programmed, and a
  ``txn-commit`` marker seals the batch.  Recovery rolls a transaction
  **forward** when the commit marker is durable and **back** (to the
  journaled pre-state) when it is not -- deterministically, whatever
  subset of switches the crash left programmed;
- ``checkpoint()`` snapshots the whole control plane into the log and
  compacts everything older.

:func:`recover` is the restart path: repair the WAL tail, load the last
checkpoint, replay the committed suffix into an *intent* model, resolve
the at-most-one open transaction, then drive every switch's hardware to
the intent with hitless plans.  Running it twice is a no-op the second
time (replay idempotence), and the resulting
:meth:`~repro.core.fabric_manager.FabricManager.state_digest` is a pure
function of the journal bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import (
    ConfigurationError,
    CrossConnectError,
    IdempotencyError,
    PortInUseError,
    RecoveryError,
    TopologyError,
)
from repro.core.fabric_manager import FabricManager, LogicalLink
from repro.core.ids import LinkId, OcsId
from repro.core.reconfig import plan_reconfiguration
from repro.control.wal import CrashSchedule, WalRecord, WriteAheadLog
from repro.obs import NULL_OBS, Observability

#: WAL record kinds written by the controller.
KIND_CHECKPOINT = "checkpoint"
KIND_OP = "op"
KIND_TXN_BEGIN = "txn-begin"
KIND_TXN_APPLY = "txn-apply"
KIND_TXN_COMMIT = "txn-commit"


def _circuits_payload(circuits: Mapping[int, int]) -> List[List[int]]:
    return [[n, s] for n, s in sorted(circuits.items())]


def _circuits_from_payload(entry) -> Dict[int, int]:
    return {int(n): int(s) for n, s in entry}


#: Sentinel distinguishing "token unknown" from a committed None result.
_TOKEN_MISS = object()


@dataclass
class DurableController:
    """WAL-backed front end to a fabric manager.

    All intent mutations flow through here; the wrapped manager's own
    mutating methods must not be called directly once a controller owns
    it, or the journal and reality diverge (the reconciler will find the
    drift, but recovery correctness is only guaranteed through this
    API).

    Args:
        manager: the fabric manager (its switches are "the hardware").
        wal: the write-ahead log; pass one whose ``storage`` survived a
            crash to :func:`recover` instead of building directly.
        crash: optional deterministic crash schedule shared with the
            WAL (drills); every append and hardware apply is a step.
        token_table_cap: retained idempotency tokens.  This cap is a
            **correctness bound**, not a tuning knob: once the table
            overflows, the oldest token is evicted (observable via the
            ``control.journal.token_evictions`` counter and
            :attr:`tokens_evicted`), and a retry that presents an
            evicted token raises :class:`~repro.core.errors.
            IdempotencyError` instead of silently double-applying.
            Size it above the maximum in-flight retry window.

    **Idempotency tokens.**  Every intent mutation accepts an optional
    ``token``.  The token rides in the journaled payload, so "this
    request committed" and "this token is burned" are the same durable
    fact: retrying a committed request with its original token replays
    the committed result without appending a second journal entry or
    touching hardware again.  Recovery rebuilds the token table from the
    WAL (and checkpoints persist it across compaction), so a client that
    crashed mid-retry can safely retry against the recovered controller.
    """

    manager: FabricManager
    wal: WriteAheadLog = field(default_factory=WriteAheadLog)
    crash: Optional[CrashSchedule] = None
    obs: Optional[Observability] = field(default=None, repr=False)
    token_table_cap: int = 4096
    _tokens: Dict[str, Tuple[object, ...]] = field(
        init=False, default_factory=dict, repr=False
    )
    _evicted_tokens: set = field(init=False, default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]
        self.wal.crash = self.crash
        if self.wal.byte_size == 0:
            # Adoption bootstrap: the genesis checkpoint records the state
            # the controller inherited.  Not crash-instrumented -- the
            # operator watches this one step.
            self.wal.crash = None
            self.wal.append(KIND_CHECKPOINT, self.manager.checkpoint())
            self.wal.crash = self.crash

    # ------------------------------------------------------------------ #
    # Instrumentation
    # ------------------------------------------------------------------ #

    def _step(self, label: str) -> None:
        if self.crash is not None:
            self.crash.step(label)

    # ------------------------------------------------------------------ #
    # Idempotency tokens
    # ------------------------------------------------------------------ #

    def _token_replay(self, token: Optional[str], op: str):
        """Committed result for ``token``, or ``_TOKEN_MISS`` if unseen.

        A token whose table entry was evicted raises loudly: replaying
        it would re-execute a committed mutation, which is exactly the
        double-apply the tokens exist to prevent.
        """
        if token is None:
            return _TOKEN_MISS
        spec = self._tokens.get(token)
        if spec is None:
            if token in self._evicted_tokens:
                self.obs.metrics.counter(
                    "control.journal.token_replay_after_eviction", op=op
                ).inc()
                raise IdempotencyError(
                    f"token {token!r} ({op}) was evicted from the idempotency "
                    f"table (cap {self.token_table_cap}); its committed result "
                    "can no longer be replayed safely -- raise token_table_cap "
                    "above the in-flight retry window"
                )
            return _TOKEN_MISS
        self.obs.metrics.counter("control.journal.token_replays", op=op).inc()
        if spec[0] == "link":
            return LogicalLink(
                LinkId(str(spec[1])), OcsId(int(spec[2])), int(spec[3]), int(spec[4])
            )
        if spec[0] == "duration":
            return float(spec[1])
        return None  # committed teardown

    def _remember(self, token: Optional[str], spec: Tuple[object, ...]) -> None:
        if token is None:
            return
        self._tokens[token] = spec
        self._evicted_tokens.discard(token)
        while len(self._tokens) > self.token_table_cap:
            evicted = next(iter(self._tokens))
            self._tokens.pop(evicted)
            self._evicted_tokens.add(evicted)
            self.obs.metrics.counter("control.journal.token_evictions").inc()

    @property
    def known_tokens(self) -> int:
        return len(self._tokens)

    @property
    def tokens_evicted(self) -> int:
        """Tokens dropped past :attr:`token_table_cap` -- each one is a
        request id that can no longer be retried safely."""
        return len(self._evicted_tokens)

    # ------------------------------------------------------------------ #
    # Single-record ops (the record is the commit marker)
    # ------------------------------------------------------------------ #

    def _check_new_link(self, link_id: LinkId) -> None:
        try:
            self.manager.link(link_id)
        except TopologyError:
            return
        raise ConfigurationError(f"link {link_id} already exists")

    def establish(
        self,
        link_id: LinkId,
        ocs_id: OcsId,
        north: int,
        south: int,
        *,
        token: Optional[str] = None,
    ) -> LogicalLink:
        """Journal then create one circuit + logical link."""
        replay = self._token_replay(token, "establish")
        if replay is not _TOKEN_MISS:
            return replay  # type: ignore[return-value]
        self._check_new_link(link_id)
        sw = self.manager.switch(ocs_id)
        if sw.state.south_of(north) is not None or sw.state.north_of(south) is not None:
            raise PortInUseError(
                f"{ocs_id}: N{north} or S{south} already carries a circuit"
            )
        with self.obs.tracer.span("control.op", op="establish", link=link_id):
            payload = {"op": "establish", "link": str(link_id), "ocs": ocs_id.index,
                       "north": north, "south": south}
            if token is not None:
                payload["token"] = token
            self.wal.append(KIND_OP, payload)
            self._remember(token, ("link", str(link_id), ocs_id.index, north, south))
            self._step("op-durable")
            link = self.manager.establish(link_id, ocs_id, north, south)
            self._step("op-applied")
        self.obs.metrics.counter("control.journal.ops", op="establish").inc()
        return link

    def adopt_link(
        self,
        link_id: LinkId,
        ocs_id: OcsId,
        north: int,
        south: int,
        *,
        token: Optional[str] = None,
    ) -> LogicalLink:
        """Journal then record intent for an already-existing circuit."""
        replay = self._token_replay(token, "adopt")
        if replay is not _TOKEN_MISS:
            return replay  # type: ignore[return-value]
        self._check_new_link(link_id)
        sw = self.manager.switch(ocs_id)
        if sw.state.south_of(north) != south:
            raise CrossConnectError(
                f"{ocs_id}: no circuit N{north} -> S{south} to adopt for {link_id}"
            )
        with self.obs.tracer.span("control.op", op="adopt", link=link_id):
            payload = {"op": "adopt", "link": str(link_id), "ocs": ocs_id.index,
                       "north": north, "south": south}
            if token is not None:
                payload["token"] = token
            self.wal.append(KIND_OP, payload)
            self._remember(token, ("link", str(link_id), ocs_id.index, north, south))
            self._step("op-durable")
            link = self.manager.adopt_link(link_id, ocs_id, north, south)
            self._step("op-applied")
        self.obs.metrics.counter("control.journal.ops", op="adopt").inc()
        return link

    def teardown(self, link_id: LinkId, *, token: Optional[str] = None) -> None:
        """Journal then destroy a logical link and its circuit."""
        replay = self._token_replay(token, "teardown")
        if replay is not _TOKEN_MISS:
            return None
        link = self.manager.link(link_id)
        with self.obs.tracer.span("control.op", op="teardown", link=link_id):
            payload = {"op": "teardown", "link": str(link_id), "ocs": link.ocs.index,
                       "north": link.north, "south": link.south}
            if token is not None:
                payload["token"] = token
            self.wal.append(KIND_OP, payload)
            self._remember(token, ("none",))
            self._step("op-durable")
            self.manager.teardown(link_id)
            self._step("op-applied")
        self.obs.metrics.counter("control.journal.ops", op="teardown").inc()

    # ------------------------------------------------------------------ #
    # Multi-OCS transactions
    # ------------------------------------------------------------------ #

    def reconfigure(
        self,
        targets: Mapping[OcsId, CrossConnectMap],
        *,
        token: Optional[str] = None,
    ) -> float:
        """Journaled multi-OCS reconfiguration.

        ``txn-begin`` (targets + pre-state) -> per-switch apply +
        ``txn-commit``.  A crash at any point recovers
        deterministically: forward past the commit marker, back before
        it.  The token (if any) rides on ``txn-begin`` but is only
        burned by the commit marker -- a rolled-back transaction leaves
        its token spendable, so the retry re-executes.
        """
        replay = self._token_replay(token, "reconfigure")
        if replay is not _TOKEN_MISS:
            return float(replay)  # type: ignore[arg-type]
        plans = self.manager.plan(targets)
        order = sorted(plans)
        begin_payload = {
            "targets": {
                str(ocs_id.index): _circuits_payload(
                    dict(targets[ocs_id].circuits)
                )
                for ocs_id in order
            },
            "pre": {
                str(ocs_id.index): _circuits_payload(
                    dict(self.manager.switch(ocs_id).state.circuits)
                )
                for ocs_id in order
            },
        }
        if token is not None:
            begin_payload["token"] = token
        self.wal.append(KIND_TXN_BEGIN, begin_payload)
        self._step("txn-begin-durable")
        max_duration = 0.0
        with self.obs.tracer.span("control.txn", switches=len(order)):
            for ocs_id in order:
                duration = self.manager.apply_switch_plan(ocs_id, plans[ocs_id])
                max_duration = max(max_duration, duration)
                self._step("txn-switch-applied")
                self.wal.append(KIND_TXN_APPLY, {"ocs": ocs_id.index})
                self._step("txn-apply-durable")
            self.wal.append(KIND_TXN_COMMIT, {})
            self._remember(token, ("duration", max_duration))
            self._step("txn-commit-durable")
            self.manager.drop_stale_links()
            self.obs.metrics.counter("control.txn.commits").inc()
        return max_duration

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> WalRecord:
        """Snapshot the control plane into the log and compact behind it.

        The idempotency-token table rides in the checkpoint payload
        (insertion order preserved, for eviction), so compaction cannot
        forget which requests already committed.
        """
        with self.obs.tracer.span("control.checkpoint"):
            payload = dict(self.manager.checkpoint())
            payload["tokens"] = [
                [tok, *spec] for tok, spec in self._tokens.items()
            ]
            # Evicted tokens are durable too: compaction must not turn
            # "evicted, unsafe to retry" back into "never seen".
            payload["evicted_tokens"] = sorted(self._evicted_tokens)
            record = self.wal.append(KIND_CHECKPOINT, payload)
            self._step("checkpoint-durable")
            self.wal.compact(record.seq)
        self.obs.metrics.counter("control.checkpoint.writes").inc()
        return record

    def state_digest(self) -> str:
        """Digest of the live control-plane state (delegates)."""
        return self.manager.state_digest()


# ---------------------------------------------------------------------- #
# Recovery
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class RecoveryReport:
    """What one crash recovery did, deterministically.

    Attributes:
        records_replayed: committed records applied after the checkpoint.
        checkpoint_seq: seq of the checkpoint the replay started from
            (``-1`` when the log held none).
        tail_bytes_dropped: torn/corrupt tail bytes discarded.
        open_txn: fate of the at-most-one unfinished transaction --
            ``"none"``, ``"rolled-forward"`` (commit marker durable), or
            ``"rolled-back"``.
        switches_repaired: switches whose hardware needed driving.
        circuits_driven: total breaks+makes recovery applied to hardware.
        state_digest: the recovered manager's state digest.
    """

    records_replayed: int
    checkpoint_seq: int
    tail_bytes_dropped: int
    open_txn: str
    switches_repaired: int
    circuits_driven: int
    state_digest: str


def _replay_intent(
    records: Tuple[WalRecord, ...],
) -> Tuple[
    Dict[str, Tuple[int, int, int]],
    Dict[int, Dict[int, int]],
    int,
    str,
    int,
    Dict[str, Tuple[object, ...]],
    set,
]:
    """Fold the committed record suffix into the intent model.

    Returns ``(links, intended_circuits_per_switch, checkpoint_seq,
    open_txn_outcome, replayed_count, tokens, evicted_tokens)``.
    """
    links: Dict[str, Tuple[int, int, int]] = {}
    intended: Dict[int, Dict[int, int]] = {}
    tokens: Dict[str, Tuple[object, ...]] = {}
    evicted: set = set()
    checkpoint_seq = -1
    open_txn: Optional[Mapping[str, object]] = None
    last_outcome = "none"
    replayed = 0

    def drop_stale_links() -> None:
        stale = [
            name
            for name, (ocs, n, s) in links.items()
            if intended.get(ocs, {}).get(n) != s
        ]
        for name in stale:
            del links[name]

    for record in records:
        if record.kind == KIND_CHECKPOINT:
            links.clear()
            intended.clear()
            tokens.clear()
            evicted.clear()
            open_txn = None
            last_outcome = "none"
            replayed = 0
            checkpoint_seq = record.seq
            for key, entry in sorted(record.payload["switches"].items()):  # type: ignore[index]
                intended[int(key)] = _circuits_from_payload(entry["circuits"])
            for name, ocs, n, s in record.payload["links"]:  # type: ignore[index]
                links[str(name)] = (int(ocs), int(n), int(s))
            for tok, *spec in record.payload.get("tokens", []):  # type: ignore[union-attr]
                tokens[str(tok)] = tuple(spec)
            evicted.update(
                str(tok)
                for tok in record.payload.get("evicted_tokens", [])  # type: ignore[union-attr]
            )
            continue
        replayed += 1
        if record.kind == KIND_OP:
            p = record.payload
            ocs, north, south = int(p["ocs"]), int(p["north"]), int(p["south"])
            if p["op"] in ("establish", "adopt"):
                intended.setdefault(ocs, {})[north] = south
                links[str(p["link"])] = (ocs, north, south)
                if "token" in p:
                    tokens[str(p["token"])] = ("link", str(p["link"]), ocs, north, south)
            else:  # teardown
                circuits = intended.get(ocs, {})
                if circuits.get(north) == south:
                    del circuits[north]
                links.pop(str(p["link"]), None)
                if "token" in p:
                    tokens[str(p["token"])] = ("none",)
        elif record.kind == KIND_TXN_BEGIN:
            open_txn = record.payload
        elif record.kind == KIND_TXN_APPLY:
            pass  # informational: which switches were programmed pre-crash
        elif record.kind == KIND_TXN_COMMIT:
            if open_txn is not None:
                for key, entry in sorted(open_txn["targets"].items()):  # type: ignore[index]
                    intended[int(key)] = _circuits_from_payload(entry)
                drop_stale_links()
                if "token" in open_txn:
                    # Replayed transactions report zero duration: the
                    # hardware work happened in the committed execution.
                    tokens[str(open_txn["token"])] = ("duration", 0.0)
                open_txn = None
                last_outcome = "rolled-forward"
        else:
            raise RecoveryError(f"unknown WAL record kind {record.kind!r}")
    if open_txn is not None:
        # No commit marker: the transaction never happened, intent-wise.
        # Hardware the crash left half-programmed is driven back to the
        # journaled pre-state by the reconcile pass below.
        last_outcome = "rolled-back"
    # A record after the checkpoint resurrects its token's committed
    # result, which makes the token replayable again.
    evicted.difference_update(tokens)
    return links, intended, checkpoint_seq, last_outcome, replayed, tokens, evicted


def recover(
    manager: FabricManager,
    storage: bytearray,
    *,
    crash: Optional[CrashSchedule] = None,
    obs: Optional[Observability] = None,
) -> Tuple[DurableController, RecoveryReport]:
    """Restart the controller from surviving WAL media.

    ``manager`` must have the surviving switch devices registered --
    their hardware state is whatever the crash left -- but its volatile
    link table is ignored and rebuilt.  Returns the new controller and a
    deterministic report; raises :class:`~repro.core.errors.
    RecoveryError` if the recovered intent cannot be realized.
    """
    if obs is None:
        obs = NULL_OBS  # type: ignore[assignment]
    with obs.tracer.span("control.recover") as span:
        start_ms = obs.clock.now()
        wal = WriteAheadLog(storage)
        tail_dropped = wal.repair_tail()
        records = wal.records(strict=True)
        (
            links, intended, checkpoint_seq, open_txn, replayed, tokens, evicted,
        ) = _replay_intent(records)

        switches_repaired = 0
        circuits_driven = 0
        for index in sorted(intended):
            ocs_id = OcsId(index)
            try:
                sw = manager.switch(ocs_id)
            except TopologyError:
                raise RecoveryError(
                    f"journal names {ocs_id} but it is not registered with the manager"
                ) from None
            target = CrossConnectMap.from_circuits(sw.radix, intended[index])
            plan = plan_reconfiguration(sw.state, target)
            if not plan.is_noop:
                with obs.tracer.span(
                    "control.recover.drive", ocs=ocs_id,
                    disturbed=plan.num_disturbed,
                ):
                    obs.clock.advance(sw.apply_plan(plan))
                switches_repaired += 1
                circuits_driven += plan.num_disturbed
        manager.replace_links(
            LogicalLink(LinkId(name), OcsId(ocs), north, south)
            for name, (ocs, north, south) in sorted(links.items())
        )
        bad = manager.verify_links()
        if bad:
            raise RecoveryError(
                f"recovery left {len(bad)} link(s) unrealized: "
                f"{', '.join(str(b) for b in bad)}"
            )
        controller = DurableController(
            manager=manager, wal=wal, crash=crash, obs=obs
        )
        # The token table is durable state: rebuilt from the journal so
        # a client retrying across the crash replays, never re-applies.
        # The evicted set rides along so "unsafe to retry" survives too.
        controller._tokens = tokens
        controller._evicted_tokens = evicted
        report = RecoveryReport(
            records_replayed=replayed,
            checkpoint_seq=checkpoint_seq,
            tail_bytes_dropped=tail_dropped,
            open_txn=open_txn,
            switches_repaired=switches_repaired,
            circuits_driven=circuits_driven,
            state_digest=manager.state_digest(),
        )
        span.set_attr("records_replayed", replayed)
        span.set_attr("open_txn", open_txn)
        span.set_attr("switches_repaired", switches_repaired)
        obs.metrics.counter("control.recover.runs").inc()
        obs.metrics.counter("control.recover.records_replayed").inc(replayed)
        obs.metrics.counter("control.recover.circuits_driven").inc(circuits_driven)
        obs.metrics.counter("control.recover.txn_outcome", outcome=open_txn).inc()
        obs.metrics.histogram("control.recover.duration_ms").observe(
            obs.clock.now() - start_ms
        )
    return controller, report
