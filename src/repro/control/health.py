"""Fleet link-health watchdog: flap damping, quarantine, requalification.

§3.2.2's availability story is *preemptive*: telemetry spots a circuit
going bad and the control plane moves traffic off it before it fails.
This module closes that loop fleet-wide with BGP-style flap damping:

- every transceiver flap or telemetry anomaly **charges a penalty** to
  its circuit's health state;
- the penalty **decays exponentially** with a configurable half-life;
- crossing the **suppress threshold** quarantines the circuit: if the
  OCS has a :class:`~repro.fabric.repair.RepairLoop` with a usable
  spare, the circuit is *steered* to the spare preemptively (capacity
  preserved, suspect plant idled); with no spare it is *held out* of
  service (capacity lost -- feed :meth:`FleetHealthWatchdog.
  held_out_fraction` into :func:`repro.tpu.degradation.
  quarantine_step_degradation` and the scheduler's ``fabric_slowdown``
  hook to price it);
- once the penalty decays below the **reuse threshold** *and* the
  **hold-down** has elapsed, the circuit is requalified (§4.2.3 grading
  via :meth:`~repro.fabric.repair.RepairLoop.port_qualifies`) and
  released; steered circuits move home when the original port passes
  requalification, otherwise they stay on the spare.

Bystander circuits are never touched by any of this: quarantine acts on
exactly one north port at a time through the repair loop's single-
circuit moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.errors import CapacityError, ConfigurationError
from repro.fabric.repair import RepairLoop
from repro.faults.events import FaultEvent, FaultKind
from repro.obs import NULL_OBS, Observability
from repro.ocs.telemetry import Anomaly

#: A circuit's fleet-wide identity: (OCS index, north port).  The north
#: port is stable across spare steering; the south port is tracked state.
CircuitKey = Tuple[int, int]


@dataclass(frozen=True)
class DampingPolicy:
    """BGP-style flap-damping parameters.

    Args:
        flap_penalty: penalty per transceiver flap.
        anomaly_penalty: penalty per telemetry anomaly (loss drift etc.).
        suppress_threshold: decayed penalty at which a circuit is
            quarantined.
        reuse_threshold: decayed penalty below which a quarantined
            circuit becomes eligible for release.
        half_life_s: exponential decay half-life of the penalty.
        max_penalty: ceiling on the accumulated penalty (bounds the
            maximum suppression time, as in BGP).
        hold_down_s: minimum quarantine duration regardless of decay.
    """

    flap_penalty: float = 1000.0
    anomaly_penalty: float = 600.0
    suppress_threshold: float = 2500.0
    reuse_threshold: float = 800.0
    half_life_s: float = 60.0
    max_penalty: float = 8000.0
    hold_down_s: float = 120.0

    def __post_init__(self) -> None:
        if self.flap_penalty <= 0 or self.anomaly_penalty <= 0:
            raise ConfigurationError("penalties must be positive")
        if not 0 < self.reuse_threshold < self.suppress_threshold:
            raise ConfigurationError(
                "need 0 < reuse_threshold < suppress_threshold"
            )
        if self.suppress_threshold > self.max_penalty:
            raise ConfigurationError("suppress_threshold must be <= max_penalty")
        if self.half_life_s <= 0:
            raise ConfigurationError("half_life_s must be positive")
        if self.hold_down_s < 0:
            raise ConfigurationError("hold_down_s must be non-negative")

    def decayed(self, penalty: float, dt_s: float) -> float:
        """The penalty after ``dt_s`` seconds of exponential decay."""
        if dt_s <= 0:
            return penalty
        return penalty * 0.5 ** (dt_s / self.half_life_s)

    def max_suppress_s(self) -> float:
        """Longest possible suppression from a single release condition:
        time for ``max_penalty`` to decay to ``reuse_threshold``."""
        import math

        return self.half_life_s * math.log2(self.max_penalty / self.reuse_threshold)


@dataclass
class CircuitHealth:
    """Damping state of one watched circuit."""

    key: CircuitKey
    south: int
    home_south: int
    penalty: float = 0.0
    updated_s: float = 0.0
    flaps: int = 0
    anomalies: int = 0
    quarantined_since_s: Optional[float] = None
    steered_to: Optional[int] = None

    @property
    def quarantined(self) -> bool:
        return self.quarantined_since_s is not None

    @property
    def held_out(self) -> bool:
        """Quarantined with no spare carrying the traffic: capacity lost."""
        return self.quarantined and self.steered_to is None


@dataclass(frozen=True)
class QuarantineAction:
    """One watchdog decision, for the audit trail."""

    time_s: float
    key: CircuitKey
    action: str  # "steer" | "hold-out" | "release" | "release-home"
    penalty: float
    detail: str = ""


@dataclass
class FleetHealthWatchdog:
    """Damping, quarantine, and release across a fleet of OCSes.

    Wire it up with :meth:`watch_circuit` (one call per production
    circuit), optionally give each OCS a repair loop with
    :meth:`add_repair_loop` (enables preemptive spare steering), map
    endpoint fault targets with :meth:`map_endpoint`, and either
    :meth:`attach` it to a :class:`~repro.faults.injector.FaultInjector`
    or feed observations directly.  Call :meth:`poll` on the simulation
    clock to execute quarantine/release decisions.
    """

    policy: DampingPolicy = field(default_factory=DampingPolicy)
    actions: List[QuarantineAction] = field(default_factory=list)
    obs: Optional[Observability] = field(default=None, repr=False)
    _circuits: Dict[CircuitKey, CircuitHealth] = field(default_factory=dict, repr=False)
    _repairs: Dict[int, RepairLoop] = field(default_factory=dict, repr=False)
    _endpoints: Dict[str, CircuitKey] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def watch_circuit(self, ocs_index: int, north: int, south: int) -> CircuitKey:
        """Start tracking health for one circuit."""
        key = (ocs_index, north)
        if key in self._circuits:
            raise ConfigurationError(f"circuit {key} already watched")
        self._circuits[key] = CircuitHealth(key=key, south=south, home_south=south)
        return key

    def add_repair_loop(self, ocs_index: int, loop: RepairLoop) -> None:
        """Enable preemptive spare steering for one OCS."""
        self._repairs[ocs_index] = loop

    def map_endpoint(self, fault_target: str, ocs_index: int, north: int) -> None:
        """Route a fault-event target (e.g. ``endpoint-tx3-a``) to its circuit."""
        self._endpoints[fault_target] = (ocs_index, north)

    def attach(self, injector) -> "FleetHealthWatchdog":
        """Subscribe to transceiver-flap events on an injector timeline."""
        injector.subscribe(FaultKind.TRANSCEIVER_FLAP, self._on_flap_event)
        return self

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #

    def _on_flap_event(self, event: FaultEvent) -> None:
        if event.recovery:
            return
        key = self._endpoints.get(event.target)
        if key is not None and key in self._circuits:
            self.observe_flap(key[0], key[1], event.time_s)

    def _charge(self, state: CircuitHealth, amount: float, now_s: float) -> None:
        decayed = self.policy.decayed(state.penalty, now_s - state.updated_s)
        state.penalty = min(decayed + amount, self.policy.max_penalty)
        state.updated_s = now_s

    def observe_flap(self, ocs_index: int, north: int, now_s: float) -> float:
        """Charge one transceiver flap; returns the new decayed penalty."""
        state = self._state(ocs_index, north)
        state.flaps += 1
        self._charge(state, self.policy.flap_penalty, now_s)
        self.obs.metrics.counter("health.observations", kind="flap").inc()
        return state.penalty

    def observe_anomaly(self, ocs_index: int, anomaly: Anomaly, now_s: float) -> float:
        """Charge one telemetry anomaly (loss drift / over-max)."""
        state = self._state(ocs_index, anomaly.circuit[0])
        state.anomalies += 1
        self._charge(state, self.policy.anomaly_penalty, now_s)
        self.obs.metrics.counter("health.observations", kind="anomaly").inc()
        return state.penalty

    def _state(self, ocs_index: int, north: int) -> CircuitHealth:
        try:
            return self._circuits[(ocs_index, north)]
        except KeyError:
            raise ConfigurationError(
                f"circuit (ocs {ocs_index}, N{north}) is not watched"
            ) from None

    def penalty(self, ocs_index: int, north: int, now_s: float) -> float:
        """Current decayed penalty of one circuit."""
        state = self._state(ocs_index, north)
        return self.policy.decayed(state.penalty, now_s - state.updated_s)

    # ------------------------------------------------------------------ #
    # The decision loop
    # ------------------------------------------------------------------ #

    def poll(self, now_s: float) -> List[QuarantineAction]:
        """Execute pending quarantine / release decisions at ``now_s``."""
        executed: List[QuarantineAction] = []
        with self.obs.tracer.span("health.poll", now_s=now_s) as span:
            for key in sorted(self._circuits):
                state = self._circuits[key]
                p = self.policy.decayed(state.penalty, now_s - state.updated_s)
                if not state.quarantined and p >= self.policy.suppress_threshold:
                    executed.append(self._quarantine(state, p, now_s))
                elif (
                    state.quarantined
                    and now_s - state.quarantined_since_s >= self.policy.hold_down_s
                    and p <= self.policy.reuse_threshold
                ):
                    action = self._release(state, p, now_s)
                    if action is not None:
                        executed.append(action)
            self.actions.extend(executed)
            span.set_attr("actions", len(executed))
            for action in executed:
                self.obs.metrics.counter(
                    "health.actions", action=action.action
                ).inc()
                self.obs.tracer.event(
                    f"{action.action} ocs{action.key[0]}/N{action.key[1]}: "
                    f"{action.detail}"
                )
            self.obs.metrics.gauge("health.held_out.fraction").set(
                self.held_out_fraction()
            )
        return executed

    def _quarantine(
        self, state: CircuitHealth, penalty: float, now_s: float
    ) -> QuarantineAction:
        ocs_index, north = state.key
        state.quarantined_since_s = now_s
        loop = self._repairs.get(ocs_index)
        if loop is not None and loop.ocs.state.south_of(north) == state.south:
            try:
                action = loop.preemptive_move(north, reason="quarantine")
            except CapacityError as err:
                return QuarantineAction(
                    now_s, state.key, "hold-out", penalty,
                    f"no usable spare ({err}); capacity lost",
                )
            state.steered_to = action.new_circuit[1]
            state.south = action.new_circuit[1]
            return QuarantineAction(
                now_s, state.key, "steer", penalty,
                f"steered to spare S{state.south}",
            )
        return QuarantineAction(
            now_s, state.key, "hold-out", penalty, "no repair loop; capacity lost"
        )

    def _release(
        self, state: CircuitHealth, penalty: float, now_s: float
    ) -> Optional[QuarantineAction]:
        ocs_index, north = state.key
        loop = self._repairs.get(ocs_index)
        if state.steered_to is not None and loop is not None:
            home_free = loop.ocs.state.north_of(state.home_south) is None
            if home_free and loop.port_qualifies(north, state.home_south):
                loop.move_circuit(north, state.home_south, reason="requalified")
                state.south = state.home_south
                state.steered_to = None
                state.quarantined_since_s = None
                return QuarantineAction(
                    now_s, state.key, "release-home", penalty,
                    f"home port S{state.home_south} requalified",
                )
            # Home plant still bad: the spare becomes the circuit's seat.
            state.quarantined_since_s = None
            return QuarantineAction(
                now_s, state.key, "release", penalty,
                f"stays on spare S{state.south} (home failed requalification)",
            )
        if loop is not None and not loop.port_qualifies(north, state.south):
            return None  # held-out circuit still fails grading: stay dark
        state.quarantined_since_s = None
        return QuarantineAction(now_s, state.key, "release", penalty, "requalified")

    # ------------------------------------------------------------------ #
    # Capacity feeds (degradation model / scheduler)
    # ------------------------------------------------------------------ #

    def quarantined(self) -> Tuple[CircuitKey, ...]:
        """Keys of every circuit currently quarantined."""
        return tuple(k for k in sorted(self._circuits) if self._circuits[k].quarantined)

    def held_out(self) -> Tuple[CircuitKey, ...]:
        """Quarantined circuits with no spare carrying them (capacity lost)."""
        return tuple(k for k in sorted(self._circuits) if self._circuits[k].held_out)

    @property
    def num_watched(self) -> int:
        return len(self._circuits)

    def held_out_fraction(self, ocs_index: Optional[int] = None) -> float:
        """Fraction of watched circuits currently out of service.

        Feed into :func:`repro.tpu.degradation.quarantine_step_degradation`
        (per-OCS) or a scheduler ``fabric_slowdown`` hook (fleet-wide).
        """
        keys = [
            k for k in self._circuits if ocs_index is None or k[0] == ocs_index
        ]
        if not keys:
            return 0.0
        out = sum(1 for k in keys if self._circuits[k].held_out)
        return out / len(keys)

    def circuit(self, ocs_index: int, north: int) -> CircuitHealth:
        """Live health state of one circuit (read-only use)."""
        return self._state(ocs_index, north)
