"""An append-only write-ahead log for control-plane intent.

Every intent mutation of the durable fabric manager
(:mod:`repro.control.journal`) is serialized into one :class:`WalRecord`
and framed into a byte log before any switch is touched.  The format is
deliberately boring -- the recovery properties come from its discipline:

- **monotonic sequence numbers**: each record carries ``seq`` one above
  its predecessor; a gap or regression marks the log corrupt from that
  point on;
- **checksums**: every frame ends in a CRC-32 of its body; a flipped
  bit is detected on replay instead of being applied;
- **atomic commit markers**: multi-record transactions end in a commit
  record, and a record only counts once its *whole* frame landed -- a
  torn final write (controller died mid-append) is recognized as a
  truncated tail and discarded, exactly like a real WAL's tail scan.

Frame layout (big-endian)::

    +------+-----------+------------------+-----------+
    | "WR" | len(body) |   body (JSON)    | CRC32(body)|
    | 2 B  |   4 B     |   len(body) B    |    4 B     |
    +------+-----------+------------------+-----------+

The body is canonical JSON (``sort_keys``, no whitespace) of
``{"seq": int, "kind": str, "payload": {...}}``, so a whole log has a
byte-stable :meth:`~WriteAheadLog.digest`.

Crash injection is deterministic: a :class:`CrashSchedule` counts the
instrumented steps of the controller (WAL appends, hardware applies) and
raises :class:`~repro.core.errors.ControllerCrash` at exactly the
configured step -- optionally landing only a prefix of the in-flight
frame to model a torn write.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError, ControllerCrash, WalError

#: Frame magic: marks the start of every record.
MAGIC = b"WR"

#: Bytes of framing around the body: magic + length prefix + CRC suffix.
FRAME_OVERHEAD = len(MAGIC) + 4 + 4


@dataclass(frozen=True)
class WalRecord:
    """One durable intent record.

    Attributes:
        seq: monotonic sequence number (``+1`` per append, surviving
            compaction).
        kind: record type tag (``op``/``txn-begin``/``txn-apply``/
            ``txn-commit``/``checkpoint``).
        payload: JSON-serializable record detail.
        offset: byte offset of the frame in the log it was read from
            (``-1`` for records just appended).
    """

    seq: int
    kind: str
    payload: Mapping[str, object]
    offset: int = -1

    def body(self) -> bytes:
        """Canonical JSON bytes of the record (what gets checksummed)."""
        return json.dumps(
            {"kind": self.kind, "payload": self.payload, "seq": self.seq},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")


@dataclass
class CrashSchedule:
    """Deterministic controller-crash trigger for recovery drills.

    The durable controller ticks this schedule at every instrumented
    step (each WAL append, each per-switch hardware apply).  When the
    1-based step counter reaches ``at_step`` the schedule raises
    :class:`~repro.core.errors.ControllerCrash` -- once; subsequent
    steps proceed normally so the same object can finish a drill.

    ``torn_bytes`` models a torn write: if the fatal step is a WAL
    append, that many bytes of the in-flight frame still land before
    the crash, leaving a truncated final record for recovery to discard.
    """

    at_step: Optional[int] = None
    torn_bytes: int = 0
    steps_taken: int = 0
    fired_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at_step is not None and self.at_step < 1:
            raise ConfigurationError("crash step is 1-based")
        if self.torn_bytes < 0:
            raise ConfigurationError("torn_bytes must be non-negative")

    def _fire(self, label: str) -> None:
        self.at_step = None
        self.fired_label = label
        raise ControllerCrash(
            f"injected controller crash at step {self.steps_taken} ({label})",
            step=self.steps_taken,
            label=label,
        )

    def step(self, label: str) -> None:
        """Tick one controller-level step (e.g. after a hardware apply)."""
        if self.at_step is None:
            return
        self.steps_taken += 1
        if self.steps_taken >= self.at_step:
            self._fire(label)

    def append_point(self, storage: bytearray, frame: bytes) -> None:
        """Tick the pre-durability point of one WAL append.

        A crash here means the frame never landed -- except for the
        torn-write prefix, which is written before raising (never the
        whole frame: a fully-landed frame is not torn).
        """
        if self.at_step is None:
            return
        self.steps_taken += 1
        if self.steps_taken >= self.at_step:
            if self.torn_bytes > 0:
                storage.extend(frame[: min(self.torn_bytes, len(frame) - 1)])
            self._fire("wal-append")


@dataclass(frozen=True)
class WalReadResult:
    """Outcome of scanning a log: the valid prefix plus tail diagnosis."""

    records: Tuple[WalRecord, ...]
    valid_bytes: int
    truncated: bool = False
    corrupt: bool = False
    detail: str = ""


@dataclass
class WriteAheadLog:
    """The append-only byte log (storage survives controller crashes).

    The backing ``storage`` bytearray stands in for the durable device:
    hand the same object to a new :class:`WriteAheadLog` to model a
    controller restart over surviving media.
    """

    storage: bytearray = field(default_factory=bytearray)
    crash: Optional[CrashSchedule] = None
    _next_seq: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        # Reopening existing media: continue the sequence after the last
        # valid record (the torn/corrupt tail never claims seq numbers).
        scan = self.scan()
        if scan.records:
            self._next_seq = scan.records[-1].seq + 1

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    @staticmethod
    def encode(record: WalRecord) -> bytes:
        """Frame one record: magic + length + body + CRC32."""
        body = record.body()
        return (
            MAGIC
            + struct.pack(">I", len(body))
            + body
            + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)
        )

    def append(self, kind: str, payload: Mapping[str, object]) -> WalRecord:
        """Durably append one record; returns it with its assigned seq.

        The frame lands atomically (or, under an injected torn-write
        crash, as a recognizable truncated tail).
        """
        record = WalRecord(seq=self._next_seq, kind=kind, payload=dict(payload))
        frame = self.encode(record)
        if self.crash is not None:
            self.crash.append_point(self.storage, frame)
        offset = len(self.storage)
        self.storage.extend(frame)
        self._next_seq += 1
        return WalRecord(record.seq, record.kind, record.payload, offset=offset)

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def scan(self, strict: bool = False) -> WalReadResult:
        """Walk the log from the start, validating every frame.

        Returns the longest valid record prefix.  A truncated final
        frame (torn write) or a checksum/framing/sequence violation ends
        the scan; ``strict=True`` raises :class:`~repro.core.errors.
        WalError` for the latter instead of reporting it.
        """
        records: List[WalRecord] = []
        data = bytes(self.storage)
        pos = 0
        expected_seq: Optional[int] = None

        def bad(detail: str, *, truncated: bool = False) -> WalReadResult:
            if strict and not truncated:
                raise WalError(detail, offset=pos)
            return WalReadResult(
                records=tuple(records),
                valid_bytes=pos,
                truncated=truncated,
                corrupt=not truncated,
                detail=detail,
            )

        while pos < len(data):
            header_end = pos + len(MAGIC) + 4
            if header_end > len(data):
                return bad(f"truncated frame header at offset {pos}", truncated=True)
            if data[pos : pos + len(MAGIC)] != MAGIC:
                return bad(f"bad magic at offset {pos}")
            (body_len,) = struct.unpack(">I", data[pos + len(MAGIC) : header_end])
            frame_end = header_end + body_len + 4
            if frame_end > len(data):
                return bad(f"truncated frame body at offset {pos}", truncated=True)
            body = data[header_end : header_end + body_len]
            (crc,) = struct.unpack(">I", data[frame_end - 4 : frame_end])
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                return bad(f"checksum mismatch at offset {pos}")
            try:
                decoded = json.loads(body.decode("utf-8"))
                record = WalRecord(
                    seq=int(decoded["seq"]),
                    kind=str(decoded["kind"]),
                    payload=decoded["payload"],
                    offset=pos,
                )
            except (KeyError, TypeError, ValueError) as err:
                return bad(f"undecodable body at offset {pos}: {err}")
            if expected_seq is not None and record.seq != expected_seq:
                return bad(
                    f"sequence break at offset {pos}: "
                    f"expected {expected_seq}, found {record.seq}"
                )
            expected_seq = record.seq + 1
            records.append(record)
            pos = frame_end
        return WalReadResult(records=tuple(records), valid_bytes=pos)

    def records(self, strict: bool = False) -> Tuple[WalRecord, ...]:
        """The valid record prefix (see :meth:`scan`)."""
        return self.scan(strict=strict).records

    def __iter__(self) -> Iterator[WalRecord]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def repair_tail(self) -> int:
        """Drop any truncated/corrupt tail; returns bytes discarded.

        This is the reopen-after-crash step: everything after the last
        whole, checksummed record is garbage by definition (the append
        it belonged to never committed).
        """
        scan = self.scan()
        dropped = len(self.storage) - scan.valid_bytes
        if dropped:
            del self.storage[scan.valid_bytes :]
        return dropped

    def compact(self, keep_from_seq: int) -> int:
        """Drop records below ``keep_from_seq`` (post-checkpoint GC).

        Sequence numbers keep counting across compaction so monotonicity
        checks still hold.  Returns the number of records dropped.
        """
        scan = self.scan()
        keep = [r for r in scan.records if r.seq >= keep_from_seq]
        dropped = len(scan.records) - len(keep)
        fresh = bytearray()
        for record in keep:
            # Crash points while the old log is still fully intact: the
            # rewrite is staged off to the side and swapped in at once,
            # so a crash anywhere in here leaves the pre-compaction log.
            if self.crash is not None:
                self.crash.step("compact-record")
            fresh.extend(self.encode(record))
        if self.crash is not None:
            self.crash.step("compact-swap")
        del self.storage[:]
        self.storage.extend(fresh)
        return dropped

    @property
    def byte_size(self) -> int:
        return len(self.storage)

    def digest(self) -> str:
        """SHA-256 over the valid record prefix (byte-stable)."""
        scan = self.scan()
        return hashlib.sha256(bytes(self.storage[: scan.valid_bytes])).hexdigest()
