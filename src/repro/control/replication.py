"""Replicated control plane: lease-based leadership, fencing, failover.

The paper's fabrics hang off a single SDN controller (Orion); Mission
Apollo's deployment experience says control-plane redundancy -- not
optics -- gates OCS rollout at scale.  This module is that HA layer for
the reproduction: a :class:`ReplicationGroup` of ``2f+1``
:class:`ReplicaNode`\\ s, each owning its own fabric-manager state
machine, kept consistent by a replicated operation log.

The protocol is a lease-flavored cut of the standard quorum recipe
(Raft / Viewstamped Replication), engineered so **safety never depends
on clocks** while **liveness degrades gracefully** when they lie:

- **Epochs are the fencing tokens.**  Every leadership grant and every
  log entry carries a monotonic epoch.  A replica durably promises the
  highest epoch it has seen and refuses appends from anything lower --
  a deposed leader's in-flight write dies as a counted *fencing
  rejection*, never a double-apply.
- **Leases gate elections, not commits.**  A replica only grants a new
  leader's election once the old lease looks expired *on its own
  (possibly skewed) clock*.  Clock skew can therefore delay or hasten
  elections -- a liveness wobble -- but a commit is only acknowledged
  to the client after a **majority** accepted the entry at the leader's
  epoch, so at most one leader can commit at any point in the history
  regardless of what the clocks claim.
- **Whole-suffix shipping with truncation.**  The leader ships its log
  to followers on every append and heartbeat; an accepting follower
  adopts it wholesale (uncommitted divergent suffixes are truncated,
  exactly like Raft's conflict rule).  Elections adopt the most
  complete log -- keyed ``(last entry epoch, length)`` -- among the
  grant quorum, which intersects every past commit quorum, so no
  committed entry is ever lost (Leader Completeness).
- **A no-op barrier entry** is committed at the start of every reign
  (Raft §5.4.2): earlier-epoch entries only become committed as the
  prefix of a current-epoch quorum ack.

State machine: each replica applies committed entries, in order, to its
own :class:`~repro.core.fabric_manager.FabricManager`; the safety pin is
that any replica's ``state_digest()`` equals a from-scratch serial
replay of the committed prefix (:func:`serial_replay_digest`) byte for
byte.

Fault wiring (:meth:`ReplicationGroup.attach_faults`): ``CONTROLLER_CRASH``
kills a replica's volatile state (the durable promise + log survive,
its manager is rebuilt by replay), ``NETWORK_PARTITION`` isolates a
replica or splits the group, ``CLOCK_SKEW`` bends one replica's lease
arithmetic.  Idempotency composes with PR 6's tokens: a committed
``token`` resubmitted after failover replays its entry instead of
appending a second one.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.errors import (
    ConfigurationError,
    NotLeaderError,
    QuorumError,
    ReplicationError,
)
from repro.core.fabric_manager import FabricManager
from repro.core.ids import LinkId, OcsId
from repro.faults.events import (
    FaultEvent,
    FaultKind,
    parse_partition_groups,
    target_index,
)
from repro.faults.injector import FaultInjector
from repro.obs import NULL_OBS, Observability


class Role(enum.Enum):
    LEADER = "leader"
    FOLLOWER = "follower"


@dataclass(frozen=True)
class LogEntry:
    """One replicated operation: ``(epoch, seq)`` is its fencing identity.

    ``epoch`` is the reign that appended it; ``seq`` its log position.
    Two entries at the same seq with different epochs are *different*
    operations -- the lower-epoch one was never committed and is
    truncated when its replica rejoins.
    """

    epoch: int
    seq: int
    payload: Mapping[str, object]

    def canonical(self) -> str:
        body = json.dumps(self.payload, sort_keys=True, separators=(",", ":"))
        return f"{self.epoch}|{self.seq}|{body}"


def apply_entry(manager: FabricManager, payload: Mapping[str, object]) -> None:
    """Apply one committed operation to a replica's state machine.

    The vocabulary matches the serving layer's commit log: ``noop``
    (election barrier), ``establish``/``teardown`` (slice circuits), and
    ``retarget`` (traffic updates: disconnect-then-connect per (ocs,
    north) -> south, last writer wins).
    """
    op = payload["op"]
    if op == "noop":
        return
    if op == "establish":
        manager.establish(
            LinkId(str(payload["link"])),
            OcsId(int(payload["ocs"])),
            int(payload["north"]),
            int(payload["south"]),
        )
        return
    if op == "teardown":
        manager.teardown(LinkId(str(payload["link"])))
        return
    if op == "retarget":
        for ocs_index, north, south in payload["changes"]:
            state = manager.switch(OcsId(int(ocs_index))).state
            north, south = int(north), int(south)
            if state.south_of(north) == south:
                continue
            if state.south_of(north) is not None:
                state.disconnect(north)
            other = state.north_of(south)
            if other is not None:
                state.disconnect(other)
            state.connect(north, south)
        return
    raise ReplicationError(f"unknown replicated op {op!r}")


def serial_replay_digest(
    manager_factory: Callable[[], FabricManager],
    entries: Sequence[LogEntry],
) -> str:
    """State digest of a from-scratch serial replay (the correctness pin)."""
    manager = manager_factory()
    for entry in entries:
        apply_entry(manager, entry.payload)
    return manager.state_digest()


def log_digest(entries: Sequence[LogEntry]) -> str:
    """SHA-256 over canonical entries -- byte-stable log identity."""
    h = hashlib.sha256()
    for entry in entries:
        h.update(entry.canonical().encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class ReplicaNode:
    """One controller replica: durable log + promise, volatile the rest.

    Durable across crashes (the replica's "disk"): ``promised_epoch``
    and ``log``.  Everything else -- role, lease view, commit/applied
    cursors, the state-machine manager itself -- is volatile and is
    reconstructed after a restart by re-learning the commit index from
    the next leader contact.
    """

    index: int
    manager_factory: Callable[[], FabricManager] = field(repr=False)

    # Durable state.
    promised_epoch: int = 0
    log: List[LogEntry] = field(default_factory=list)

    # Volatile state.
    up: bool = True
    role: Role = Role.FOLLOWER
    epoch: int = 0
    lease_holder: Optional[int] = None
    lease_epoch: int = 0
    lease_expiry_local_s: float = float("-inf")
    commit_index: int = 0
    applied_index: int = 0
    skew_s: float = 0.0
    manager: Optional[FabricManager] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.manager is None:
            self.manager = self.manager_factory()

    # -- clocks and leases --------------------------------------------- #

    def local_now(self, now_s: float) -> float:
        """This replica's (possibly skewed) view of the true time."""
        return now_s + self.skew_s

    def lease_valid(self, now_s: float) -> bool:
        """Does this replica believe some leader currently holds a lease?

        Judged on the replica's *local* clock -- skew makes this view
        wrong in either direction, which is exactly why no safety
        decision may rest on it alone.
        """
        return (
            self.lease_holder is not None
            and self.local_now(now_s) <= self.lease_expiry_local_s
        )

    def grant_lease(self, holder: int, epoch: int, now_s: float, lease_s: float) -> None:
        self.lease_holder = holder
        self.lease_epoch = epoch
        self.lease_expiry_local_s = self.local_now(now_s) + lease_s

    # -- crash / restart ----------------------------------------------- #

    def crash(self) -> None:
        """Lose all volatile state; the durable promise + log survive."""
        self.up = False
        self.role = Role.FOLLOWER
        self.epoch = 0
        self.lease_holder = None
        self.lease_epoch = 0
        self.lease_expiry_local_s = float("-inf")
        self.commit_index = 0
        self.applied_index = 0
        self.manager = None

    def restart(self) -> None:
        """Reboot over surviving durable state; commit index is re-learned
        from the next leader contact, and the manager is rebuilt by
        replaying the committed prefix as it becomes known."""
        self.up = True
        self.manager = self.manager_factory()

    # -- state machine ------------------------------------------------- #

    def apply_committed(self) -> None:
        """Advance the state machine to the commit index."""
        assert self.manager is not None
        while self.applied_index < self.commit_index:
            apply_entry(self.manager, self.log[self.applied_index].payload)
            self.applied_index += 1

    def state_digest(self) -> str:
        assert self.manager is not None
        return self.manager.state_digest()

    @property
    def last_entry_epoch(self) -> int:
        return self.log[-1].epoch if self.log else -1

    @property
    def log_key(self) -> Tuple[int, int]:
        """Completeness order: (last entry epoch, length)."""
        return (self.last_entry_epoch, len(self.log))


@dataclass(frozen=True)
class CommitRecord:
    """One client-acknowledged commit (the loss-accounting ledger)."""

    epoch: int
    seq: int
    leader: int
    time_s: float
    payload_canonical: str


@dataclass
class ReplicationGroup:
    """A primary/standby controller group with quorum commit.

    All inter-replica RPCs are simulated synchronously: a message
    between two replicas is delivered iff both are up and mutually
    reachable under the current partition at the moment of the call.
    Every method that touches leases or commits takes the true
    simulation time ``now_s``; replicas judge leases on their own skewed
    view of it.
    """

    num_replicas: int = 3
    manager_factory: Callable[[], FabricManager] = field(
        default=FabricManager, repr=False
    )
    lease_s: float = 1.0
    obs: Optional[Observability] = field(default=None, repr=False)

    nodes: List[ReplicaNode] = field(init=False, repr=False)
    leader_index: Optional[int] = field(init=False, default=None)

    # Partition state.
    _isolated: Set[int] = field(init=False, default_factory=set, repr=False)
    _groups: Optional[Tuple[Tuple[int, ...], ...]] = field(
        init=False, default=None, repr=False
    )

    # Accounting (all deterministic).
    elections: int = field(init=False, default=0)
    election_failures: int = field(init=False, default=0)
    fencing_rejections: int = field(init=False, default=0)
    lease_refusals: int = field(init=False, default=0)
    commits: int = field(init=False, default=0)
    failover_durations_s: List[float] = field(init=False, default_factory=list)
    unavailable_s: float = field(init=False, default=0.0)
    _outage_start_s: Optional[float] = field(init=False, default=None)
    _acked: List[CommitRecord] = field(init=False, default_factory=list)
    _epoch_leaders: Dict[int, int] = field(init=False, default_factory=dict)
    _tokens: Dict[str, int] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ConfigurationError("need at least one replica")
        if self.lease_s <= 0:
            raise ConfigurationError("lease duration must be positive")
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]
        self.nodes = [
            ReplicaNode(index=i, manager_factory=self.manager_factory)
            for i in range(self.num_replicas)
        ]

    # ------------------------------------------------------------------ #
    # Reachability
    # ------------------------------------------------------------------ #

    @property
    def quorum(self) -> int:
        """Majority of the *configured* membership, not of live nodes."""
        return self.num_replicas // 2 + 1

    def reachable(self, a: int, b: int) -> bool:
        """Can replicas ``a`` and ``b`` exchange RPCs right now?"""
        if a == b:
            return True
        if not (self.nodes[a].up and self.nodes[b].up):
            return False
        if a in self._isolated or b in self._isolated:
            return False
        if self._groups is not None:
            for group in self._groups:
                if a in group:
                    return b in group
            return False  # a outside every group: unreachable
        return True

    def client_reachable(self, index: int) -> bool:
        """Can the serving layer (colocated with the client majority)
        reach replica ``index``?  Under a group partition the clients
        sit with the largest group (lowest-indexed on ties)."""
        node = self.nodes[index]
        if not node.up or index in self._isolated:
            return False
        if self._groups is not None:
            majority = max(self._groups, key=lambda g: (len(g), [-i for i in g]))
            return index in majority
        return True

    # ------------------------------------------------------------------ #
    # Election (lease grant quorum + most-complete-log adoption)
    # ------------------------------------------------------------------ #

    def elect(self, candidate: int, now_s: float) -> int:
        """Try to elect ``candidate``; returns the new epoch.

        Raises :class:`~repro.core.errors.QuorumError` when a majority
        cannot be assembled (partition, crashes, or unexpired leases).
        Re-electing the current leader is lease renewal with an epoch
        bump.
        """
        cand = self.nodes[candidate]
        if not cand.up:
            raise QuorumError(f"candidate controller-{candidate} is down")
        peers = [
            n for n in self.nodes if n.up and self.reachable(candidate, n.index)
        ]
        epoch = max(n.promised_epoch for n in peers) + 1
        grants: List[ReplicaNode] = []
        for n in peers:
            if epoch <= n.promised_epoch:
                continue  # a concurrent contender got there first
            if n.lease_valid(now_s) and n.lease_holder != candidate:
                self.lease_refusals += 1
                continue  # someone else's lease still looks live here
            n.promised_epoch = epoch  # durable promise: fences epoch-1 writers
            if n.role is Role.LEADER and n.index != candidate:
                n.role = Role.FOLLOWER
            grants.append(n)
        if len(grants) < self.quorum:
            self.election_failures += 1
            self.obs.metrics.counter("control.replication.election_failures").inc()
            raise QuorumError(
                f"election at epoch {epoch}: {len(grants)}/{self.quorum} grants"
            )
        # Leases are installed only once the quorum is assembled.  A vote
        # alone must not start a lease: a failed candidate holds no
        # authority, and letting its self-grant refresh a lease would let
        # retried elections livelock the group forever (every node holding
        # a perpetually-refreshed lease on itself, refusing all others).
        # A *live* leader's lease is refreshed by its heartbeats/ships,
        # so the refusal window above still protects it.
        for n in grants:
            n.grant_lease(candidate, epoch, now_s, self.lease_s)
        # Leader Completeness: adopt the most complete log in the grant
        # quorum -- it intersects every past commit quorum.
        best = max(grants, key=lambda n: n.log_key)
        if best is not cand:
            cand.log = list(best.log)
            # Durable adoption happens before leadership is exercised.
            cand.promised_epoch = max(cand.promised_epoch, epoch)
        cand.role = Role.LEADER
        cand.epoch = epoch
        self.leader_index = candidate
        self.elections += 1
        self.obs.metrics.counter("control.replication.elections").inc()
        # Barrier: no entry from an earlier reign counts as committed
        # until it is covered by a current-epoch quorum ack (§5.4.2).
        self._append_and_commit(
            cand, {"op": "noop", "reason": "barrier"}, now_s, token=None
        )
        self._close_outage(now_s)
        return epoch

    # ------------------------------------------------------------------ #
    # Replication (whole-suffix shipping + quorum commit)
    # ------------------------------------------------------------------ #

    def _ship(self, leader: ReplicaNode, now_s: float) -> List[ReplicaNode]:
        """Ship the leader's log to every reachable follower.

        Returns the accepting followers.  A follower promised to a
        higher epoch rejects the whole ship -- the fencing rejection
        that makes a deposed leader's writes dead on arrival.
        """
        acked: List[ReplicaNode] = []
        for n in self.nodes:
            if n.index == leader.index:
                continue
            if not n.up or not self.reachable(leader.index, n.index):
                continue
            if leader.epoch < n.promised_epoch:
                self.fencing_rejections += 1
                self.obs.metrics.counter(
                    "control.replication.fencing_rejections"
                ).inc()
                continue
            n.promised_epoch = leader.epoch
            if n.role is Role.LEADER:
                n.role = Role.FOLLOWER  # a deposed leader learns of its successor
            # Whole-log adoption: truncates any divergent (necessarily
            # uncommitted) suffix, exactly like Raft's conflict rule.
            n.log = list(leader.log)
            n.grant_lease(leader.index, leader.epoch, now_s, self.lease_s)
            acked.append(n)
        return acked

    def _commit(
        self, leader: ReplicaNode, acked: Sequence[ReplicaNode], now_s: float
    ) -> None:
        leader.commit_index = len(leader.log)
        leader.apply_committed()
        for n in acked:
            n.commit_index = len(n.log)
            n.apply_committed()

    def _append_and_commit(
        self,
        leader: ReplicaNode,
        payload: Mapping[str, object],
        now_s: float,
        token: Optional[str],
    ) -> LogEntry:
        entry = LogEntry(epoch=leader.epoch, seq=len(leader.log), payload=dict(payload))
        leader.log.append(entry)
        acked = self._ship(leader, now_s)
        if 1 + len(acked) < self.quorum:
            # The entry stays as an uncommitted suffix of this node's
            # log; a later adoption from a higher-epoch leader truncates
            # it.  It is never acknowledged, so it can never be "lost".
            raise QuorumError(
                f"commit at epoch {leader.epoch}: {1 + len(acked)}/{self.quorum} acks"
            )
        prior = self._epoch_leaders.setdefault(entry.epoch, leader.index)
        if prior != leader.index:
            raise ReplicationError(
                f"two leaders committed in epoch {entry.epoch}: "
                f"controller-{prior} and controller-{leader.index}"
            )
        self._commit(leader, acked, now_s)
        self.commits += 1
        self.obs.metrics.counter("control.replication.commits").inc()
        if token is not None:
            self._tokens[token] = entry.seq
        self._acked.append(
            CommitRecord(
                epoch=entry.epoch,
                seq=entry.seq,
                leader=leader.index,
                time_s=now_s,
                payload_canonical=entry.canonical(),
            )
        )
        return entry

    def submit(
        self,
        payload: Mapping[str, object],
        now_s: float,
        *,
        token: Optional[str] = None,
    ) -> LogEntry:
        """Commit one operation through the current leader.

        ``token`` composes with PR 6's idempotency machinery: a token
        whose entry already committed replays that entry instead of
        appending again (safe across failover -- committed entries
        survive by Leader Completeness).
        """
        if token is not None and token in self._tokens:
            seq = self._tokens[token]
            leader = self._best_node()
            self.obs.metrics.counter("control.replication.token_replays").inc()
            return leader.log[seq]
        if self.leader_index is None:
            self.note_outage(now_s)
            raise NotLeaderError("no elected leader")
        leader = self.nodes[self.leader_index]
        if not leader.up:
            self.note_outage(now_s)
            raise NotLeaderError(f"leader controller-{leader.index} is down")
        try:
            if not leader.lease_valid(now_s) or leader.lease_holder != leader.index:
                # The lease lapsed (idle gap or skew): renew in place.
                # If a quorum still follows this leader the renewal
                # succeeds and the write proceeds under the new epoch;
                # otherwise the QuorumError routes to failover.
                self.elect(leader.index, now_s)
            entry = self._append_and_commit(leader, payload, now_s, token)
            self._close_outage(now_s)  # commit capability is back
            return entry
        except QuorumError:
            self.note_outage(now_s)
            raise

    def submit_as(
        self,
        index: int,
        payload: Mapping[str, object],
        now_s: float,
        *,
        token: Optional[str] = None,
    ) -> LogEntry:
        """Commit through a *specific* replica that believes it leads.

        This is the deposed-leader path the fencing machinery exists
        for: a replica whose reign ended (partitioned away during a
        re-election) still carries ``role=LEADER`` and an old epoch, and
        its in-flight writes must die.  Its ships are fenced by the
        higher promises a successor's election installed, so the commit
        cannot reach quorum and raises instead of double-applying.
        Unlike :meth:`submit` this never stamps an outage -- the group
        may be perfectly healthy under its real leader.
        """
        node = self.nodes[index]
        if not node.up:
            raise NotLeaderError(f"controller-{index} is down")
        if node.role is not Role.LEADER:
            raise NotLeaderError(f"controller-{index} is not a leader")
        return self._append_and_commit(node, payload, now_s, token)

    def heartbeat(self, now_s: float) -> bool:
        """Leader lease renewal + follower catch-up; True if it landed."""
        if self.leader_index is None:
            return False
        leader = self.nodes[self.leader_index]
        if not leader.up:
            return False
        acked = self._ship(leader, now_s)
        if 1 + len(acked) < self.quorum:
            return False
        leader.grant_lease(leader.index, leader.epoch, now_s, self.lease_s)
        self._commit(leader, acked, now_s)
        return True

    # ------------------------------------------------------------------ #
    # Introspection / accounting
    # ------------------------------------------------------------------ #

    def _best_node(self) -> ReplicaNode:
        """The most authoritative live view (for reads / loss checks)."""
        if self.leader_index is not None and self.nodes[self.leader_index].up:
            return self.nodes[self.leader_index]
        live = [n for n in self.nodes if n.up] or self.nodes
        return max(live, key=lambda n: (n.log_key, -n.index))

    def live_manager(self) -> FabricManager:
        """The leader's state machine (reads route here)."""
        node = self._best_node()
        assert node.manager is not None
        return node.manager

    def leader_serviceable(self) -> bool:
        """Is there a leader the serving layer can currently reach?"""
        return (
            self.leader_index is not None
            and self.nodes[self.leader_index].up
            and self.client_reachable(self.leader_index)
        )

    def note_outage(self, now_s: float) -> None:
        """Stamp the start of a commit-capability outage (idempotent)."""
        if self._outage_start_s is None:
            self._outage_start_s = now_s

    def _close_outage(self, now_s: float) -> None:
        """Close an open outage window as one completed failover."""
        if self._outage_start_s is None:
            return
        duration = max(0.0, now_s - self._outage_start_s)
        self.failover_durations_s.append(duration)
        self.unavailable_s += duration
        self._outage_start_s = None
        self.obs.metrics.histogram("control.replication.failover_s").observe(duration)

    def finalize_outage(self, now_s: float) -> None:
        """Close an open outage window at the end of a run."""
        if self._outage_start_s is not None:
            self.unavailable_s += max(0.0, now_s - self._outage_start_s)
            self._outage_start_s = None

    def availability(self, horizon_s: float) -> float:
        if horizon_s <= 0:
            return 1.0
        return max(0.0, 1.0 - self.unavailable_s / horizon_s)

    def acked_commits(self) -> Tuple[CommitRecord, ...]:
        return tuple(self._acked)

    def epoch_leaders(self) -> Mapping[int, int]:
        """epoch -> the one replica that committed in it (the safety pin)."""
        return dict(self._epoch_leaders)

    def committed_ops_lost(self) -> int:
        """Client-acked commits absent from the current authority's log.

        The acceptance bar is zero, always: every acknowledged operation
        must survive any sequence of crashes, partitions, and skews.

        Loss is judged against the most complete *durable* log in the
        group (crashed replicas keep their logs on disk), because that
        is what the next election quorum adopts -- the grant quorum
        intersects every commit quorum.  A window where only a stale
        minority is up is unavailability, not loss: nothing can commit
        without a quorum, and the acked entries return with the
        majority's disks.
        """
        log = max(self.nodes, key=lambda n: (n.log_key, -n.index)).log
        lost = 0
        for record in self._acked:
            if (
                record.seq >= len(log)
                or log[record.seq].canonical() != record.payload_canonical
            ):
                lost += 1
        return lost

    def committed_entries(self) -> Tuple[LogEntry, ...]:
        node = self._best_node()
        return tuple(node.log[: node.commit_index])

    def state_digest(self) -> str:
        return self._best_node().state_digest()

    def replay_digest(self) -> str:
        """Serial from-scratch replay of the committed prefix."""
        return serial_replay_digest(self.manager_factory, self.committed_entries())

    # ------------------------------------------------------------------ #
    # Fault wiring
    # ------------------------------------------------------------------ #

    def attach_faults(self, injector: FaultInjector) -> None:
        injector.subscribe(FaultKind.CONTROLLER_CRASH, self._on_crash)
        injector.subscribe(FaultKind.NETWORK_PARTITION, self._on_partition)
        injector.subscribe(FaultKind.CLOCK_SKEW, self._on_skew)

    def _on_crash(self, event: FaultEvent) -> None:
        index = target_index(event.target)
        if not 0 <= index < self.num_replicas:
            return
        node = self.nodes[index]
        if event.recovery:
            if not node.up:
                node.restart()
        else:
            node.crash()
            if self.leader_index == index:
                self.leader_index = None
                self.note_outage(event.time_s)

    def _on_partition(self, event: FaultEvent) -> None:
        if event.target.startswith("net-"):
            if event.recovery:
                self._groups = None
            else:
                groups = event.param("groups")
                if groups is None:
                    raise ReplicationError(
                        "group partition event needs a 'groups' param"
                    )
                self._groups = parse_partition_groups(str(groups))
        else:
            index = target_index(event.target)
            if not 0 <= index < self.num_replicas:
                return
            if event.recovery:
                self._isolated.discard(index)
            else:
                self._isolated.add(index)
        if self.leader_index is not None and not self.client_reachable(
            self.leader_index
        ):
            self.note_outage(event.time_s)

    def _on_skew(self, event: FaultEvent) -> None:
        index = target_index(event.target)
        if not 0 <= index < self.num_replicas:
            return
        if event.recovery:
            self.nodes[index].skew_s = 0.0
        else:
            skew = event.param("skew_s", event.severity)
            self.nodes[index].skew_s = float(skew)  # type: ignore[arg-type]


__all__ = [
    "CommitRecord",
    "LogEntry",
    "ReplicaNode",
    "ReplicationGroup",
    "Role",
    "apply_entry",
    "log_digest",
    "serial_replay_digest",
]
