"""The durable, self-healing control plane (§3.2.2).

The paper credits OCS availability to integrating the switches into the
same control/monitoring infrastructure as electrical switches and to
telemetry-driven preemptive repair.  This package is that management
plane for the reproduction:

- :mod:`repro.control.wal` -- an append-only write-ahead log with
  monotonic sequence numbers, CRC-checked frames, and deterministic
  crash injection;
- :mod:`repro.control.journal` -- the :class:`DurableController` that
  journals every intent mutation before touching hardware, and the
  crash-recovery protocol (checkpoint + committed-suffix replay,
  partial multi-OCS transactions rolled forward or back);
- :mod:`repro.control.reconcile` -- the anti-entropy loop diffing
  intended links against hardware snapshots and issuing minimal repair
  plans through the resilient transaction path;
- :mod:`repro.control.health` -- the fleet link-health watchdog with
  BGP-style flap damping, preemptive spare steering, and quarantine
  release after requalification;
- :mod:`repro.control.replication` -- the replicated control plane:
  lease-based leader election over a quorum, monotonic epoch fencing
  tokens, whole-suffix log shipping, and partition/skew-tolerant
  failover accounting.
"""

from repro.control.health import DampingPolicy, FleetHealthWatchdog, QuarantineAction
from repro.control.journal import DurableController, RecoveryReport, recover
from repro.control.replication import (
    CommitRecord,
    LogEntry,
    ReplicaNode,
    ReplicationGroup,
    Role,
    apply_entry,
    log_digest,
    serial_replay_digest,
)
from repro.control.reconcile import Drift, DriftKind, Reconciler
from repro.control.wal import CrashSchedule, WalRecord, WriteAheadLog

__all__ = [
    "CommitRecord",
    "CrashSchedule",
    "DampingPolicy",
    "Drift",
    "DriftKind",
    "DurableController",
    "FleetHealthWatchdog",
    "LogEntry",
    "QuarantineAction",
    "Reconciler",
    "RecoveryReport",
    "ReplicaNode",
    "ReplicationGroup",
    "Role",
    "WalRecord",
    "WriteAheadLog",
    "apply_entry",
    "log_digest",
    "recover",
    "serial_replay_digest",
]
