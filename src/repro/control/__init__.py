"""The durable, self-healing control plane (§3.2.2).

The paper credits OCS availability to integrating the switches into the
same control/monitoring infrastructure as electrical switches and to
telemetry-driven preemptive repair.  This package is that management
plane for the reproduction:

- :mod:`repro.control.wal` -- an append-only write-ahead log with
  monotonic sequence numbers, CRC-checked frames, and deterministic
  crash injection;
- :mod:`repro.control.journal` -- the :class:`DurableController` that
  journals every intent mutation before touching hardware, and the
  crash-recovery protocol (checkpoint + committed-suffix replay,
  partial multi-OCS transactions rolled forward or back);
- :mod:`repro.control.reconcile` -- the anti-entropy loop diffing
  intended links against hardware snapshots and issuing minimal repair
  plans through the resilient transaction path;
- :mod:`repro.control.health` -- the fleet link-health watchdog with
  BGP-style flap damping, preemptive spare steering, and quarantine
  release after requalification.
"""

from repro.control.health import DampingPolicy, FleetHealthWatchdog, QuarantineAction
from repro.control.journal import DurableController, RecoveryReport, recover
from repro.control.reconcile import Drift, DriftKind, Reconciler
from repro.control.wal import CrashSchedule, WalRecord, WriteAheadLog

__all__ = [
    "CrashSchedule",
    "DampingPolicy",
    "Drift",
    "DriftKind",
    "DurableController",
    "FleetHealthWatchdog",
    "QuarantineAction",
    "Reconciler",
    "RecoveryReport",
    "WalRecord",
    "WriteAheadLog",
    "recover",
]
