"""Slice allocation policies: contiguous (TPU v3-style) vs reconfigurable.

§4.2.4: scheduling a 256-chip slice on a TPU v3 pod required finding 256
*contiguous* functional chips; on the v4 superpod, the non-blocking OCS
connects any set of idle cubes, multiplying placement options and easing
defragmentation.

Both policies drive the same :class:`repro.tpu.superpod.Superpod` so the
fabric bookkeeping (circuits, isolation) stays honest; the contiguous
policy simply restricts itself to physically adjacent cube index runs --
the constraint a statically cabled pod imposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.core.errors import SchedulingError
from repro.core.ids import CubeId, SliceId
from repro.obs import Observability
from repro.scheduler.requests import JobRequest
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod


class Allocator(Protocol):
    """Interface both policies implement."""

    @property
    def pod(self) -> Superpod: ...

    def try_allocate(self, job: JobRequest) -> Optional[SliceId]:
        """Place the job; returns the slice id or None when impossible."""

    def release(self, job: JobRequest) -> None:
        """Free the job's slice."""


def _slice_id(job: JobRequest) -> SliceId:
    return SliceId(f"slice-{job.job_id}")


@dataclass
class ReconfigurableAllocator:
    """OCS-enabled placement: any set of idle, healthy cubes works."""

    pod: Superpod
    reconfigurations: int = 0
    obs: Optional[Observability] = field(default=None, repr=False)

    def _count(self, name: str, **labels: object) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name, policy="reconfigurable", **labels).inc()

    def placement_options(self, job: JobRequest) -> int:
        """How many distinct cube sets could host the job (binomial count
        capped for display) -- the scheduling-flexibility win of §4.2.4."""
        from math import comb

        free = len(self.pod.healthy_free_cubes())
        return comb(free, job.cubes) if free >= job.cubes else 0

    def try_allocate(self, job: JobRequest) -> Optional[SliceId]:
        free = self.pod.healthy_free_cubes()
        if len(free) < job.cubes:
            self._count("scheduler.alloc.blocked")
            return None
        chosen = free[: job.cubes]
        topology = SliceTopology.compose(_slice_id(job), job.shape, chosen)
        self.pod.configure_slice(topology)
        self.reconfigurations += 1
        self._count("scheduler.alloc.placed")
        return topology.slice_id

    def release(self, job: JobRequest) -> None:
        self.pod.release_slice(_slice_id(job))

    def handle_cube_failure(self, cube: CubeId) -> Optional[SliceId]:
        """Swap a failed allocated cube for a spare.

        Returns the affected slice id (still configured if a spare was
        available -- the job survives -- or released when the pod has no
        healthy spare), or None when the cube was idle.
        """
        slice_id = None
        for topo in self.pod.slices():
            if cube in topo.cube_ids:
                slice_id = topo.slice_id
                break
        if slice_id is None:
            return None
        if not self.pod.healthy_free_cubes():
            self.pod.release_slice(slice_id)
            self._count("scheduler.alloc.slices_lost")
            return slice_id
        self.pod.swap_cube(slice_id, cube)
        self.reconfigurations += 1
        self._count("scheduler.alloc.cube_swaps")
        return slice_id


@dataclass
class ContiguousAllocator:
    """TPU v3-style placement: a run of adjacent cube indices.

    The static pod's wiring fixes which cubes can form a torus together;
    we model it as requiring ``job.cubes`` consecutive indices, all idle
    and healthy.
    """

    pod: Superpod
    obs: Optional[Observability] = field(default=None, repr=False)

    def _count(self, name: str, **labels: object) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name, policy="contiguous", **labels).inc()

    def _free_runs(self) -> List[Tuple[int, int]]:
        """Maximal runs of idle+healthy cube indices as (start, length)."""
        from repro.scheduler.defrag import free_runs

        return free_runs(self.pod)

    def placement_options(self, job: JobRequest) -> int:
        """Distinct contiguous placements available."""
        return sum(max(0, length - job.cubes + 1) for _, length in self._free_runs())

    def try_allocate(self, job: JobRequest) -> Optional[SliceId]:
        for start, length in self._free_runs():
            if length >= job.cubes:
                chosen = [CubeId(start + i) for i in range(job.cubes)]
                topology = SliceTopology.compose(_slice_id(job), job.shape, chosen)
                self.pod.configure_slice(topology)
                self._count("scheduler.alloc.placed")
                return topology.slice_id
        self._count("scheduler.alloc.blocked")
        return None

    def release(self, job: JobRequest) -> None:
        self.pod.release_slice(_slice_id(job))

    def handle_cube_failure(self, cube: CubeId) -> Optional[SliceId]:
        """A static fabric cannot swap: the affected slice is lost.

        Returns the killed slice's id (caller requeues the job), or None
        when the cube was idle.
        """
        for topo in self.pod.slices():
            if cube in topo.cube_ids:
                self.pod.release_slice(topo.slice_id)
                self._count("scheduler.alloc.slices_lost")
                return topo.slice_id
        return None
