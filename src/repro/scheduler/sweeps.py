"""Scheduler parameter sweeps over the sweep engine (§4.2.4).

The utilization claim ("> 98% despite 4x larger slices") is a point on
a surface: offered load x policy x backfill.  Exploring that surface
means many independent discrete-event runs -- one
:class:`~repro.scheduler.simulator.SchedulerSimulation` per point, each
minutes of simulated cluster time.  This module fans those runs through
:class:`~repro.parallel.SweepEngine`:

- each point is a frozen :class:`SchedulerSweepPoint` carrying the full
  workload and policy spec, so results are content-addressable and a
  tweaked grid recomputes only the new points;
- every point owns its explicit trace/simulation seed (the engine runs
  with ``seed=None``), so worker count and chunking cannot perturb a
  run;
- :func:`utilization_sweep_serial` is the plain-loop oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.parallel import SweepEngine
from repro.scheduler.allocator import ContiguousAllocator, ReconfigurableAllocator
from repro.scheduler.requests import WorkloadGenerator
from repro.scheduler.simulator import SchedulerSimulation
from repro.tpu.superpod import Superpod

#: The §4.2.4 benchmark's job-size mix, reused as the sweep default.
DEFAULT_SIZE_MIX: Dict[int, float] = {
    1: 0.4, 2: 0.25, 4: 0.2, 8: 0.1, 16: 0.04, 32: 0.01,
}

_POLICIES = ("reconfigurable", "contiguous")


@dataclass(frozen=True)
class SchedulerSweepPoint:
    """One sweep point: a workload spec x a policy x a seed."""

    policy: str
    arrival_rate_per_s: float
    mean_duration_s: float
    num_jobs: int
    seed: int
    backfill: bool = True
    warmup_s: float = 20_000.0
    size_mix: Tuple[Tuple[int, float], ...] = tuple(
        sorted(DEFAULT_SIZE_MIX.items())
    )

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; have {_POLICIES}"
            )


def _run_scheduler_point(point: SchedulerSweepPoint) -> Dict[str, float]:
    """Worker: one discrete-event run, summarized as plain floats."""
    gen = WorkloadGenerator(
        arrival_rate_per_s=point.arrival_rate_per_s,
        mean_duration_s=point.mean_duration_s,
        size_mix=dict(point.size_mix),
        seed=point.seed,
    )
    trace = gen.generate(point.num_jobs)
    allocator = (
        ReconfigurableAllocator(Superpod())
        if point.policy == "reconfigurable"
        else ContiguousAllocator(Superpod())
    )
    metrics = SchedulerSimulation(
        allocator, backfill=point.backfill, warmup_s=point.warmup_s,
        seed=point.seed,
    ).run(trace)
    return {
        "utilization": metrics.utilization,
        "mean_wait_s": metrics.mean_wait_s,
        "p95_wait_s": metrics.p95_wait_s,
        "completed": float(metrics.completed),
    }


def sweep_points(
    arrival_rates_per_s: Sequence[float],
    policies: Sequence[str] = _POLICIES,
    num_jobs: int = 500,
    mean_duration_s: float = 7200.0,
    seed: int = 13,
    backfill: bool = True,
    warmup_s: float = 20_000.0,
) -> List[SchedulerSweepPoint]:
    """The (arrival rate x policy) grid, row-major over arrival rates."""
    return [
        SchedulerSweepPoint(
            policy=str(policy),
            arrival_rate_per_s=float(rate),
            mean_duration_s=float(mean_duration_s),
            num_jobs=int(num_jobs),
            seed=int(seed),
            backfill=bool(backfill),
            warmup_s=float(warmup_s),
        )
        for rate in arrival_rates_per_s
        for policy in policies
    ]


def utilization_sweep(
    points: Sequence[SchedulerSweepPoint],
    engine: Optional[SweepEngine] = None,
    cache_tag: Optional[str] = "scheduler.sweep",
) -> List[Dict[str, float]]:
    """Run every sweep point, fanned out over the engine.

    Returns metric dicts aligned with ``points``.  Bit-identical to
    :func:`utilization_sweep_serial` for any engine configuration.
    """
    engine = engine if engine is not None else SweepEngine(workers=1)
    tag = cache_tag if engine.cache is not None else None
    return engine.pmap(_run_scheduler_point, list(points), cache_tag=tag)


def utilization_sweep_serial(
    points: Sequence[SchedulerSweepPoint],
) -> List[Dict[str, float]]:
    """The plain-loop oracle for :func:`utilization_sweep`."""
    return [_run_scheduler_point(p) for p in points]
