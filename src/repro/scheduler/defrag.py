"""Fragmentation metrics and compaction for contiguous placement.

§4.2.4: the OCS pod "defragments more effectively" -- in fact, with
any-cubes placement external fragmentation disappears entirely.  For the
contiguous (static) policy these helpers quantify the problem and model
the compaction a static pod would need (with its migration cost).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.errors import ConfigurationError
from repro.tpu.superpod import Superpod


def free_runs(pod: Superpod) -> List[Tuple[int, int]]:
    """Maximal runs of idle+healthy cube indices as (start, length)."""
    free = {
        cid.index
        for cid in pod.free_cubes()
        if pod.cube(cid).healthy
    }
    runs: List[Tuple[int, int]] = []
    start = None
    for i in range(pod.num_cubes + 1):
        if i < pod.num_cubes and i in free:
            if start is None:
                start = i
        elif start is not None:
            runs.append((start, i - start))
            start = None
    return runs


def fragmentation(pod: Superpod) -> float:
    """External fragmentation: 1 - largest_free_run / total_free.

    Zero when the free space is one block (or empty); approaching one
    when free cubes are scattered singles.
    """
    runs = free_runs(pod)
    total = sum(length for _, length in runs)
    if total == 0:
        return 0.0
    largest = max(length for _, length in runs)
    return 1.0 - largest / total


def largest_placeable_job(pod: Superpod, contiguous: bool) -> int:
    """Largest job (in cubes) placeable right now under each policy.

    Contiguous placement is limited by the largest free run; OCS
    placement by the total healthy free count -- the gap is the
    fragmentation penalty the lightwave fabric removes.
    """
    if contiguous:
        runs = free_runs(pod)
        return max((length for _, length in runs), default=0)
    return len(pod.healthy_free_cubes())


def compact_contiguous(
    pod: Superpod, migration_s_per_cube: float = 120.0
) -> Tuple[int, float]:
    """Model a compaction pass for a statically cabled pod.

    Returns ``(cubes_that_would_move, downtime_s)``.  The pass is a
    *model only* (no state is mutated): it counts how many allocated
    cubes sit above the compacted watermark, each costing a checkpoint-
    restore migration.
    """
    if migration_s_per_cube < 0:
        raise ConfigurationError("migration cost must be non-negative")
    allocated = sorted(c.index for c in pod.allocated_cubes())
    moves = sum(1 for rank, idx in enumerate(allocated) if idx != rank)
    return moves, moves * migration_s_per_cube
