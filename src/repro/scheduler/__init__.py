"""Cluster-level slice scheduling (§4.2.3, §4.2.4).

- :mod:`repro.scheduler.requests` -- job requests and synthetic traces.
- :mod:`repro.scheduler.allocator` -- allocation policies: TPU v3-style
  contiguous placement vs OCS-enabled any-cubes placement.
- :mod:`repro.scheduler.simulator` -- a discrete-event scheduling
  simulation measuring utilization, wait times, and failure handling.
- :mod:`repro.scheduler.defrag` -- fragmentation metrics and compaction.
- :mod:`repro.scheduler.deployment` -- incremental-deployment timeline
  model (§4.2.3).
"""

from repro.scheduler.requests import JobRequest, WorkloadGenerator, balanced_cube_shape
from repro.scheduler.allocator import (
    Allocator,
    ContiguousAllocator,
    ReconfigurableAllocator,
)
from repro.scheduler.simulator import SchedulerMetrics, SchedulerSimulation
from repro.scheduler.defrag import compact_contiguous, fragmentation
from repro.scheduler.deployment import DeploymentModel, DeploymentOutcome
from repro.scheduler.model_aware import ModelAwareAllocator, ModelPlacement
from repro.scheduler.sweeps import (
    SchedulerSweepPoint,
    sweep_points,
    utilization_sweep,
    utilization_sweep_serial,
)

__all__ = [
    "JobRequest",
    "WorkloadGenerator",
    "balanced_cube_shape",
    "Allocator",
    "ContiguousAllocator",
    "ReconfigurableAllocator",
    "SchedulerMetrics",
    "SchedulerSimulation",
    "fragmentation",
    "compact_contiguous",
    "DeploymentModel",
    "DeploymentOutcome",
    "ModelAwareAllocator",
    "ModelPlacement",
    "SchedulerSweepPoint",
    "sweep_points",
    "utilization_sweep",
    "utilization_sweep_serial",
]
