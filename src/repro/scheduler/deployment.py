"""Incremental-deployment timeline model (§4.2.3).

With the lightwave fabric, each rack (one cube) is verified when its
chips and intra-rack electrical interconnect are installed, then joins
the pod immediately -- capacity ramps rack by rack.  A statically cabled
pod (like TPU v3) "could not be verified until all chips and connecting
cables were installed and tested": capacity stays zero until the last
rack lands *and* the whole-pod cabling check completes.

The model compares time-to-first-capacity and integrated capacity
(cube-days) over the build-out, plus the §4.2.3 hardware savings from
bidi transceivers (48 OCSes and fibers instead of 96).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.errors import ConfigurationError
from repro.availability.model import TRANSCEIVER_TECHS


@dataclass(frozen=True)
class DeploymentOutcome:
    """Results of one deployment policy."""

    time_to_first_capacity_d: float
    completion_d: float
    integrated_cube_days: float

    def ramp_advantage_over(self, other: "DeploymentOutcome") -> float:
        """Ratio of integrated capacity over the build-out window."""
        if other.integrated_cube_days == 0:
            return float("inf") if self.integrated_cube_days > 0 else 1.0
        return self.integrated_cube_days / other.integrated_cube_days


@dataclass(frozen=True)
class DeploymentModel:
    """Build-out of a 64-cube pod.

    Args:
        racks: cubes to deploy.
        rack_interval_d: days between consecutive rack deliveries.
        rack_verify_d: per-rack install+verify time (both policies).
        pod_verify_d: whole-pod cabling verification the static pod needs
            after the last rack.
        horizon_d: window over which integrated capacity is measured
            (defaults to the static completion time).
    """

    racks: int = 64
    rack_interval_d: float = 1.0
    rack_verify_d: float = 2.0
    pod_verify_d: float = 14.0
    horizon_d: float = 0.0

    def __post_init__(self) -> None:
        if self.racks <= 0:
            raise ConfigurationError("need at least one rack")
        if min(self.rack_interval_d, self.rack_verify_d, self.pod_verify_d) < 0:
            raise ConfigurationError("durations must be non-negative")

    def _rack_ready_times(self) -> List[float]:
        """Day each rack becomes individually verified."""
        return [
            i * self.rack_interval_d + self.rack_verify_d for i in range(self.racks)
        ]

    def _horizon(self) -> float:
        return self.horizon_d if self.horizon_d > 0 else self.static_outcome().completion_d

    def incremental_outcome(self) -> DeploymentOutcome:
        """Lightwave fabric: capacity ramps rack by rack."""
        ready = self._rack_ready_times()
        horizon = self._horizon()
        integrated = sum(max(0.0, horizon - t) for t in ready)
        return DeploymentOutcome(
            time_to_first_capacity_d=ready[0],
            completion_d=ready[-1],
            integrated_cube_days=integrated,
        )

    def static_outcome(self) -> DeploymentOutcome:
        """Static pod: nothing usable until everything is verified."""
        last_rack = (self.racks - 1) * self.rack_interval_d + self.rack_verify_d
        done = last_rack + self.pod_verify_d
        horizon = self.horizon_d if self.horizon_d > 0 else done
        integrated = self.racks * max(0.0, horizon - done)
        return DeploymentOutcome(
            time_to_first_capacity_d=done,
            completion_d=done,
            integrated_cube_days=integrated,
        )

    def capacity_timeline(self, policy: str, days: int) -> List[int]:
        """Usable cubes at the end of each day, for plotting."""
        if days <= 0:
            raise ConfigurationError("days must be positive")
        if policy == "incremental":
            ready = self._rack_ready_times()
            return [sum(1 for t in ready if t <= d) for d in range(1, days + 1)]
        if policy == "static":
            done = self.static_outcome().completion_d
            return [self.racks if d >= done else 0 for d in range(1, days + 1)]
        raise ConfigurationError(f"unknown policy {policy!r}")


def ocs_and_fiber_savings() -> Tuple[int, int, float]:
    """§4.2.3: bidi transceivers halve OCS and fiber needs.

    Returns (OCSes with duplex CWDM4, OCSes with bidi CWDM4, saving).
    """
    duplex = TRANSCEIVER_TECHS["cwdm4_duplex"].num_ocses
    bidi = TRANSCEIVER_TECHS["cwdm4_bidi"].num_ocses
    return duplex, bidi, 1.0 - bidi / duplex
