"""Model-aware slice allocation: the scheduler meets the NAS (§4.2.1).

Table 2's speedups only materialize if the *scheduler* places each job
on its model's optimal shape.  :class:`ModelAwareAllocator` closes that
loop: given a job that names its LLM and a chip budget, it runs the
slice-shape search restricted to that budget, converts the winning chip
shape to cubes, and composes the slice on any free healthy cubes -- the
"late binding" of slice shape to deployed hardware the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.errors import ConfigurationError, SchedulingError
from repro.core.ids import JobId, SliceId
from repro.ml.models import LlmConfig
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import SliceShapeSearch
from repro.tpu.cube import CHIPS_PER_CUBE
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod


@dataclass(frozen=True)
class ModelPlacement:
    """Outcome of one model-aware placement."""

    job_id: JobId
    slice_id: SliceId
    chip_shape: Tuple[int, int, int]
    step_time_s: float
    throughput_seqs_per_s: float


@dataclass
class ModelAwareAllocator:
    """Places LLM jobs on their model-optimal slice shapes."""

    pod: Superpod
    step_model: TrainingStepModel = field(default_factory=TrainingStepModel)
    placements: Dict[JobId, ModelPlacement] = field(default_factory=dict)

    def best_shape_for(
        self, model: LlmConfig, cubes: int
    ) -> Tuple[Tuple[int, int, int], float]:
        """The fastest feasible chip shape within a cube budget.

        Delegates to the class-based shape search (with its documented
        data-split tie-break) restricted to the budget's chip count.
        """
        if cubes <= 0:
            raise ConfigurationError("cube budget must be positive")
        search = SliceShapeSearch(self.step_model, num_chips=cubes * CHIPS_PER_CUBE)
        try:
            result = search.search(model)
        except ConfigurationError as exc:
            raise SchedulingError(
                f"{model.name} has no feasible shape on {cubes} cubes: {exc}"
            ) from exc
        return result.best_shape, result.best_step_time_s

    def place(self, job_id: JobId, model: LlmConfig, cubes: int) -> ModelPlacement:
        """Search, compose, and configure the job's slice.

        Raises :class:`SchedulingError` when the pod lacks free healthy
        cubes or no shape is feasible for the model at this budget.
        """
        if job_id in self.placements:
            raise SchedulingError(f"{job_id} is already placed")
        free = self.pod.healthy_free_cubes()
        if len(free) < cubes:
            raise SchedulingError(
                f"{job_id} needs {cubes} cubes; only {len(free)} free"
            )
        chip_shape, step_time = self.best_shape_for(model, cubes)
        cube_shape = SliceTopology.chip_shape_to_cube_shape(chip_shape)
        slice_id = SliceId(f"slice-{job_id}")
        topology = SliceTopology.compose(slice_id, cube_shape, free[:cubes])
        self.pod.configure_slice(topology)
        placement = ModelPlacement(
            job_id=job_id,
            slice_id=slice_id,
            chip_shape=chip_shape,
            step_time_s=step_time,
            throughput_seqs_per_s=model.global_batch_seqs / step_time,
        )
        self.placements[job_id] = placement
        return placement

    def release(self, job_id: JobId) -> None:
        """Free a placed job's slice."""
        placement = self.placements.pop(job_id, None)
        if placement is None:
            raise SchedulingError(f"{job_id} is not placed")
        self.pod.release_slice(placement.slice_id)

    def speedup_over_balanced(self, model: LlmConfig, cubes: int) -> float:
        """How much the model-optimal shape beats the most-balanced one
        at the same budget (the per-job value of reconfigurability)."""
        from repro.scheduler.requests import balanced_cube_shape

        _, best_time = self.best_shape_for(model, cubes)
        balanced = tuple(c * 4 for c in balanced_cube_shape(cubes))
        search = SliceShapeSearch(self.step_model, num_chips=cubes * CHIPS_PER_CUBE)
        baseline = search.evaluate(model, balanced)
        if baseline is None:
            return float("inf")
        return baseline / best_time
