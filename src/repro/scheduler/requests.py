"""Job requests and synthetic workload traces.

§4.2.4: superpod jobs request slices in whole cubes (64-chip granularity);
the mix spans single-cube experiments to half-pod training runs.  The
generator produces Poisson arrivals with a configurable size distribution
and log-normal durations, seeded for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.ids import JobId


def balanced_cube_shape(num_cubes: int) -> Tuple[int, int, int]:
    """The most balanced (x, y, z) factorization of ``num_cubes``.

    Used as the default torus shape for a slice of a given size; callers
    with a model-driven preference pass an explicit shape instead.
    """
    if num_cubes <= 0:
        raise ConfigurationError("cube count must be positive")
    best: Tuple[int, int, int] = (1, 1, num_cubes)
    best_spread = num_cubes
    for a in range(1, int(round(num_cubes ** (1 / 3))) + 2):
        if num_cubes % a:
            continue
        rest = num_cubes // a
        for b in range(a, int(rest ** 0.5) + 1):
            if rest % b:
                continue
            c = rest // b
            spread = c - a
            if spread < best_spread:
                best_spread = spread
                best = (a, b, c)
    return best


@dataclass(frozen=True)
class JobRequest:
    """One training job needing a slice of ``cubes`` cubes."""

    job_id: JobId
    cubes: int
    duration_s: float
    arrival_s: float

    def __post_init__(self) -> None:
        if self.cubes <= 0:
            raise ConfigurationError("job must request at least one cube")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.arrival_s < 0:
            raise ConfigurationError("arrival must be non-negative")

    @property
    def chips(self) -> int:
        return self.cubes * 64

    @property
    def shape(self) -> Tuple[int, int, int]:
        return balanced_cube_shape(self.cubes)


#: Default job-size mix (cubes -> weight): mostly small jobs with a tail
#: of large training runs.
DEFAULT_SIZE_MIX: Dict[int, float] = {1: 0.35, 2: 0.25, 4: 0.2, 8: 0.12, 16: 0.06, 32: 0.02}


@dataclass
class WorkloadGenerator:
    """Poisson-arrival synthetic job trace.

    Args:
        arrival_rate_per_s: mean job arrival rate.
        mean_duration_s: mean job duration (log-normal, sigma=0.8).
        size_mix: {cubes: probability-weight}.
    """

    arrival_rate_per_s: float = 1.0 / 600.0
    mean_duration_s: float = 3 * 3600.0
    size_mix: Dict[int, float] = field(default_factory=lambda: dict(DEFAULT_SIZE_MIX))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0 or self.mean_duration_s <= 0:
            raise ConfigurationError("rate and duration must be positive")
        if not self.size_mix or any(w < 0 for w in self.size_mix.values()):
            raise ConfigurationError("size mix must have non-negative weights")
        if sum(self.size_mix.values()) <= 0:
            raise ConfigurationError("size mix must have positive total weight")

    def generate(self, num_jobs: int) -> List[JobRequest]:
        """Produce ``num_jobs`` requests ordered by arrival time."""
        if num_jobs <= 0:
            raise ConfigurationError("need at least one job")
        rng = np.random.default_rng(self.seed)
        sizes = sorted(self.size_mix)
        weights = np.array([self.size_mix[s] for s in sizes], dtype=float)
        weights /= weights.sum()
        inter = rng.exponential(1.0 / self.arrival_rate_per_s, num_jobs)
        arrivals = np.cumsum(inter)
        # Log-normal durations with the requested mean: mu = ln(mean)-s^2/2.
        sigma = 0.8
        mu = np.log(self.mean_duration_s) - sigma ** 2 / 2.0
        durations = rng.lognormal(mu, sigma, num_jobs)
        chosen = rng.choice(sizes, size=num_jobs, p=weights)
        return [
            JobRequest(
                job_id=JobId(f"job-{i:05d}"),
                cubes=int(chosen[i]),
                duration_s=float(durations[i]),
                arrival_s=float(arrivals[i]),
            )
            for i in range(num_jobs)
        ]

    def open_loop(self) -> Iterator[JobRequest]:
        """Endless open-loop stream of the same seeded workload.

        Unlike :meth:`generate` (one vectorized batch of a known size),
        the open-loop form yields forever and is **prefix-stable**: the
        first *k* jobs are identical whatever else is consumed, and they
        match any other ``open_loop()`` with the same parameters.  Each
        random quantity (inter-arrival, duration, size) draws from its
        own :class:`numpy.random.SeedSequence`-spawned child stream,
        one sample per job in lockstep, so no draw's position depends
        on another stream's consumption.

        This is the arrival model the serving layer's overload drills
        are built on: requests keep coming at the configured rate no
        matter how the consumer is doing.
        """
        children = np.random.SeedSequence(self.seed).spawn(3)
        inter_rng, duration_rng, size_rng = (
            np.random.default_rng(c) for c in children
        )
        sizes = sorted(self.size_mix)
        weights = np.array([self.size_mix[s] for s in sizes], dtype=float)
        weights /= weights.sum()
        sigma = 0.8
        mu = np.log(self.mean_duration_s) - sigma ** 2 / 2.0
        t = 0.0
        i = 0
        while True:
            t += float(inter_rng.exponential(1.0 / self.arrival_rate_per_s))
            duration = float(duration_rng.lognormal(mu, sigma))
            cubes = int(sizes[int(size_rng.choice(len(sizes), p=weights))])
            yield JobRequest(
                job_id=JobId(f"job-{i:05d}"),
                cubes=cubes,
                duration_s=duration,
                arrival_s=t,
            )
            i += 1

    def offered_load_cubes(self) -> float:
        """Mean concurrent cube demand (Little's law)."""
        sizes = sorted(self.size_mix)
        weights = np.array([self.size_mix[s] for s in sizes], dtype=float)
        weights /= weights.sum()
        mean_size = float(np.dot(sizes, weights))
        return self.arrival_rate_per_s * self.mean_duration_s * mean_size
