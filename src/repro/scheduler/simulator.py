"""Discrete-event scheduling simulation (§4.2.4).

Replays a job trace against an allocation policy with FCFS queueing and
optional backfill (smaller jobs may jump a blocked head when they fit).
Cube failures and repairs come from the shared cross-layer
:class:`~repro.faults.injector.FaultInjector` timeline: pass one in to
drive the scheduler from an explicit chaos schedule, or keep the classic
constructor path (``cube_failure_rate_per_s``) and the simulation arms a
private injector with the same seeded exponential draws as before.  The
reconfigurable policy swaps a spare in for a failed cube (the job
survives); the contiguous/static policy loses the slice and requeues the
job from scratch.

Metrics: cube-time utilization, mean/95p queue wait, completed jobs, and
failure outcomes.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.ids import CubeId, JobId
from repro.faults.events import FaultEvent, FaultKind, cube_target, target_index
from repro.faults.injector import FaultInjector
from repro.obs import NULL_OBS, Observability
from repro.scheduler.requests import JobRequest
from repro.tpu.superpod import Superpod

_ARRIVAL, _DEPARTURE = 0, 1

#: Injector event kinds the scheduler reacts to (both take a cube down).
_CUBE_FAULT_KINDS = (FaultKind.CUBE_POWER_LOSS, FaultKind.HOST_CRASH)


@dataclass
class SchedulerMetrics:
    """Aggregated outcomes of one simulation run."""

    horizon_s: float
    pod_cubes: int
    cube_busy_s: float = 0.0
    busy_integral_s: float = 0.0
    arrival_window_s: float = 0.0
    completed: int = 0
    requeued_after_failure: int = 0
    survived_failures: int = 0
    failures_injected: int = 0
    waits_s: List[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Cube-time in use over cube-time offered, measured inside the
        arrival window (excludes the drain tail after the last arrival)."""
        total = self.pod_cubes * self.arrival_window_s
        return self.busy_integral_s / total if total > 0 else 0.0

    @property
    def mean_wait_s(self) -> float:
        return float(np.mean(self.waits_s)) if self.waits_s else 0.0

    @property
    def p95_wait_s(self) -> float:
        return float(np.percentile(self.waits_s, 95)) if self.waits_s else 0.0


@dataclass
class SchedulerSimulation:
    """One policy x one trace discrete-event run.

    Args:
        allocator: a policy from :mod:`repro.scheduler.allocator`.
        backfill: allow queued jobs behind a blocked head to start when
            they fit (conservative backfill without reservations).
        cube_failure_rate_per_s: per-cube failure hazard; failed cubes
            repair after ``repair_s`` and may fail again.  Arms a
            private :class:`FaultInjector` when ``injector`` is None.
        injector: an external fault timeline; its ``CUBE_POWER_LOSS``
            and ``HOST_CRASH`` events (and their recovery edges) drive
            cube failures/repairs.  Other kinds are delivered to the
            injector's subscribers and otherwise ignored here.
        warmup_s: utilization accounting starts here (skips the initial
            pod-filling ramp).
        fabric_slowdown: optional hook sampled when each job starts,
            returning the fractional step-time increase the fabric's
            current health imposes (e.g. :func:`repro.tpu.degradation.
            quarantine_step_degradation` of the watchdog's held-out
            fraction).  The job's runtime is stretched by ``1 + value``.
            None preserves the classic behavior (and digests) exactly.
    """

    allocator: object
    backfill: bool = True
    cube_failure_rate_per_s: float = 0.0
    repair_s: float = 4 * 3600.0
    warmup_s: float = 0.0
    seed: int = 0
    injector: Optional[FaultInjector] = None
    fabric_slowdown: Optional[Callable[[], float]] = None
    obs: Optional[Observability] = None

    def run(self, trace: List[JobRequest]) -> SchedulerMetrics:
        if not trace:
            raise ConfigurationError("trace must contain at least one job")
        obs = self.obs if self.obs is not None else NULL_OBS
        pod: Superpod = self.allocator.pod
        counter = itertools.count()
        events: List[Tuple[float, int, int, object]] = []

        def push(t: float, kind: int, payload: object) -> None:
            heapq.heappush(events, (t, kind, next(counter), payload))

        for job in trace:
            push(job.arrival_s, _ARRIVAL, job)
        last_arrival = max(j.arrival_s for j in trace)
        fail_window = last_arrival + max(j.duration_s for j in trace)

        injector = self.injector or FaultInjector(seed=self.seed, obs=self.obs)
        rate = self.cube_failure_rate_per_s
        rate_armed = False
        if rate > 0:
            rate_armed = True
            mean_s = 1.0 / rate
            for cube in range(pod.num_cubes):
                t = injector.exponential(mean_s)
                if t < fail_window:
                    injector.schedule(t, FaultKind.CUBE_POWER_LOSS, cube_target(cube))

        queue: List[JobRequest] = []
        running: Dict[JobId, JobRequest] = {}
        start_times: Dict[JobId, float] = {}
        metrics = SchedulerMetrics(horizon_s=0.0, pod_cubes=pod.num_cubes)
        if self.warmup_s > 0 and self.warmup_s >= last_arrival:
            raise ConfigurationError("warmup must end before the last arrival")
        metrics.arrival_window_s = last_arrival - self.warmup_s
        now = 0.0
        busy_cubes = 0
        t_prev = 0.0

        def account(t: float) -> None:
            nonlocal t_prev
            lo = max(min(t_prev, last_arrival), self.warmup_s)
            hi = max(min(t, last_arrival), self.warmup_s)
            metrics.busy_integral_s += busy_cubes * (hi - lo)
            t_prev = t

        def try_start(job: JobRequest, t: float) -> bool:
            if self.allocator.try_allocate(job) is None:
                return False
            running[job.job_id] = job
            start_times[job.job_id] = t
            metrics.waits_s.append(t - job.arrival_s)
            obs.metrics.counter("scheduler.jobs.started").inc()
            obs.metrics.histogram("scheduler.wait_s").observe(t - job.arrival_s)
            duration = job.duration_s
            if self.fabric_slowdown is not None:
                slowdown = self.fabric_slowdown()
                if slowdown < 0:
                    raise ConfigurationError("fabric_slowdown must be >= 0")
                duration *= 1.0 + slowdown
            push(t + duration, _DEPARTURE, job)
            nonlocal busy_cubes
            busy_cubes += job.cubes
            return True

        def drain_queue(t: float) -> None:
            while queue and try_start(queue[0], t):
                queue.pop(0)
            if self.backfill:
                i = 1
                while i < len(queue):
                    if try_start(queue[i], t):
                        queue.pop(i)
                    else:
                        i += 1

        def on_cube_fault(event: FaultEvent, t: float) -> None:
            cube = CubeId(target_index(event.target))
            if not 0 <= cube.index < pod.num_cubes:
                return
            metrics.failures_injected += 1
            obs.metrics.counter("scheduler.cube.failures").inc()
            host = int(event.param("host", 0) or 0)
            pod.cube(cube).fail_host(host)
            affected = self.allocator.handle_cube_failure(cube)
            if affected is not None:
                still_running = any(topo.slice_id == affected for topo in pod.slices())
                if still_running:
                    metrics.survived_failures += 1
                    obs.metrics.counter("scheduler.jobs.survived_failure").inc()
                else:
                    victim = self._job_for_slice(running, affected)
                    if victim is not None:
                        del running[victim.job_id]
                        nonlocal busy_cubes
                        busy_cubes -= victim.cubes
                        metrics.cube_busy_s += victim.cubes * (
                            t - start_times.pop(victim.job_id)
                        )
                        metrics.requeued_after_failure += 1
                        obs.metrics.counter("scheduler.jobs.requeued").inc()
                        queue.append(victim)
            injector.schedule(
                t + self.repair_s, event.kind, event.target, recovery=True,
                params=event.params,
            )

        def on_cube_repair(event: FaultEvent, t: float) -> None:
            cube = CubeId(target_index(event.target))
            if not 0 <= cube.index < pod.num_cubes:
                return
            host = int(event.param("host", 0) or 0)
            pod.cube(cube).repair_host(host)
            if rate_armed:
                nxt = t + injector.exponential(1.0 / rate)
                if nxt < fail_window:
                    injector.schedule(nxt, FaultKind.CUBE_POWER_LOSS, event.target)
            drain_queue(t)

        with obs.tracer.span(
            "scheduler.run",
            jobs=len(trace),
            policy=type(self.allocator).__name__,
        ) as span:
            while events or injector.num_pending:
                t_heap = events[0][0] if events else math.inf
                t_inj = injector.next_time()
                if t_inj is not None and t_inj < t_heap:
                    event = injector.pop_next()
                    assert event is not None
                    now = event.time_s
                    account(now)
                    if event.kind in _CUBE_FAULT_KINDS:
                        if event.recovery:
                            on_cube_repair(event, now)
                        else:
                            on_cube_fault(event, now)
                    continue
                if not events:
                    break
                now, kind, _, payload = heapq.heappop(events)
                account(now)
                if kind == _ARRIVAL:
                    job = payload
                    if not try_start(job, now):
                        queue.append(job)
                else:  # _DEPARTURE
                    job = payload
                    if job.job_id not in running:
                        continue  # slice was killed by a failure; stale event
                    del running[job.job_id]
                    self.allocator.release(job)
                    metrics.completed += 1
                    obs.metrics.counter("scheduler.jobs.completed").inc()
                    busy_cubes -= job.cubes
                    metrics.cube_busy_s += job.cubes * (
                        now - start_times.pop(job.job_id)
                    )
                    drain_queue(now)

            metrics.horizon_s = max(now, last_arrival)
            # The simulation clock runs in seconds; reflect its horizon on
            # the trace clock (ms) so the run's span has a modeled width.
            obs.clock.advance(metrics.horizon_s * 1e3)
            span.set_attr("completed", metrics.completed)
            span.set_attr("utilization", round(metrics.utilization, 6))
            if self.obs is not None:
                from repro.scheduler.defrag import fragmentation

                obs.metrics.gauge("scheduler.fragmentation").set(
                    fragmentation(pod)
                )
        return metrics

    @staticmethod
    def _job_for_slice(
        running: Dict[JobId, JobRequest], slice_id
    ) -> Optional[JobRequest]:
        name = str(slice_id)
        for job in running.values():
            if name == f"slice-{job.job_id}":
                return job
        return None
