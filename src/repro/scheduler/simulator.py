"""Discrete-event scheduling simulation (§4.2.4).

Replays a job trace against an allocation policy with FCFS queueing and
optional backfill (smaller jobs may jump a blocked head when they fit).
Optionally injects cube failures: the reconfigurable policy swaps in a
spare (the job survives); the contiguous/static policy loses the slice
and requeues the job from scratch.

Metrics: cube-time utilization, mean/95p queue wait, completed jobs, and
failure outcomes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.ids import CubeId, JobId
from repro.scheduler.requests import JobRequest
from repro.tpu.superpod import Superpod

_ARRIVAL, _DEPARTURE, _FAILURE, _REPAIR = 0, 1, 2, 3


@dataclass
class SchedulerMetrics:
    """Aggregated outcomes of one simulation run."""

    horizon_s: float
    pod_cubes: int
    cube_busy_s: float = 0.0
    busy_integral_s: float = 0.0
    arrival_window_s: float = 0.0
    completed: int = 0
    requeued_after_failure: int = 0
    survived_failures: int = 0
    failures_injected: int = 0
    waits_s: List[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Cube-time in use over cube-time offered, measured inside the
        arrival window (excludes the drain tail after the last arrival)."""
        total = self.pod_cubes * self.arrival_window_s
        return self.busy_integral_s / total if total > 0 else 0.0

    @property
    def mean_wait_s(self) -> float:
        return float(np.mean(self.waits_s)) if self.waits_s else 0.0

    @property
    def p95_wait_s(self) -> float:
        return float(np.percentile(self.waits_s, 95)) if self.waits_s else 0.0


@dataclass
class SchedulerSimulation:
    """One policy x one trace discrete-event run.

    Args:
        allocator: a policy from :mod:`repro.scheduler.allocator`.
        backfill: allow queued jobs behind a blocked head to start when
            they fit (conservative backfill without reservations).
        cube_failure_rate_per_s: per-cube failure hazard; failed cubes
            repair after ``repair_s`` and may fail again.
        warmup_s: utilization accounting starts here (skips the initial
            pod-filling ramp).
    """

    allocator: object
    backfill: bool = True
    cube_failure_rate_per_s: float = 0.0
    repair_s: float = 4 * 3600.0
    warmup_s: float = 0.0
    seed: int = 0

    def run(self, trace: List[JobRequest]) -> SchedulerMetrics:
        if not trace:
            raise ConfigurationError("trace must contain at least one job")
        pod: Superpod = self.allocator.pod
        rng = np.random.default_rng(self.seed)
        counter = itertools.count()
        events: List[Tuple[float, int, int, object]] = []

        def push(t: float, kind: int, payload: object) -> None:
            heapq.heappush(events, (t, kind, next(counter), payload))

        for job in trace:
            push(job.arrival_s, _ARRIVAL, job)
        last_arrival = max(j.arrival_s for j in trace)
        fail_window = last_arrival + max(j.duration_s for j in trace)
        if self.cube_failure_rate_per_s > 0:
            for cube in range(pod.num_cubes):
                t = float(rng.exponential(1.0 / self.cube_failure_rate_per_s))
                if t < fail_window:
                    push(t, _FAILURE, CubeId(cube))

        queue: List[JobRequest] = []
        running: Dict[JobId, JobRequest] = {}
        start_times: Dict[JobId, float] = {}
        metrics = SchedulerMetrics(horizon_s=0.0, pod_cubes=pod.num_cubes)
        if self.warmup_s > 0 and self.warmup_s >= last_arrival:
            raise ConfigurationError("warmup must end before the last arrival")
        metrics.arrival_window_s = last_arrival - self.warmup_s
        now = 0.0
        busy_cubes = 0
        t_prev = 0.0

        def try_start(job: JobRequest, t: float) -> bool:
            if self.allocator.try_allocate(job) is None:
                return False
            running[job.job_id] = job
            start_times[job.job_id] = t
            metrics.waits_s.append(t - job.arrival_s)
            push(t + job.duration_s, _DEPARTURE, job)
            nonlocal busy_cubes
            busy_cubes += job.cubes
            return True

        def drain_queue(t: float) -> None:
            while queue and try_start(queue[0], t):
                queue.pop(0)
            if self.backfill:
                i = 1
                while i < len(queue):
                    if try_start(queue[i], t):
                        queue.pop(i)
                    else:
                        i += 1

        while events:
            now, kind, _, payload = heapq.heappop(events)
            lo = max(min(t_prev, last_arrival), self.warmup_s)
            hi = max(min(now, last_arrival), self.warmup_s)
            metrics.busy_integral_s += busy_cubes * (hi - lo)
            t_prev = now
            if kind == _ARRIVAL:
                job = payload
                if not try_start(job, now):
                    queue.append(job)
            elif kind == _DEPARTURE:
                job = payload
                if job.job_id not in running:
                    continue  # slice was killed by a failure; stale event
                del running[job.job_id]
                self.allocator.release(job)
                metrics.completed += 1
                busy_cubes -= job.cubes
                metrics.cube_busy_s += job.cubes * (now - start_times.pop(job.job_id))
                drain_queue(now)
            elif kind == _FAILURE:
                cube = payload
                metrics.failures_injected += 1
                pod.cube(cube).fail_host(0)
                affected = self.allocator.handle_cube_failure(cube)
                if affected is not None:
                    still_running = any(
                        t.slice_id == affected for t in pod.slices()
                    )
                    if still_running:
                        metrics.survived_failures += 1
                    else:
                        victim = self._job_for_slice(running, affected)
                        if victim is not None:
                            del running[victim.job_id]
                            busy_cubes -= victim.cubes
                            metrics.cube_busy_s += victim.cubes * (
                                now - start_times.pop(victim.job_id)
                            )
                            metrics.requeued_after_failure += 1
                            queue.append(victim)
                push(now + self.repair_s, _REPAIR, cube)
            else:  # _REPAIR
                cube = payload
                pod.cube(cube).repair_host(0)
                nxt = now + float(rng.exponential(1.0 / self.cube_failure_rate_per_s))
                if nxt < fail_window:
                    push(nxt, _FAILURE, cube)
                drain_queue(now)

        metrics.horizon_s = max(now, last_arrival)
        return metrics

    @staticmethod
    def _job_for_slice(
        running: Dict[JobId, JobRequest], slice_id
    ) -> Optional[JobRequest]:
        name = str(slice_id)
        for job in running.values():
            if name == f"slice-{job.job_id}":
                return job
        return None
