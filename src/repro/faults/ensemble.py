"""Multi-seed chaos ensembles over the sweep engine.

A single chaos run answers "does the stack survive this seed"; an
ensemble answers "what does the goodput distribution look like" -- the
same scenario run across many injector seeds, embarrassingly parallel.
This module fans those ensembles through
:class:`~repro.parallel.SweepEngine`:

- each (scenario, seed, kwargs) triple is one content-addressable task,
  so re-running an ensemble after touching one scenario recomputes only
  that scenario's members;
- scenarios seed themselves from the task's explicit ``seed`` field
  (the injector owns its RNG), so the engine runs with ``seed=None``
  and chunking/worker count cannot perturb any member;
- :func:`chaos_ensemble_serial` is the plain-loop oracle, and
  :func:`ensemble_digest` hashes a whole ensemble for byte-level
  determinism checks across worker counts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.faults.chaos import SCENARIOS, ChaosReport, run_scenario
from repro.parallel import SweepEngine


@dataclass(frozen=True)
class ChaosTask:
    """One ensemble member: a scenario name, a seed, and its kwargs.

    ``kwargs`` is stored as a sorted tuple of pairs so the task is
    hashable, picklable, and canonically digestible.
    """

    scenario: str
    seed: int
    kwargs: Tuple[Tuple[str, object], ...] = field(default=())

    @classmethod
    def make(cls, scenario: str, seed: int, **kwargs) -> "ChaosTask":
        if scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {scenario!r}; have {sorted(SCENARIOS)}"
            )
        return cls(scenario, int(seed), tuple(sorted(kwargs.items())))


def _run_chaos(task: ChaosTask) -> ChaosReport:
    """Worker: run one ensemble member."""
    return run_scenario(task.scenario, seed=task.seed, **dict(task.kwargs))


def _ensemble_tasks(
    scenario: str, seeds: Sequence[int], kwargs: Optional[Dict[str, object]]
) -> List[ChaosTask]:
    kwargs = kwargs or {}
    return [ChaosTask.make(scenario, s, **kwargs) for s in seeds]


def chaos_ensemble(
    scenario: str,
    seeds: Sequence[int],
    kwargs: Optional[Dict[str, object]] = None,
    engine: Optional[SweepEngine] = None,
    cache_tag: Optional[str] = "faults.chaos",
) -> List[ChaosReport]:
    """Run one scenario across many seeds, fanned out over the engine.

    Returns reports aligned with ``seeds``.  Bit-identical to
    :func:`chaos_ensemble_serial` for any engine configuration -- pin it
    with :func:`ensemble_digest`.
    """
    engine = engine if engine is not None else SweepEngine(workers=1)
    tasks = _ensemble_tasks(scenario, seeds, kwargs)
    tag = cache_tag if engine.cache is not None else None
    return engine.pmap(_run_chaos, tasks, cache_tag=tag)


def chaos_ensemble_serial(
    scenario: str,
    seeds: Sequence[int],
    kwargs: Optional[Dict[str, object]] = None,
) -> List[ChaosReport]:
    """The plain-loop oracle for :func:`chaos_ensemble`."""
    return [_run_chaos(t) for t in _ensemble_tasks(scenario, seeds, kwargs)]


def ensemble_digest(reports: Sequence[ChaosReport]) -> str:
    """SHA-256 over every member digest, in ensemble order."""
    h = hashlib.sha256()
    for report in reports:
        h.update(report.digest().encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()
