"""Resilient cross-connect programming: retry, backoff, exact rollback.

§3.2.2 integrates OCSes into the same control plane as electrical
switches; at fleet scale that control plane sees RPC timeouts and stuck
mirrors.  This module turns :class:`~repro.core.fabric_manager.
FabricManager` programming into a *transaction*:

- each switch's hitless plan is attempted with bounded retries,
  exponential backoff and seeded jitter (:class:`RetryPolicy`);
- injected control-plane faults (:class:`ControlPlaneFaults`, fed by
  the :class:`~repro.faults.injector.FaultInjector`) fail individual
  attempts -- an RPC timeout fails a whole per-switch apply, a stuck
  mirror blocks any plan touching its port;
- on retry exhaustion every switch already programmed is rolled back by
  applying the *inverse* plan, restoring the exact pre-transaction
  :class:`~repro.core.crossconnect.CrossConnectMap`;
- job isolation holds throughout: circuits in a plan's ``unchanged``
  set are never touched, by the forward plans, the retries, or the
  rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.core.crossconnect import Circuit, CrossConnectMap
from repro.core.errors import ConfigurationError, TransactionError
from repro.core.fabric_manager import FabricManager
from repro.core.ids import OcsId
from repro.core.reconfig import ReconfigPlan
from repro.faults.events import FaultEvent, FaultKind, target_index
from repro.obs import NULL_OBS, Observability


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    Args:
        max_retries: retries after the first attempt (0 = fail fast; a
            switch gets at most ``max_retries + 1`` attempts).
        base_backoff_ms: delay before the first retry.
        backoff_multiplier: growth factor per retry.
        backoff_cap_ms: ceiling on any single delay (before jitter).
        jitter_fraction: +/- uniform jitter applied to the capped delay,
            drawn from the transaction's seeded stream (deterministic).
    """

    max_retries: int = 3
    base_backoff_ms: float = 10.0
    backoff_multiplier: float = 2.0
    backoff_cap_ms: float = 250.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.base_backoff_ms <= 0 or self.backoff_cap_ms <= 0:
            raise ConfigurationError("backoff times must be positive")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter fraction must be in [0, 1)")

    def backoff_ms(self, retry_number: int, rng: np.random.Generator) -> float:
        """Delay before retry ``retry_number`` (1-based), jittered."""
        if retry_number <= 0:
            raise ConfigurationError("retry number is 1-based")
        raw = self.base_backoff_ms * self.backoff_multiplier ** (retry_number - 1)
        capped = min(raw, self.backoff_cap_ms)
        if self.jitter_fraction:
            capped += capped * self.jitter_fraction * float(rng.uniform(-1.0, 1.0))
        return max(capped, 0.0)


@dataclass
class ControlPlaneFaults:
    """Injected control-plane failure state consumed by transactions.

    Feed it directly (:meth:`inject_rpc_timeouts`, :meth:`stick_mirror`)
    or attach it to a :class:`~repro.faults.injector.FaultInjector` with
    :meth:`attach`, after which delivered ``RPC_TIMEOUT`` and
    ``MIRROR_STUCK`` events update it automatically:

    - ``RPC_TIMEOUT`` targeting ``ocs-<i>`` with severity ``k`` makes
      the next ``k`` programming attempts against that switch time out;
    - ``MIRROR_STUCK`` targeting ``ocs-<i>/N<p>`` (or ``S<p>``) blocks
      every plan whose breaks or makes touch that port until the
      recovery edge releases it.
    """

    _pending_timeouts: Dict[int, int] = field(default_factory=dict)
    _stuck: Set[Tuple[int, str, int]] = field(default_factory=set)

    @staticmethod
    def _index(ocs_index) -> int:
        # Accept an OcsId too: it hashes differently from its index, so
        # keying the dict with one would silently never match the
        # transaction's integer-keyed lookups.
        return int(getattr(ocs_index, "index", ocs_index))

    # -- direct injection -------------------------------------------------- #

    def inject_rpc_timeouts(self, ocs_index: int, count: int = 1) -> None:
        """Make the next ``count`` attempts against the switch time out."""
        if count <= 0:
            raise ConfigurationError("timeout count must be positive")
        key = self._index(ocs_index)
        self._pending_timeouts[key] = self._pending_timeouts.get(key, 0) + count

    def stick_mirror(self, ocs_index: int, side: str, port: int) -> None:
        """Freeze one mirror until :meth:`release_mirror`."""
        if side not in ("N", "S"):
            raise ConfigurationError(f"side must be 'N' or 'S', got {side!r}")
        self._stuck.add((self._index(ocs_index), side, port))

    def release_mirror(self, ocs_index: int, side: str, port: int) -> None:
        self._stuck.discard((self._index(ocs_index), side, port))

    # -- injector wiring --------------------------------------------------- #

    def attach(self, injector) -> "ControlPlaneFaults":
        """Subscribe to an injector's control-plane fault events."""
        injector.subscribe(FaultKind.RPC_TIMEOUT, self._on_event)
        injector.subscribe(FaultKind.MIRROR_STUCK, self._on_event)
        return self

    def _on_event(self, event: FaultEvent) -> None:
        index = target_index(event.target)
        if event.kind is FaultKind.RPC_TIMEOUT:
            if not event.recovery:
                self.inject_rpc_timeouts(index, max(1, int(event.severity)))
            return
        # MIRROR_STUCK: target "ocs-<i>/<side><port>"
        _, _, tail = event.target.partition("/")
        side, port = tail[:1], int(tail[1:])
        if event.recovery:
            self.release_mirror(index, side, port)
        else:
            self.stick_mirror(index, side, port)

    # -- queries consumed by the transaction ------------------------------- #

    def rpc_attempt_fails(self, ocs_index: int) -> bool:
        """Consume one pending timeout for the switch, if any."""
        left = self._pending_timeouts.get(ocs_index, 0)
        if left <= 0:
            return False
        if left == 1:
            del self._pending_timeouts[ocs_index]
        else:
            self._pending_timeouts[ocs_index] = left - 1
        return True

    def blocked_circuits(self, ocs_index: int, plan: ReconfigPlan) -> FrozenSet[Circuit]:
        """Breaks/makes of ``plan`` that touch a stuck mirror.

        Unchanged circuits are never inspected: a stuck mirror elsewhere
        cannot disturb them (job isolation).
        """
        stuck_n = {p for (i, s, p) in self._stuck if i == ocs_index and s == "N"}
        stuck_s = {p for (i, s, p) in self._stuck if i == ocs_index and s == "S"}
        if not stuck_n and not stuck_s:
            return frozenset()
        return frozenset(
            (n, s)
            for n, s in plan.breaks | plan.makes
            if n in stuck_n or s in stuck_s
        )


@dataclass(frozen=True)
class TransactionResult:
    """Outcome of one committed resilient transaction."""

    attempts: Mapping[OcsId, int]
    backoff_ms: float
    duration_ms: float
    circuits_disturbed: int
    circuits_preserved: int

    @property
    def total_attempts(self) -> int:
        return sum(self.attempts.values())

    @property
    def retries(self) -> int:
        return sum(max(0, a - 1) for a in self.attempts.values())


@dataclass
class ResilientReconfigurer:
    """Transactional multi-OCS reconfiguration over a fabric manager.

    Commits all-or-nothing: either every switch reaches its target map,
    or (after per-switch retries are exhausted) every switch is restored
    to its exact pre-transaction state and :class:`~repro.core.errors.
    TransactionError` is raised with ``rolled_back=True``.
    """

    manager: FabricManager
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    faults: Optional[ControlPlaneFaults] = None
    seed: int = 0
    obs: Optional[Observability] = field(default=None, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.obs is None:
            self.obs = NULL_OBS  # type: ignore[assignment]
        self._rng = np.random.default_rng(self.seed)

    def reconfigure(
        self, targets: Mapping[OcsId, CrossConnectMap]
    ) -> TransactionResult:
        """Drive the switches to their targets with retry + rollback."""
        plans = self.manager.plan(targets)
        pre_state = {oid: self.manager.switch(oid).state.copy() for oid in plans}
        applied: List[Tuple[OcsId, ReconfigPlan]] = []
        attempts: Dict[OcsId, int] = {}
        backoff_total = 0.0
        max_duration = 0.0
        disturbed = preserved = 0
        with self.obs.tracer.span(
            "resilience.txn", switches=len(plans)
        ) as span:
            for ocs_id in sorted(plans):
                plan = plans[ocs_id]
                attempt = 0
                while True:
                    attempt += 1
                    failure = self._attempt_failure(ocs_id, plan)
                    if failure is None:
                        duration = self.manager.apply_switch_plan(ocs_id, plan)
                        max_duration = max(max_duration, duration)
                        attempts[ocs_id] = attempt
                        applied.append((ocs_id, plan))
                        disturbed += plan.num_disturbed
                        preserved += len(plan.unchanged)
                        break
                    self.obs.metrics.counter(
                        "resilience.attempt.failures",
                        reason="rpc-timeout" if failure.startswith("rpc")
                        else "mirror-stuck",
                    ).inc()
                    self.obs.tracer.event(f"{ocs_id} attempt {attempt}: {failure}")
                    if attempt > self.policy.max_retries:
                        self._rollback(applied, pre_state)
                        self.obs.metrics.counter("resilience.rollbacks").inc()
                        span.set_attr("rolled_back", True)
                        raise TransactionError(
                            f"programming {ocs_id} failed after {attempt} attempt(s) "
                            f"({failure}); transaction rolled back",
                            ocs_id=ocs_id,
                            attempts=attempt,
                            rolled_back=True,
                        )
                    backoff = self.policy.backoff_ms(attempt, self._rng)
                    backoff_total += backoff
                    self.obs.clock.advance(backoff)
                    self.obs.metrics.counter("resilience.retries").inc()
                    self.obs.metrics.histogram("resilience.backoff_ms").observe(
                        backoff
                    )
            self.manager.drop_stale_links()
            self.obs.metrics.counter("resilience.commits").inc()
        return TransactionResult(
            attempts=attempts,
            backoff_ms=backoff_total,
            duration_ms=max_duration,
            circuits_disturbed=disturbed,
            circuits_preserved=preserved,
        )

    def _attempt_failure(self, ocs_id: OcsId, plan: ReconfigPlan) -> Optional[str]:
        """Reason the attempt fails under current injected faults, or None."""
        if self.faults is None:
            return None
        if self.faults.rpc_attempt_fails(ocs_id.index):
            return "rpc timeout"
        blocked = self.faults.blocked_circuits(ocs_id.index, plan)
        if blocked:
            n, s = sorted(blocked)[0]
            return f"mirror stuck on circuit N{n}-S{s}"
        return None

    def _rollback(
        self,
        applied: List[Tuple[OcsId, ReconfigPlan]],
        pre_state: Mapping[OcsId, CrossConnectMap],
    ) -> None:
        """Undo every applied plan, newest first; verify exact restore.

        Rollback bypasses the fault model: in the real control plane the
        undo program is replayed until it lands (the alternative --
        leaving a half-programmed fabric -- is the one unacceptable
        outcome).
        """
        for ocs_id, plan in reversed(applied):
            inverse = plan.inverse()
            if not inverse.is_noop:
                self.manager.switch(ocs_id).apply_plan(inverse)
            if self.manager.switch(ocs_id).state != pre_state[ocs_id]:
                raise TransactionError(
                    f"rollback of {ocs_id} did not restore the pre-transaction map",
                    ocs_id=ocs_id,
                    rolled_back=False,
                )
        self.manager.drop_stale_links()
