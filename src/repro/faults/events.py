"""The unified fault taxonomy and deterministic fault schedules.

Every failure mode the paper's layers model -- OCS FRUs (§3.2.2,
§4.1.1), plant degradation (Appendix A), host/cube outages (§4.2.2),
and control-plane RPC flakiness -- is expressed as one
:class:`FaultEvent` so schedules compose across subsystems: the same
seeded timeline can pinch a fiber at t=10 s, crash a host at t=30 s,
and time out a programming RPC at t=31 s.

Determinism is a first-class property: schedules are drawn from a
seeded generator in a fixed order, every event has a :meth:`canonical
<FaultEvent.canonical>` byte representation, and
:func:`schedule_digest` hashes a whole schedule so two runs can be
compared byte-for-byte.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.errors import FaultInjectionError


class FaultKind(enum.Enum):
    """The cross-layer failure taxonomy."""

    #: An HV driver board loses drive; its channels' circuits drop.
    OCS_HV_DRIVER = "ocs-hv-driver"
    #: A MEMS mirror stops actuating; makes touching it cannot complete.
    MIRROR_STUCK = "mirror-stuck"
    #: Slow plant degradation on a live circuit (collimator aging).
    CIRCUIT_LOSS_DRIFT = "circuit-loss-drift"
    #: Endpoint optics bounce: the link goes dark briefly.
    TRANSCEIVER_FLAP = "transceiver-flap"
    #: Abrupt plant loss step (a stepped-on or pinched fiber).
    FIBER_PINCH = "fiber-pinch"
    #: One host of a cube goes down (the cube needs all 16).
    HOST_CRASH = "host-crash"
    #: A whole rack loses power: the cube and its 64 chips are gone.
    CUBE_POWER_LOSS = "cube-power-loss"
    #: A control-plane programming RPC times out.
    RPC_TIMEOUT = "rpc-timeout"
    #: The fabric-manager controller process dies (volatile state lost).
    CONTROLLER_CRASH = "controller-crash"
    #: The control network partitions: either one controller replica is
    #: isolated (``controller-<i>`` target) or the replica set splits
    #: into groups (``net-<name>`` target with a ``groups`` param).
    NETWORK_PARTITION = "network-partition"
    #: A controller replica's local clock skews from true time by
    #: ``skew_s`` seconds (lease judgments drift; safety must not).
    CLOCK_SKEW = "clock-skew"


ParamValue = Union[int, float, str, bool]


@dataclass(frozen=True)
class FaultEvent:
    """One point on the fault timeline.

    Attributes:
        time_s: event time on the simulation clock.
        kind: taxonomy entry.
        target: canonical target id (see the ``*_target`` helpers).
        recovery: True for the clearing edge of a fault (repair, power
            restored, flap over); False for the fault itself.
        severity: kind-specific magnitude (dB for plant faults, count
            for RPC timeouts, board index for FRU failures...).
        params: extra key-value detail, stored sorted for hashability
            and canonical bytes.
        seq: schedule order assigned by the injector (tie-break within
            one timestamp); -1 before scheduling.
    """

    time_s: float
    kind: FaultKind
    target: str
    recovery: bool = False
    severity: float = 0.0
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    seq: int = -1

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise FaultInjectionError(f"event time must be non-negative, got {self.time_s}")
        if not self.target:
            raise FaultInjectionError("event target must be non-empty")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def param(self, key: str, default: Optional[ParamValue] = None) -> Optional[ParamValue]:
        """Look up one params entry."""
        for k, v in self.params:
            if k == key:
                return v
        return default

    @property
    def sort_key(self) -> Tuple[float, int]:
        return (self.time_s, self.seq)

    def canonical(self) -> str:
        """Byte-stable one-line representation (used for digests)."""
        params = ",".join(f"{k}={v!r}" for k, v in self.params)
        return (
            f"{self.time_s!r}|{self.kind.value}|{self.target}|"
            f"{int(self.recovery)}|{self.severity!r}|{params}"
        )

    def __str__(self) -> str:
        edge = "clear" if self.recovery else "fault"
        return f"[{self.time_s:.3f}s {edge}] {self.kind.value} @ {self.target}"


# ---------------------------------------------------------------------- #
# Canonical target ids
# ---------------------------------------------------------------------- #


def ocs_target(index: int) -> str:
    """Target id for a whole OCS chassis."""
    return f"ocs-{index}"


def mirror_target(ocs_index: int, side: str, port: int) -> str:
    """Target id for one mirror, e.g. ``ocs-3/N12``."""
    if side not in ("N", "S"):
        raise FaultInjectionError(f"side must be 'N' or 'S', got {side!r}")
    return f"ocs-{ocs_index}/{side}{port}"


def circuit_target(ocs_index: int, north: int, south: int) -> str:
    """Target id for one circuit of one OCS."""
    return f"ocs-{ocs_index}/N{north}-S{south}"


def cube_target(index: int) -> str:
    """Target id for a whole cube (rack)."""
    return f"cube-{index}"


def host_target(cube_index: int, host_index: int) -> str:
    """Target id for one host of a cube."""
    return f"cube-{cube_index}/host-{host_index}"


def endpoint_target(name: str) -> str:
    """Target id for a fabric endpoint (transceiver faults)."""
    return f"endpoint-{name}"


def controller_target(index: int = 0) -> str:
    """Target id for a fabric-manager controller instance."""
    return f"controller-{index}"


def network_target(name: str = "control") -> str:
    """Target id for a network-wide event (group partitions)."""
    return f"net-{name}"


def partition_groups_param(groups: Sequence[Sequence[int]]) -> Tuple[str, str]:
    """The ``("groups", "0,1|2,3")`` param encoding a group partition.

    Each group is a set of controller indices that can still reach each
    other; nodes in different groups cannot communicate.  Groups are
    canonicalized (sorted within and across) so equal partitions encode
    to equal params.
    """
    if not groups:
        raise FaultInjectionError("a partition needs at least one group")
    canon = sorted(tuple(sorted(set(int(i) for i in g))) for g in groups)
    seen: set = set()
    for group in canon:
        if not group:
            raise FaultInjectionError("partition groups must be non-empty")
        if seen & set(group):
            raise FaultInjectionError("partition groups must be disjoint")
        seen.update(group)
    return "groups", "|".join(",".join(str(i) for i in g) for g in canon)


def parse_partition_groups(encoded: str) -> Tuple[Tuple[int, ...], ...]:
    """Decode a ``groups`` param back into index tuples."""
    try:
        return tuple(
            tuple(int(i) for i in part.split(","))
            for part in encoded.split("|")
            if part
        )
    except ValueError:
        raise FaultInjectionError(
            f"malformed partition groups {encoded!r}"
        ) from None


def target_index(target: str) -> int:
    """The integer index of a top-level target (``ocs-3`` -> 3)."""
    head = target.split("/", 1)[0]
    try:
        return int(head.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        raise FaultInjectionError(f"target {target!r} has no trailing index") from None


# ---------------------------------------------------------------------- #
# Schedule construction and digests
# ---------------------------------------------------------------------- #


def poisson_times(
    rng: np.random.Generator, rate_per_s: float, horizon_s: float
) -> List[float]:
    """Arrival times of a Poisson process on ``[0, horizon_s)``.

    Drawn as cumulative exponential gaps so the sequence for a given
    generator state is reproducible sample-for-sample.
    """
    if rate_per_s <= 0:
        raise FaultInjectionError(f"rate must be positive, got {rate_per_s}")
    if horizon_s <= 0:
        raise FaultInjectionError(f"horizon must be positive, got {horizon_s}")
    times: List[float] = []
    t = float(rng.exponential(1.0 / rate_per_s))
    while t < horizon_s:
        times.append(t)
        t += float(rng.exponential(1.0 / rate_per_s))
    return times


def schedule_digest(events: Iterable[FaultEvent]) -> str:
    """SHA-256 over the canonical bytes of a schedule, in timeline order.

    Two schedules with the same digest are byte-identical: same times,
    kinds, targets, severities, and parameters in the same order.
    """
    h = hashlib.sha256()
    for event in sorted(events, key=lambda e: e.sort_key):
        h.update(event.canonical().encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


#: Convenience: per-kind default mean clear times (seconds) used by
#: rate-based schedules when the caller does not override them.  FRU
#: swaps take hours; flaps clear in seconds.
DEFAULT_CLEAR_S: Mapping[FaultKind, float] = {
    FaultKind.OCS_HV_DRIVER: 4 * 3600.0,
    FaultKind.MIRROR_STUCK: 4 * 3600.0,
    FaultKind.TRANSCEIVER_FLAP: 10.0,
    FaultKind.HOST_CRASH: 3600.0,
    FaultKind.CUBE_POWER_LOSS: 4 * 3600.0,
    FaultKind.CONTROLLER_CRASH: 60.0,
    FaultKind.NETWORK_PARTITION: 30.0,
    FaultKind.CLOCK_SKEW: 300.0,
}


def validate_trace(events: Sequence[FaultEvent]) -> Tuple[FaultEvent, ...]:
    """Check an explicit trace is well-formed and return it time-sorted."""
    out = sorted(events, key=lambda e: e.sort_key)
    for event in out:
        if not isinstance(event.kind, FaultKind):
            raise FaultInjectionError(f"unknown fault kind {event.kind!r}")
    return tuple(out)
