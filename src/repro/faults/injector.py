"""The seeded discrete-event fault timeline simulators subscribe to.

One :class:`FaultInjector` owns a single random stream (seeded) and a
priority queue of pending :class:`~repro.faults.events.FaultEvent`\\ s.
Schedules come from Poisson rates (:meth:`FaultInjector.schedule_poisson`),
explicit traces (:meth:`FaultInjector.schedule_trace`), or ad-hoc
:meth:`FaultInjector.schedule` calls; consumers either pull events in
timeline order (:meth:`pop_next` / :meth:`advance_to`) or register
per-kind callbacks with :meth:`subscribe` and let delivery fan out.

Determinism contract: with equal seeds and an equal sequence of
scheduling calls, two injectors produce byte-identical schedules
(:meth:`pending_digest`) and byte-identical delivery logs
(:meth:`delivered_digest`) -- the property ``tests/faults/
test_determinism.py`` pins down.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import FaultInjectionError
from repro.obs import Observability
from repro.faults.events import (
    FaultEvent,
    FaultKind,
    ParamValue,
    poisson_times,
    schedule_digest,
    validate_trace,
)

Callback = Callable[[FaultEvent], None]


@dataclass
class FaultInjector:
    """Deterministic cross-layer fault scheduler and dispatcher."""

    seed: int = 0
    #: Optional observability bundle; event delivery is a hot loop, so
    #: instrumentation is counters-only and guarded on ``None``.
    obs: Optional[Observability] = field(default=None, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)
    _heap: List[Tuple[float, int, FaultEvent]] = field(
        init=False, default_factory=list, repr=False
    )
    _seq: "itertools.count[int]" = field(init=False, repr=False)
    _subscribers: Dict[FaultKind, List[Callback]] = field(
        init=False, default_factory=dict, repr=False
    )
    _delivered: List[FaultEvent] = field(init=False, default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._seq = itertools.count()

    # ------------------------------------------------------------------ #
    # Random draws (shared stream -- the determinism anchor)
    # ------------------------------------------------------------------ #

    def exponential(self, mean_s: float) -> float:
        """One exponential draw from the injector's stream."""
        if mean_s <= 0:
            raise FaultInjectionError(f"mean must be positive, got {mean_s}")
        return float(self._rng.exponential(mean_s))

    def uniform(self, low: float, high: float) -> float:
        """One uniform draw from the injector's stream."""
        return float(self._rng.uniform(low, high))

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self,
        time_s: float,
        kind: FaultKind,
        target: str,
        *,
        recovery: bool = False,
        severity: float = 0.0,
        params: Sequence[Tuple[str, ParamValue]] = (),
        clear_after_s: Optional[float] = None,
    ) -> FaultEvent:
        """Enqueue one event; optionally its clearing edge too.

        ``clear_after_s`` schedules the paired ``recovery=True`` event
        at ``time_s + clear_after_s`` (a flap's end, a FRU swap done).
        Returns the fault event.
        """
        event = FaultEvent(
            time_s=time_s,
            kind=kind,
            target=target,
            recovery=recovery,
            severity=severity,
            params=tuple(params),
            seq=next(self._seq),
        )
        heapq.heappush(self._heap, (event.time_s, event.seq, event))
        if clear_after_s is not None:
            if clear_after_s <= 0:
                raise FaultInjectionError("clear_after_s must be positive")
            if recovery:
                raise FaultInjectionError("a recovery event cannot itself clear")
            clear = FaultEvent(
                time_s=time_s + clear_after_s,
                kind=kind,
                target=target,
                recovery=True,
                severity=severity,
                params=tuple(params),
                seq=next(self._seq),
            )
            heapq.heappush(self._heap, (clear.time_s, clear.seq, clear))
        return event

    def schedule_poisson(
        self,
        kind: FaultKind,
        targets: Sequence[str],
        rate_per_s: float,
        horizon_s: float,
        *,
        severity: float = 0.0,
        clear_after_s: Optional[float] = None,
    ) -> int:
        """Independent Poisson fault streams, one per target.

        Streams are drawn in the given target order so the schedule is a
        pure function of (seed, call sequence).  Returns the number of
        fault events scheduled (excluding clearing edges).
        """
        count = 0
        for target in targets:
            for t in poisson_times(self._rng, rate_per_s, horizon_s):
                self.schedule(
                    t,
                    kind,
                    target,
                    severity=severity,
                    clear_after_s=clear_after_s,
                )
                count += 1
        return count

    def schedule_trace(self, events: Iterable[FaultEvent]) -> int:
        """Enqueue an explicit trace (re-sequenced onto this timeline)."""
        count = 0
        for event in validate_trace(tuple(events)):
            self.schedule(
                event.time_s,
                event.kind,
                event.target,
                recovery=event.recovery,
                severity=event.severity,
                params=event.params,
            )
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # Subscription and delivery
    # ------------------------------------------------------------------ #

    def subscribe(self, kind: FaultKind, callback: Callback) -> None:
        """Register a callback fired for every delivered event of ``kind``."""
        self._subscribers.setdefault(kind, []).append(callback)

    def next_time(self) -> Optional[float]:
        """Time of the next pending event, or None when drained."""
        return self._heap[0][0] if self._heap else None

    def pop_next(self) -> Optional[FaultEvent]:
        """Deliver the next event (fires subscribers) and return it."""
        if not self._heap:
            return None
        _, _, event = heapq.heappop(self._heap)
        self._delivered.append(event)
        if self.obs is not None:
            self.obs.metrics.counter(
                "faults.events.delivered",
                kind=event.kind.value,
                edge="recovery" if event.recovery else "fault",
            ).inc()
        for callback in self._subscribers.get(event.kind, ()):
            callback(event)
        return event

    def advance_to(self, time_s: float) -> List[FaultEvent]:
        """Deliver every pending event with ``time <= time_s``, in order."""
        out: List[FaultEvent] = []
        while self._heap and self._heap[0][0] <= time_s:
            event = self.pop_next()
            assert event is not None
            out.append(event)
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_pending(self) -> int:
        return len(self._heap)

    def pending_events(self) -> Tuple[FaultEvent, ...]:
        """Timeline-ordered snapshot of the undelivered schedule."""
        return tuple(e for _, _, e in sorted(self._heap))

    def delivered(self) -> Tuple[FaultEvent, ...]:
        """Events already delivered, in delivery order."""
        return tuple(self._delivered)

    def pending_digest(self) -> str:
        """Byte-stable digest of the undelivered schedule."""
        return schedule_digest(self.pending_events())

    def delivered_digest(self) -> str:
        """Byte-stable digest of everything delivered so far."""
        return schedule_digest(self._delivered)
