"""Chaos scenarios: seeded end-to-end fault drills over the whole stack.

Each scenario builds a real assembly (superpod degradation model,
LightwaveFabric, repair loop), drives it from one
:class:`~repro.faults.injector.FaultInjector` timeline, and emits a
:class:`ChaosReport` -- a goodput/availability timeline plus summary
metrics, hashable for byte-level determinism checks.

The scenarios double as cross-checks between layers:

- :func:`single_ocs_loss` must reproduce the per-slice step-time hit of
  :func:`repro.tpu.degradation.step_time_degradation` and, over a long
  renewal run, the Fig 15 analytic fabric availability
  (:func:`repro.availability.model.fabric_availability`);
- :func:`correlated_hv_batch` exercises the resilient transaction path
  under injected RPC timeouts after a correlated FRU failure burst;
- :func:`rolling_transceiver_flaps` measures link availability under
  staggered endpoint optics bounces -- and, with ``damping=True``, runs
  the fleet health watchdog's flap-damping/quarantine loop against them,
  pricing held-out capacity through the §4.2.2 degradation analytic;
- :func:`repair_race` races the spare-port repair loop against incoming
  fiber pinches until the pool runs dry (a contextful
  :class:`~repro.core.errors.CapacityError`);
- :func:`controller_crash_recovery` kills the durable controller at
  every WAL offset of a multi-OCS reconfiguration and checks that
  recovery + anti-entropy reconciliation converge to byte-identical
  state digests;
- :func:`partition_failover` runs the replicated control plane
  (:mod:`repro.control.replication`) through a rolling crash /
  network-partition / clock-skew storm and checks the HA invariants:
  no committed op lost, at most one leader per epoch, and a final
  state digest byte-identical to serial replay of the committed log.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.availability.model import fabric_availability
from repro.core.errors import CapacityError, ConfigurationError
from repro.core.ids import OcsId
from repro.faults.events import (
    FaultEvent,
    FaultKind,
    circuit_target,
    controller_target,
    endpoint_target,
    network_target,
    ocs_target,
    partition_groups_param,
    schedule_digest,
    target_index,
)
from repro.faults.injector import FaultInjector
from repro.faults.resilience import ControlPlaneFaults, RetryPolicy
from repro.ml.models import LLM_ZOO
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel
from repro.ocs.reliability import SINGLE_OCS_AVAILABILITY, AvailabilityModel
from repro.tpu.cube import DIMS
from repro.tpu.degradation import (
    multi_ocs_step_degradation,
    ocs_dimension,
    quarantine_step_degradation,
    step_time_degradation,
)
from repro.tpu.superpod import NUM_OCSES


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos scenario run.

    Attributes:
        scenario: registry name of the scenario.
        seed: the injector seed the run used.
        timeline: (time_s, goodput fraction in [0, 1]) at every state
            transition, starting at t=0.
        metrics: scenario-specific summary numbers.
        schedule: the fault events delivered during the run, in order.
    """

    scenario: str
    seed: int
    timeline: Tuple[Tuple[float, float], ...]
    metrics: Mapping[str, float]
    schedule: Tuple[FaultEvent, ...]

    def digest(self) -> str:
        """SHA-256 over the full report: equal digests mean the runs were
        byte-identical (timeline, metrics, and fault schedule)."""
        h = hashlib.sha256()
        h.update(f"{self.scenario}|{self.seed}\n".encode("utf-8"))
        for t, g in self.timeline:
            h.update(f"{t!r},{g!r}\n".encode("utf-8"))
        for key in sorted(self.metrics):
            h.update(f"{key}={self.metrics[key]!r}\n".encode("utf-8"))
        h.update(schedule_digest(self.schedule).encode("utf-8"))
        return h.hexdigest()

    def mean_goodput(self) -> float:
        """Time-weighted mean of the goodput timeline."""
        if len(self.timeline) < 2:
            return self.timeline[0][1] if self.timeline else 1.0
        total = self.timeline[-1][0] - self.timeline[0][0]
        if total <= 0:
            return self.timeline[-1][1]
        area = 0.0
        for (t0, g0), (t1, _) in zip(self.timeline, self.timeline[1:]):
            area += g0 * (t1 - t0)
        return area / total


# ---------------------------------------------------------------------- #
# Scenario: single OCS loss (degradation + Fig 15 cross-check)
# ---------------------------------------------------------------------- #


def single_ocs_loss(
    seed: int = 0,
    horizon_hours: float = 20000.0,
    mttr_hours: float = 4.0,
    ocs_availability: float = SINGLE_OCS_AVAILABILITY,
    model_name: str = "llm2",
) -> ChaosReport:
    """OCS failures on the superpod fabric: step-time hit + availability.

    Two cross-checks in one run.  First, a seeded single-OCS failure is
    priced through the graceful-degradation path
    (:func:`~repro.tpu.degradation.multi_ocs_step_degradation`) and
    compared against the §4.2.2 analytic
    (:func:`~repro.tpu.degradation.step_time_degradation`).  Second, the
    injector runs a renewal process over all 48 OCSes (exponential
    up/down times matching ``ocs_availability`` at ``mttr_hours``) and
    the observed all-up fraction is compared against the Fig 15 analytic
    ``A_ocs ** 48``.

    The goodput timeline is the relative training throughput
    ``t_healthy / t_degraded`` of a full-pod slice under the currently
    failed OCS set.
    """
    injector = FaultInjector(seed=seed)
    model = LLM_ZOO[model_name]
    plan = ParallelismPlan.for_shape(model, (16, 16, 16))
    step_model = TrainingStepModel()

    # -- cross-check 1: one failed OCS vs the analytic degradation -------- #
    failed_index = int(injector.uniform(0, NUM_OCSES))
    failed_ocs = OcsId(failed_index)
    chaos_hit = multi_ocs_step_degradation(plan, step_model, [failed_ocs])
    axis = DIMS.index(ocs_dimension(failed_ocs))
    analytic_hit = step_time_degradation(plan, step_model, axis)
    hit_rel_error = abs(chaos_hit - analytic_hit) / analytic_hit

    # -- cross-check 2: renewal Monte-Carlo vs Fig 15 --------------------- #
    availability_model = AvailabilityModel.from_availability(
        ocs_availability, mttr_hours=mttr_hours
    )
    horizon_s = horizon_hours * 3600.0
    for index in range(NUM_OCSES):
        t_h = 0.0
        while True:
            t_h += injector.exponential(availability_model.mtbf_hours)
            if t_h >= horizon_hours:
                break
            repair_h = injector.exponential(availability_model.mttr_hours)
            injector.schedule(
                t_h * 3600.0,
                FaultKind.OCS_HV_DRIVER,
                ocs_target(index),
                clear_after_s=min(repair_h, horizon_hours - t_h) * 3600.0,
            )
            t_h += repair_h

    goodput_cache: Dict[FrozenSet[int], float] = {}

    def goodput(down: FrozenSet[int]) -> float:
        if down not in goodput_cache:
            try:
                hit = multi_ocs_step_degradation(
                    plan, step_model, [OcsId(i) for i in sorted(down)]
                )
                goodput_cache[down] = 1.0 / (1.0 + hit)
            except CapacityError:
                goodput_cache[down] = 0.0  # a whole dimension went dark
        return goodput_cache[down]

    down: set = set()
    timeline: List[Tuple[float, float]] = [(0.0, 1.0)]
    all_up_s = 0.0
    outages = 0
    t_prev = 0.0
    while injector.num_pending:
        event = injector.pop_next()
        assert event is not None
        if not down:
            all_up_s += event.time_s - t_prev
        t_prev = event.time_s
        if event.recovery:
            down.discard(target_index(event.target))
        else:
            down.add(target_index(event.target))
            outages += 1
        timeline.append((event.time_s, goodput(frozenset(down))))
    if not down:
        all_up_s += horizon_s - t_prev
    timeline.append((horizon_s, goodput(frozenset(down))))

    availability_mc = all_up_s / horizon_s
    availability_analytic = fabric_availability(NUM_OCSES, ocs_availability)
    metrics = {
        "failed_ocs": float(failed_index),
        "step_hit_chaos": chaos_hit,
        "step_hit_analytic": analytic_hit,
        "step_hit_rel_error": hit_rel_error,
        "availability_mc": availability_mc,
        "availability_analytic": availability_analytic,
        "availability_abs_error": abs(availability_mc - availability_analytic),
        "outages": float(outages),
    }
    return ChaosReport(
        scenario="single_ocs_loss",
        seed=seed,
        timeline=tuple(timeline),
        metrics=metrics,
        schedule=injector.delivered(),
    )


# ---------------------------------------------------------------------- #
# Scenario: correlated HV driver-board batch failure
# ---------------------------------------------------------------------- #


def correlated_hv_batch(
    seed: int = 0,
    num_ocses: int = 3,
    circuits_per_ocs: int = 4,
    board_index: int = 0,
    rpc_timeouts: int = 2,
    repair_s: float = 4 * 3600.0,
) -> ChaosReport:
    """A bad HV driver-board lot fails across several OCSes at once.

    Each affected switch drops every circuit on the board; after the
    FRU swaps land, the circuits are re-established through a resilient
    transaction while the control plane times out ``rpc_timeouts``
    programming RPCs per switch -- the retries must absorb them without
    rolling back.  Goodput is the fraction of circuits up.
    """
    from repro.fabric.lightwave import LightwaveFabric

    if circuits_per_ocs < 1 or 2 * circuits_per_ocs > 16:
        raise ConfigurationError("circuits_per_ocs must be in [1, 8]")
    injector = FaultInjector(seed=seed)
    faults = ControlPlaneFaults().attach(injector)
    fabric = LightwaveFabric()
    pairs: Dict[int, List[Tuple[str, str]]] = {}
    for i in range(num_ocses):
        fabric.add_ocs(OcsId(i))
        pairs[i] = []
        for j in range(2 * circuits_per_ocs):
            name = f"srv{i}-{j}"
            fabric.add_endpoint(name, 2)
            fabric.wire(name, 0, OcsId(i), "N", j)
            fabric.wire(name, 1, OcsId(i), "S", j)
        for k in range(circuits_per_ocs):
            a, b = f"srv{i}-{2 * k}", f"srv{i}-{2 * k + 1}"
            fabric.connect(a, b)
            pairs[i].append((a, b))
    total = num_ocses * circuits_per_ocs

    # The correlated burst: one board per OCS, seconds apart, then the
    # FRU swap (recovery edge) and a flaky control plane during re-make.
    for i in range(num_ocses):
        t_fail = 60.0 + float(i)
        injector.schedule(
            t_fail,
            FaultKind.OCS_HV_DRIVER,
            ocs_target(i),
            severity=float(board_index),
            clear_after_s=repair_s,
        )
        if rpc_timeouts > 0:
            injector.schedule(
                t_fail + repair_s - 1.0,
                FaultKind.RPC_TIMEOUT,
                ocs_target(i),
                severity=float(rpc_timeouts),
            )

    policy = RetryPolicy(max_retries=max(3, rpc_timeouts + 1))
    up = total
    dropped_total = restored_total = attempts_total = 0
    backoff_total = 0.0
    rollbacks = 0
    timeline: List[Tuple[float, float]] = [(0.0, 1.0)]
    while injector.num_pending:
        event = injector.pop_next()
        assert event is not None
        if event.kind is not FaultKind.OCS_HV_DRIVER:
            continue  # RPC_TIMEOUT feeds ``faults`` via its subscription
        index = target_index(event.target)
        device = fabric.ocs(OcsId(index))
        if not event.recovery:
            dropped = device.fail_driver_board("north", int(event.severity))
            fabric.manager.drop_stale_links()
            dropped_total += len(dropped)
            up -= len(dropped)
            timeline.append((event.time_s, up / total))
            continue
        device.replace_driver_board("north", int(event.severity))
        result, link_ids = fabric.connect_all(
            pairs[index], policy=policy, faults=faults, seed=seed + index
        )
        attempts_total += result.total_attempts
        backoff_total += result.backoff_ms
        restored_total += len(link_ids)
        up += len(link_ids)
        timeline.append((event.time_s, up / total))

    metrics = {
        "circuits": float(total),
        "dropped": float(dropped_total),
        "restored": float(restored_total),
        "attempts": float(attempts_total),
        "retries": float(attempts_total - num_ocses),
        "backoff_ms": backoff_total,
        "rollbacks": float(rollbacks),
        "final_up_fraction": up / total,
    }
    return ChaosReport(
        scenario="correlated_hv_batch",
        seed=seed,
        timeline=tuple(timeline),
        metrics=metrics,
        schedule=injector.delivered(),
    )


# ---------------------------------------------------------------------- #
# Scenario: rolling transceiver flaps
# ---------------------------------------------------------------------- #


def rolling_transceiver_flaps(
    seed: int = 0,
    num_links: int = 8,
    flap_rate_per_s: float = 1.0 / 120.0,
    flap_duration_s: float = 10.0,
    horizon_s: float = 900.0,
    damping: bool = False,
    spares: int = 1,
    model_name: str = "llm2",
) -> ChaosReport:
    """Endpoint optics bounce across a fabric's links, staggered.

    Each link's A-side endpoint flaps as an independent Poisson stream;
    a flap darkens the link for ``flap_duration_s``.  Goodput is the
    fraction of links currently lit, and the metrics summarize flap
    count, time-weighted availability, and the worst concurrent outage.

    With ``damping=True`` the scenario instead runs the fleet health
    watchdog (:mod:`repro.control.health`) against a single flapping
    link (bystanders stay quiet): BGP-style flap damping quarantines the
    circuit once its penalty crosses the suppress threshold, steering it
    to one of ``spares`` re-qualified spare ports -- or holding it out of
    service when ``spares=0``, with the capacity loss priced through
    :func:`repro.tpu.degradation.quarantine_step_degradation` for
    ``model_name`` -- then releases it after the hold-down once the
    penalty decays below reuse.  Defaults (``damping=False``) preserve
    the classic timeline and digest exactly.
    """
    from repro.fabric.lightwave import LightwaveFabric

    if damping:
        return _rolling_flaps_damped(
            seed=seed,
            num_links=num_links,
            flap_rate_per_s=flap_rate_per_s,
            flap_duration_s=flap_duration_s,
            horizon_s=horizon_s,
            spares=spares,
            model_name=model_name,
        )
    injector = FaultInjector(seed=seed)
    fabric = LightwaveFabric()
    fabric.add_ocs(OcsId(0))
    targets = []
    for j in range(num_links):
        a, b = f"tx{j}-a", f"tx{j}-b"
        fabric.add_endpoint(a, 1)
        fabric.add_endpoint(b, 1)
        fabric.wire(a, 0, OcsId(0), "N", j)
        fabric.wire(b, 0, OcsId(0), "S", j)
        fabric.connect(a, b)
        targets.append(endpoint_target(a))
    flaps = injector.schedule_poisson(
        FaultKind.TRANSCEIVER_FLAP,
        targets,
        flap_rate_per_s,
        horizon_s,
        clear_after_s=flap_duration_s,
    )

    dark_count: Dict[str, int] = {}
    timeline: List[Tuple[float, float]] = [(0.0, 1.0)]
    up_area = 0.0
    worst_dark = 0
    t_prev = 0.0
    while injector.num_pending:
        event = injector.pop_next()
        assert event is not None
        dark = sum(1 for c in dark_count.values() if c > 0)
        up_area += (num_links - dark) / num_links * (event.time_s - t_prev)
        t_prev = event.time_s
        delta = -1 if event.recovery else 1
        dark_count[event.target] = dark_count.get(event.target, 0) + delta
        dark = sum(1 for c in dark_count.values() if c > 0)
        worst_dark = max(worst_dark, dark)
        timeline.append((event.time_s, (num_links - dark) / num_links))
    dark = sum(1 for c in dark_count.values() if c > 0)
    end_s = max(horizon_s, t_prev)
    up_area += (num_links - dark) / num_links * (end_s - t_prev)
    timeline.append((end_s, (num_links - dark) / num_links))

    metrics = {
        "links": float(num_links),
        "flaps": float(flaps),
        "link_availability": up_area / end_s,
        "worst_concurrent_dark": float(worst_dark),
    }
    return ChaosReport(
        scenario="rolling_transceiver_flaps",
        seed=seed,
        timeline=tuple(timeline),
        metrics=metrics,
        schedule=injector.delivered(),
    )


def _rolling_flaps_damped(
    seed: int,
    num_links: int,
    flap_rate_per_s: float,
    flap_duration_s: float,
    horizon_s: float,
    spares: int,
    model_name: str,
) -> ChaosReport:
    """The ``damping=True`` arm of :func:`rolling_transceiver_flaps`."""
    from repro.control.health import DampingPolicy, FleetHealthWatchdog
    from repro.fabric.lightwave import LightwaveFabric
    from repro.fabric.repair import RepairLoop
    from repro.ocs.palomar import PALOMAR_USABLE_PORTS

    if num_links < 2:
        raise ConfigurationError("damped drill needs a bystander: num_links >= 2")
    if spares < 0:
        raise ConfigurationError("spares must be non-negative")
    injector = FaultInjector(seed=seed)
    fabric = LightwaveFabric()
    fabric.add_ocs(OcsId(0))
    device = fabric.ocs(OcsId(0))
    policy = DampingPolicy()
    watchdog = FleetHealthWatchdog(policy=policy)
    loop = RepairLoop(
        device,
        spare_south_ports=list(
            range(PALOMAR_USABLE_PORTS, PALOMAR_USABLE_PORTS + spares)
        ),
    )
    if spares > 0:
        watchdog.add_repair_loop(0, loop)
    for j in range(num_links):
        a, b = f"tx{j}-a", f"tx{j}-b"
        fabric.add_endpoint(a, 1)
        fabric.add_endpoint(b, 1)
        fabric.wire(a, 0, OcsId(0), "N", j)
        fabric.wire(b, 0, OcsId(0), "S", j)
        fabric.connect(a, b)
        watchdog.watch_circuit(0, j, j)
        watchdog.map_endpoint(endpoint_target(a), 0, j)
    watchdog.attach(injector)
    bystander_souths = {j: device.state.south_of(j) for j in range(1, num_links)}

    # One flapping link, deterministic train: the gap is chosen so the
    # decayed penalty crosses suppress on the third flap (bystanders
    # never flap -- the drill checks they are never disturbed either).
    flap_gap_s = max(1.0 / flap_rate_per_s / 8.0, flap_duration_s + 1.0)
    num_flaps = 4
    for k in range(num_flaps):
        injector.schedule(
            30.0 + k * flap_gap_s,
            FaultKind.TRANSCEIVER_FLAP,
            endpoint_target("tx0-a"),
            clear_after_s=flap_duration_s,
        )

    model = LLM_ZOO[model_name]
    plan = ParallelismPlan.for_shape(model, (16, 16, 16))
    step_model = TrainingStepModel()

    def goodput_now() -> float:
        frac = watchdog.held_out_fraction(0)
        if frac == 0.0:
            return 1.0
        return 1.0 / (1.0 + quarantine_step_degradation(plan, step_model, 0, frac))

    timeline: List[Tuple[float, float]] = [(0.0, 1.0)]
    quarantine_t = release_t = -1.0
    quarantines = steered = released = released_home = 0
    held_out_max = 0.0
    goodput_during_quarantine = 1.0
    now = 0.0

    def act(t: float) -> None:
        nonlocal quarantine_t, release_t, quarantines, steered
        nonlocal released, released_home, held_out_max, goodput_during_quarantine
        for action in watchdog.poll(t):
            if action.action in ("steer", "hold-out"):
                quarantines += 1
                quarantine_t = t if quarantine_t < 0 else quarantine_t
                steered += 1 if action.action == "steer" else 0
            else:
                released += 1
                released_home += 1 if action.action == "release-home" else 0
                release_t = t
        held_out_max = max(held_out_max, watchdog.held_out_fraction(0))
        g = goodput_now()
        if watchdog.quarantined():
            goodput_during_quarantine = min(goodput_during_quarantine, g)
        timeline.append((t, g))

    while injector.num_pending:
        event = injector.pop_next()
        assert event is not None
        now = event.time_s
        act(now)
    # Keep polling past the flap train until the hold-down and penalty
    # decay release the circuit (bounded by the policy's worst case).
    deadline = now + policy.hold_down_s + policy.max_suppress_s() + horizon_s
    poll_gap_s = 15.0
    while watchdog.quarantined() and now < deadline:
        now += poll_gap_s
        act(now)
    timeline.append((now, goodput_now()))

    bystanders_disturbed = sum(
        1
        for j, south in bystander_souths.items()
        if device.state.south_of(j) != south
    )
    metrics = {
        "links": float(num_links),
        "flaps": float(num_flaps),
        "quarantines": float(quarantines),
        "steered": float(steered),
        "released": float(released),
        "released_home": float(released_home),
        "quarantine_t_s": quarantine_t,
        "release_t_s": release_t,
        "bystanders_disturbed": float(bystanders_disturbed),
        "held_out_max_fraction": held_out_max,
        "goodput_during_quarantine": goodput_during_quarantine,
        "final_goodput": timeline[-1][1],
    }
    return ChaosReport(
        scenario="rolling_transceiver_flaps",
        seed=seed,
        timeline=tuple(timeline),
        metrics=metrics,
        schedule=injector.delivered(),
    )


# ---------------------------------------------------------------------- #
# Scenario: repair loop vs incoming pinches
# ---------------------------------------------------------------------- #


def repair_race(
    seed: int = 0,
    num_circuits: int = 6,
    num_spares: int = 3,
    damaged_spares: int = 1,
    pinch_db: float = 1.0,
    pinch_rate_per_s: float = 1.0 / 60.0,
    horizon_s: float = 600.0,
) -> ChaosReport:
    """Fiber pinches race the spare-port repair loop until the pool dries.

    Pinches arrive as Poisson streams per circuit; each drives the loop
    through telemetry -> re-qualify -> spare swap.  The pool is small
    and partially damaged (``damaged_spares`` fail re-qualification), so
    late repairs exhaust it and surface
    :class:`~repro.core.errors.CapacityError` with the degraded circuit
    and attempted spares attached.  Goodput is the fraction of circuits
    not stuck in an unrepairable state.
    """
    from repro.fabric.repair import RepairLoop
    from repro.ocs.palomar import PALOMAR_USABLE_PORTS, PalomarOcs

    if num_spares < 1 or damaged_spares > num_spares:
        raise ConfigurationError("need 1+ spares and damaged_spares <= num_spares")
    injector = FaultInjector(seed=seed)
    ocs = PalomarOcs.build(name="chaos-repair", seed=seed)
    spares = list(range(PALOMAR_USABLE_PORTS, PALOMAR_USABLE_PORTS + num_spares))
    loop = RepairLoop(ocs, spare_south_ports=spares)
    for d in range(damaged_spares):
        loop.degrade_south_port(spares[d], loop.requalify_fail_db + 1.5)
    for j in range(num_circuits):
        ocs.connect(j, j)
    pinches = injector.schedule_poisson(
        FaultKind.FIBER_PINCH,
        [circuit_target(0, j, j) for j in range(num_circuits)],
        pinch_rate_per_s,
        horizon_s,
        severity=pinch_db,
    )

    unrepairable: set = set()
    capacity_errors = 0
    last_error: Optional[CapacityError] = None
    timeline: List[Tuple[float, float]] = [(0.0, 1.0)]
    while injector.num_pending:
        event = injector.pop_next()
        assert event is not None
        # Target "ocs-0/N<j>-S<j>": the pinch lands on the fiber behind
        # north port j wherever its circuit currently terminates.
        tail = event.target.partition("/")[2]
        north = int(tail.split("-", 1)[0][1:])
        south = ocs.state.south_of(north)
        if south is None:
            continue  # circuit stuck unrepaired and torn down; pinch moot
        loop.degrade_circuit(north, south, event.severity)
        for anomaly in loop.scan():
            if anomaly.circuit[0] in unrepairable:
                continue
            try:
                loop.remediate(anomaly)
            except CapacityError as err:
                capacity_errors += 1
                last_error = err
                unrepairable.add(anomaly.circuit[0])
        healthy = (num_circuits - len(unrepairable)) / num_circuits
        timeline.append((event.time_s, healthy))

    metrics = {
        "circuits": float(num_circuits),
        "pinches": float(pinches),
        "repairs": float(len(loop.actions)),
        "capacity_errors": float(capacity_errors),
        "unrepairable": float(len(unrepairable)),
        "attempted_spares_last": float(
            len(last_error.attempted_spares) if last_error is not None else 0
        ),
    }
    return ChaosReport(
        scenario="repair_race",
        seed=seed,
        timeline=tuple(timeline),
        metrics=metrics,
        schedule=injector.delivered(),
    )


# ---------------------------------------------------------------------- #
# Scenario: controller crash sweep over a 3-OCS reconfiguration
# ---------------------------------------------------------------------- #


def controller_crash_recovery(
    seed: int = 0,
    num_ocses: int = 3,
    links_per_ocs: int = 6,
    moved_per_ocs: int = 4,
    obs=None,
) -> ChaosReport:
    """Kill the durable controller at every step of a reconfiguration.

    One WAL-backed controller (:mod:`repro.control.journal`) establishes
    ``links_per_ocs`` links on each of ``num_ocses`` switches, then runs
    a multi-OCS reconfiguration moving ``moved_per_ocs`` circuits per
    switch.  The drill sweeps a deterministic crash through **every**
    instrumented step of that transaction -- each WAL append (including
    the one the crash tears) and each per-switch hardware apply.  After
    each crash a fresh controller recovers from the surviving WAL bytes
    and the hardware the dead one left behind; the run checks that

    - :meth:`~repro.core.fabric_manager.FabricManager.verify_links` is
      empty after recovery (intent == hardware),
    - the anti-entropy :class:`~repro.control.reconcile.Reconciler`
      converges with nothing to do,
    - every crash *after* the commit marker recovers to the one
      rolled-forward state digest, every crash *before* it to the one
      rolled-back digest -- byte-determinism across all crash points.

    Goodput is the fraction of links realized after each recovery (1.0
    at every point, or the drill failed); metrics count the crash
    points and distinct digests.

    Pass an :class:`~repro.obs.Observability` bundle as ``obs`` to trace
    the whole sweep (transaction, crash, recovery, reconcile spans) --
    the report and its digest are identical with or without it.
    """
    from repro.control import CrashSchedule, DurableController, Reconciler, recover
    from repro.core.crossconnect import CrossConnectMap
    from repro.core.errors import ControllerCrash
    from repro.core.fabric_manager import FabricManager
    from repro.core.ids import LinkId
    from repro.ocs.palomar import PalomarOcs

    if num_ocses < 1 or links_per_ocs < 1 or not 0 < moved_per_ocs <= links_per_ocs:
        raise ConfigurationError(
            "need >=1 OCS, >=1 link, and 0 < moved_per_ocs <= links_per_ocs"
        )
    injector = FaultInjector(seed=seed, obs=obs)

    def build() -> FabricManager:
        mgr = FabricManager(obs=obs)
        for i in range(num_ocses):
            mgr.add_switch(OcsId(i), PalomarOcs.build(name=f"crash-ocs{i}", seed=seed + i))
        return mgr

    def targets_for(mgr: FabricManager) -> Dict[OcsId, CrossConnectMap]:
        out: Dict[OcsId, CrossConnectMap] = {}
        for i in range(num_ocses):
            sw = mgr.switch(OcsId(i))
            circuits = dict(sw.state.circuits)
            moved = {
                n: n + 2 * links_per_ocs for n in sorted(circuits)[:moved_per_ocs]
            }
            merged = {n: s for n, s in circuits.items() if n not in moved}
            merged.update(moved)
            out[OcsId(i)] = CrossConnectMap.from_circuits(sw.radix, merged)
        return out

    # Straight-line run: the WAL bytes after adoption, and the digest a
    # committed transaction must recover to.
    mgr0 = build()
    ctl0 = DurableController(manager=mgr0, obs=obs)
    for i in range(num_ocses):
        for n in range(links_per_ocs):
            ctl0.establish(LinkId(f"lk-{i}-{n}"), OcsId(i), n, n + links_per_ocs)
    wal_after_adopt = bytes(ctl0.wal.storage)
    ctl0.reconfigure(targets_for(mgr0))
    committed_digest = ctl0.state_digest()
    total_links = num_ocses * links_per_ocs

    timeline: List[Tuple[float, float]] = [(0.0, 1.0)]
    forward_digests: set = set()
    rollback_digests: set = set()
    recoveries_ok = 0
    reconciles_converged = 0
    tail_bytes_total = 0
    step = 1
    while True:
        mgr = build()
        storage = bytearray(wal_after_adopt)
        ctl, _ = recover(mgr, storage, obs=obs)
        crash = CrashSchedule(at_step=step)
        ctl.crash = crash
        ctl.wal.crash = crash
        try:
            ctl.reconfigure(targets_for(mgr))
        except ControllerCrash:
            injector.schedule(
                float(step), FaultKind.CONTROLLER_CRASH, controller_target(0),
                severity=float(step),
            )
            injector.pop_next()
            _, report = recover(mgr, storage, obs=obs)
            surviving = total_links - len(mgr.verify_links())
            if surviving == total_links:
                recoveries_ok += 1
            if Reconciler(manager=mgr, drop_orphans=False, obs=obs).run().converged:
                reconciles_converged += 1
            tail_bytes_total += report.tail_bytes_dropped
            if report.open_txn == "rolled-forward":
                forward_digests.add(report.state_digest)
            else:
                rollback_digests.add(report.state_digest)
            timeline.append((float(step), surviving / total_links))
            step += 1
            continue
        break

    crash_points = step - 1
    metrics = {
        "crash_points": float(crash_points),
        "recoveries_ok": float(recoveries_ok),
        "reconciles_converged": float(reconciles_converged),
        "forward_digests": float(len(forward_digests)),
        "rollback_digests": float(len(rollback_digests)),
        "forward_matches_committed": float(
            forward_digests in ({committed_digest}, set())
        ),
        "tail_bytes_dropped": float(tail_bytes_total),
        "deterministic": float(
            len(forward_digests) <= 1 and len(rollback_digests) <= 1
        ),
    }
    return ChaosReport(
        scenario="controller_crash_recovery",
        seed=seed,
        timeline=tuple(timeline),
        metrics=metrics,
        schedule=injector.delivered(),
    )


# ---------------------------------------------------------------------- #
# Scenario: replicated control plane under a partition/skew/crash storm
# ---------------------------------------------------------------------- #


def partition_failover(
    seed: int = 0,
    num_replicas: int = 3,
    horizon_s: float = 60.0,
    storm_period_s: float = 6.0,
    submit_gap_s: float = 0.25,
    lease_s: float = 1.0,
    skew_rate_per_s: float = 0.01,
    obs=None,
) -> ChaosReport:
    """Partition/skew/crash storm against the replicated control plane.

    A :class:`~repro.control.replication.ReplicationGroup` of
    ``num_replicas`` controllers serves a steady client stream (one
    retarget every ``submit_gap_s``) while a rolling storm, one cycle
    per ``storm_period_s``, (a) crashes the cycle's victim replica,
    (b) maroons a second replica behind a network partition, and
    (c) skews a third replica's clock -- the three new failure modes of
    the HA control plane, all driven through one injector timeline.  A
    background Poisson stream of additional clock-skew events adds
    seed-dependent jitter on top of the deterministic storm.

    The client mirrors the serving layer's breaker edge: when a submit
    bounces (dead or deposed leader, lost quorum) it sweeps the
    client-reachable live replicas for one election attempt and retries
    once.  Goodput at each tick is the commit indicator, so the
    timeline shows the election gaps carved by each storm cycle.

    After the storm clears, the run checks the invariants the
    replication layer exists to provide:

    - ``committed_ops_lost == 0``: every client-acked commit is in the
      surviving log, byte-for-byte (fencing kept deposed leaders out);
    - ``digest_match == 1``: the final fabric state digest equals a
      from-scratch serial replay of the committed log;
    - at most one leader per epoch (the group raises internally on a
      violation, so finishing at all certifies it; ``epochs`` counts
      the distinct epochs the storm forced).
    """
    from repro.control.replication import ReplicationGroup
    from repro.core.errors import NotLeaderError, QuorumError
    from repro.core.fabric_manager import FabricManager, SimpleSwitch

    if num_replicas < 3 or num_replicas % 2 == 0:
        raise ConfigurationError("need an odd replica group of 3+")
    if horizon_s <= 0 or storm_period_s <= 0 or submit_gap_s <= 0 or lease_s <= 0:
        raise ConfigurationError("horizon, storm period, gap, lease must be > 0")

    injector = FaultInjector(seed=seed, obs=obs)

    def build() -> FabricManager:
        mgr = FabricManager(obs=obs)
        mgr.add_switch(OcsId(0), SimpleSwitch(16))
        return mgr

    group = ReplicationGroup(
        num_replicas=num_replicas,
        manager_factory=build,
        lease_s=lease_s,
        obs=obs,
    )
    group.elect(0, 0.0)
    group.attach_faults(injector)

    # The deterministic storm: victim/marooned/skewed roles rotate each
    # cycle so every replica sees every failure mode.
    storm_cycles = 0
    t = storm_period_s / 2.0
    while t + storm_period_s * 0.9 < horizon_s:
        cycle = storm_cycles
        victim = cycle % num_replicas
        marooned = (cycle + 1) % num_replicas
        skewed = (cycle + 2) % num_replicas
        injector.schedule(
            t, FaultKind.CONTROLLER_CRASH, controller_target(victim),
            severity=1.0, clear_after_s=storm_period_s * 0.4,
        )
        rest = sorted(set(range(num_replicas)) - {marooned})
        injector.schedule(
            t + storm_period_s * 0.25, FaultKind.NETWORK_PARTITION,
            network_target("control"),
            params=(partition_groups_param([[marooned], rest]),),
            clear_after_s=storm_period_s * 0.3,
        )
        injector.schedule(
            t + storm_period_s * 0.5, FaultKind.CLOCK_SKEW,
            controller_target(skewed),
            severity=2.0 if cycle % 2 == 0 else -2.0,
            clear_after_s=storm_period_s * 0.4,
        )
        storm_cycles += 1
        t += storm_period_s
    # Seed-dependent background skew on top of the deterministic storm.
    extra_skews = injector.schedule_poisson(
        FaultKind.CLOCK_SKEW,
        [controller_target(i) for i in range(num_replicas)],
        skew_rate_per_s,
        horizon_s,
        severity=1.5,
        clear_after_s=2.0 * lease_s,
    )

    def submit_with_failover(payload: Dict[str, object], now_s: float,
                             token: str) -> bool:
        # Mirrors FabricService._gate_attempt: a bounced submit earns one
        # election sweep over the client-reachable live replicas, then
        # one retry against the new leader.
        for _ in range(2):
            try:
                group.submit(payload, now_s, token=token)
                return True
            except (NotLeaderError, QuorumError):
                pass
            elected = False
            for i in range(num_replicas):
                node = group.nodes[i]
                if not node.up or not group.client_reachable(i):
                    continue
                try:
                    group.elect(i, now_s)
                    elected = True
                    break
                except QuorumError:
                    continue
            if not elected:
                return False
        return False

    offered = 0
    committed = 0
    timeline: List[Tuple[float, float]] = [(0.0, 1.0)]
    now = 0.0
    k = 0
    while now + submit_gap_s <= horizon_s:
        now = round(now + submit_gap_s, 9)
        injector.advance_to(now)
        payload = {
            "op": "retarget",
            "changes": [[0, k % 8, 8 + ((k // 8 + k) % 8)]],
        }
        offered += 1
        ok = submit_with_failover(payload, now, token=f"op-{k}")
        committed += 1 if ok else 0
        timeline.append((now, 1.0 if ok else 0.0))
        k += 1

    # Let the last clears land, settle with a final barrier commit, then
    # close any open outage window before accounting.
    settle_s = horizon_s + storm_period_s
    injector.advance_to(settle_s)
    settled = submit_with_failover({"op": "noop"}, settle_s, token="settle")
    group.finalize_outage(settle_s)
    timeline.append((settle_s, 1.0 if settled else 0.0))

    metrics = {
        "replicas": float(num_replicas),
        "storm_cycles": float(storm_cycles),
        "extra_skews": float(extra_skews),
        "ops_offered": float(offered),
        "ops_committed": float(committed),
        "goodput": committed / offered if offered else 1.0,
        "elections": float(group.elections),
        "election_failures": float(group.election_failures),
        "fencing_rejections": float(group.fencing_rejections),
        "lease_refusals": float(group.lease_refusals),
        "epochs": float(len(group.epoch_leaders())),
        "committed_ops_lost": float(group.committed_ops_lost()),
        "digest_match": float(group.state_digest() == group.replay_digest()),
        "settled": float(settled),
        "availability": group.availability(settle_s),
    }
    return ChaosReport(
        scenario="partition_failover",
        seed=seed,
        timeline=tuple(timeline),
        metrics=metrics,
        schedule=injector.delivered(),
    )


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #

Scenario = Callable[..., ChaosReport]

SCENARIOS: Dict[str, Scenario] = {
    "single_ocs_loss": single_ocs_loss,
    "correlated_hv_batch": correlated_hv_batch,
    "rolling_transceiver_flaps": rolling_transceiver_flaps,
    "repair_race": repair_race,
    "controller_crash_recovery": controller_crash_recovery,
    "partition_failover": partition_failover,
}

#: Fast parameterizations for CI smoke runs (< 30 s altogether).
SMOKE_KWARGS: Dict[str, Dict[str, float]] = {
    "single_ocs_loss": {"horizon_hours": 2000.0},
    "correlated_hv_batch": {"num_ocses": 2, "circuits_per_ocs": 2},
    "rolling_transceiver_flaps": {"num_links": 4, "horizon_s": 300.0},
    "repair_race": {"num_circuits": 4, "horizon_s": 300.0},
    "controller_crash_recovery": {"num_ocses": 2, "links_per_ocs": 4},
    "partition_failover": {"horizon_s": 24.0},
}


def run_scenario(name: str, seed: int = 0, **kwargs) -> ChaosReport:
    """Run a registered scenario by name."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}"
        ) from None
    return scenario(seed=seed, **kwargs)


def run_smoke(seed: int = 0) -> Dict[str, ChaosReport]:
    """Run every scenario with its fast smoke parameters (for CI)."""
    return {
        name: run_scenario(name, seed=seed, **SMOKE_KWARGS[name])
        for name in sorted(SCENARIOS)
    }
