"""Cross-layer fault injection, resilient control-plane, chaos drills.

The paper's availability story lives in the *interaction* of layers:
an HV-driver FRU failure drops circuits (§3.2.2), the control plane
re-lands them, the topology reconverges, and the job survives (§4.2.2,
Fig 15).  This package provides the shared substrate those layers plug
into:

- :mod:`repro.faults.events` -- the unified :class:`FaultEvent`
  taxonomy and deterministic seeded schedules;
- :mod:`repro.faults.injector` -- the discrete-event timeline existing
  simulators subscribe to;
- :mod:`repro.faults.resilience` -- transactional cross-connect
  programming with bounded retry, exponential backoff + jitter, and
  exact rollback;
- :mod:`repro.faults.chaos` -- end-to-end scenario drills emitting
  goodput/availability timelines cross-checked against the analytic
  models.
"""

from repro.faults.ensemble import (
    ChaosTask,
    chaos_ensemble,
    chaos_ensemble_serial,
    ensemble_digest,
)
from repro.faults.events import FaultEvent, FaultKind, schedule_digest
from repro.faults.injector import FaultInjector
from repro.faults.resilience import (
    ControlPlaneFaults,
    ResilientReconfigurer,
    RetryPolicy,
    TransactionResult,
)

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultInjector",
    "ControlPlaneFaults",
    "ResilientReconfigurer",
    "RetryPolicy",
    "TransactionResult",
    "schedule_digest",
    "ChaosTask",
    "chaos_ensemble",
    "chaos_ensemble_serial",
    "ensemble_digest",
]
