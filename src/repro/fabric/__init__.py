"""Lightwave fabrics: OCSes + endpoints + fiber plant as one system.

Assembles the device models of :mod:`repro.ocs` and :mod:`repro.optics`
under the :mod:`repro.core.fabric_manager` control plane, adding physical
wiring records (:mod:`repro.fabric.wiring`), end-to-end optical-path
accounting (:mod:`repro.fabric.path`), and fabric-wide verification
(:mod:`repro.fabric.verification`).
"""

from repro.fabric.wiring import Attachment, WiringPlan
from repro.fabric.lightwave import LightwaveFabric
from repro.fabric.path import OpticalPath, PathElement
from repro.fabric.verification import FabricVerifier, LinkHealth
from repro.fabric.qualification import LinkQualifier, QualificationGrade, QualificationReport
from repro.fabric.repair import RepairAction, RepairLoop

__all__ = [
    "Attachment",
    "WiringPlan",
    "LightwaveFabric",
    "OpticalPath",
    "PathElement",
    "FabricVerifier",
    "LinkHealth",
    "LinkQualifier",
    "QualificationGrade",
    "QualificationReport",
    "RepairLoop",
    "RepairAction",
]
