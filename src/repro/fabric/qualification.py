"""Spare-port link qualification.

Appendix A: Palomar ships 136x136 ports of which 8 are reserved "for
link testing and repairs".  Before a newly landed fiber carries
production traffic, the control plane cross-connects it to a spare port
that hosts test instrumentation (an optical power meter / loopback) and
grades the measured loss against the link budget -- the per-rack
verification step behind the §4.2.3 incremental-deployment story.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import CapacityError, ConfigurationError
from repro.ocs.palomar import PALOMAR_RADIX, PALOMAR_USABLE_PORTS, PalomarOcs


class QualificationGrade(enum.Enum):
    PASS = "pass"
    MARGINAL = "marginal"
    FAIL = "fail"


@dataclass(frozen=True)
class QualificationReport:
    """Result of testing one production port against a spare."""

    port: int
    spare: int
    measured_loss_db: float
    expected_loss_db: float
    grade: QualificationGrade

    @property
    def excess_loss_db(self) -> float:
        return self.measured_loss_db - self.expected_loss_db


@dataclass
class LinkQualifier:
    """Drives spare-port qualification on one Palomar OCS.

    Args:
        ocs: the switch under test.
        spare_ports: south-side ports reserved for instrumentation
            (defaults to the top 8, matching 128 usable + 8 spares).
        pass_margin_db / fail_margin_db: grading thresholds on excess
            loss over the optics model's expectation (pigtail damage,
            dirty connectors show up here).
    """

    ocs: PalomarOcs
    spare_ports: Tuple[int, ...] = tuple(range(PALOMAR_USABLE_PORTS, PALOMAR_RADIX))
    pass_margin_db: float = 0.5
    fail_margin_db: float = 1.5
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    reports: List[QualificationReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.spare_ports:
            raise ConfigurationError("need at least one spare port")
        for p in self.spare_ports:
            if not 0 <= p < self.ocs.radix:
                raise ConfigurationError(f"spare port {p} out of range")
        if not 0 < self.pass_margin_db < self.fail_margin_db:
            raise ConfigurationError("need 0 < pass margin < fail margin")
        self._rng = np.random.default_rng(self.seed)

    def _free_spare(self) -> int:
        for spare in self.spare_ports:
            if self.ocs.state.north_of(spare) is None:
                return spare
        raise CapacityError("all spare ports are busy")

    def qualify(
        self, north_port: int, plant_excess_db: Optional[float] = None
    ) -> QualificationReport:
        """Test the fiber on ``north_port`` against a spare south port.

        ``plant_excess_db`` injects a known plant defect for testing; by
        default a small random plant variation is sampled (most fibers
        are clean, a tail is dirty).  The circuit is created, measured,
        and torn down; the production port is left untouched otherwise.
        """
        if self.ocs.state.south_of(north_port) is not None:
            raise ConfigurationError(
                f"north port {north_port} carries a production circuit"
            )
        spare = self._free_spare()
        self.ocs.connect(north_port, spare)
        try:
            expected = self.ocs.insertion_loss_db(north_port, spare)
            if plant_excess_db is None:
                # Clean plant mostly; occasional dirty connector.
                plant_excess_db = float(self._rng.gamma(0.6, 0.25))
            measured = expected + plant_excess_db
        finally:
            self.ocs.disconnect(north_port)
        excess = measured - expected
        if excess <= self.pass_margin_db:
            grade = QualificationGrade.PASS
        elif excess <= self.fail_margin_db:
            grade = QualificationGrade.MARGINAL
        else:
            grade = QualificationGrade.FAIL
        report = QualificationReport(
            port=north_port,
            spare=spare,
            measured_loss_db=measured,
            expected_loss_db=expected,
            grade=grade,
        )
        self.reports.append(report)
        return report

    def qualify_ports(
        self, ports: Sequence[int]
    ) -> Dict[QualificationGrade, List[int]]:
        """Qualify a batch (e.g. a newly landed cube's 48 connections)."""
        out: Dict[QualificationGrade, List[int]] = {g: [] for g in QualificationGrade}
        for port in ports:
            report = self.qualify(port)
            out[report.grade].append(port)
        return out

    @property
    def yield_fraction(self) -> float:
        """Fraction of qualified ports graded PASS."""
        if not self.reports:
            return 1.0
        passed = sum(1 for r in self.reports if r.grade is QualificationGrade.PASS)
        return passed / len(self.reports)
