"""Fabric-wide verification: walk every link and grade its optical health.

The paper's modular-deployment story (§4.2.3) rests on verifying each
building block as it lands; this module provides the fabric-level check:
for every logical link, confirm the circuit exists, the path loss closes
the budget, and the estimated pre-FEC BER clears the KP4 threshold with
the configured margin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.ids import LinkId
from repro.fabric.lightwave import LightwaveFabric
from repro.optics.fec import KP4_BER_THRESHOLD


class LinkHealth(enum.Enum):
    """Verification grade for one link."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"  # works but with thin margin
    FAILED = "failed"  # circuit missing or budget does not close


@dataclass(frozen=True)
class LinkReport:
    """Verification result for one logical link."""

    link_id: LinkId
    health: LinkHealth
    loss_db: float
    margin_db: float
    ber: float
    detail: str = ""


@dataclass
class FabricVerifier:
    """Runs the verification sweep over a :class:`LightwaveFabric`.

    Args:
        min_margin_db: margin below which a link is graded DEGRADED.
        max_ber: pre-FEC BER above which a link is graded FAILED.
    """

    fabric: LightwaveFabric
    min_margin_db: float = 1.5
    max_ber: float = KP4_BER_THRESHOLD

    def verify_link(self, a: str, b: str) -> LinkReport:
        """Grade one endpoint pair's link."""
        link_id = self.fabric.link_name(a, b)
        missing = self.fabric.manager.verify_links()
        if link_id in missing:
            return LinkReport(link_id, LinkHealth.FAILED, 0.0, 0.0, 1.0, "circuit missing")
        path = self.fabric.path_for_link(a, b)
        ber = path.ber()
        margin = path.margin_db()
        if ber > self.max_ber or margin < 0:
            health = LinkHealth.FAILED
            detail = f"ber {ber:.2e} / margin {margin:.2f} dB"
        elif margin < self.min_margin_db:
            health = LinkHealth.DEGRADED
            detail = f"thin margin {margin:.2f} dB"
        else:
            health = LinkHealth.HEALTHY
            detail = ""
        return LinkReport(link_id, health, path.total_loss_db, margin, ber, detail)

    def verify_all(self) -> List[LinkReport]:
        """Grade every established link, sorted by link id."""
        reports = []
        for link in self.fabric.manager.links:
            a, b = str(link.link_id).split("--", 1)
            reports.append(self.verify_link(a, b))
        return reports

    def summary(self) -> Tuple[int, int, int]:
        """(healthy, degraded, failed) counts over all links."""
        reports = self.verify_all()
        healthy = sum(1 for r in reports if r.health is LinkHealth.HEALTHY)
        degraded = sum(1 for r in reports if r.health is LinkHealth.DEGRADED)
        failed = sum(1 for r in reports if r.health is LinkHealth.FAILED)
        return healthy, degraded, failed
