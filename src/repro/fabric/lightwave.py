"""The LightwaveFabric: devices + wiring + control plane in one object.

This is the user-facing assembly for datacenter-style fabrics: register
endpoints and Palomar OCSes, wire them (or use a canned wiring plan), then
create and reconfigure endpoint-to-endpoint links by name.  The TPU
superpod (:mod:`repro.tpu.superpod`) builds its own specialized wiring on
the same primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import CapacityError, ConfigurationError, TopologyError
from repro.core.fabric_manager import FabricManager, SwitchLike
from repro.core.ids import LinkId, OcsId
from repro.core.topology import Endpoint
from repro.fabric.path import OpticalPath
from repro.fabric.wiring import Attachment, WiringPlan
from repro.faults.resilience import (
    ControlPlaneFaults,
    ResilientReconfigurer,
    RetryPolicy,
    TransactionResult,
)
from repro.ocs.palomar import PalomarOcs
from repro.optics.transceiver import TransceiverSpec, transceiver


@dataclass
class LightwaveFabric:
    """A fabric of OCSes interconnecting named endpoints.

    Args:
        default_spec: transceiver used for path/BER estimates when an
            endpoint does not override it.
    """

    manager: FabricManager = field(default_factory=FabricManager)
    wiring: WiringPlan = field(default_factory=WiringPlan)
    default_spec: TransceiverSpec = field(
        default_factory=lambda: transceiver("bidi_2x400g_cwdm4")
    )
    _endpoints: Dict[str, Endpoint] = field(default_factory=dict, repr=False)
    _palomars: Dict[OcsId, PalomarOcs] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #

    def add_ocs(self, ocs_id: OcsId, device: Optional[PalomarOcs] = None) -> PalomarOcs:
        """Register an OCS (building a seeded Palomar when none is given)."""
        device = device or PalomarOcs.build(name=str(ocs_id), seed=ocs_id.index)
        self.manager.add_switch(ocs_id, device)
        self._palomars[ocs_id] = device
        return device

    def add_endpoint(self, name: str, num_ports: int) -> Endpoint:
        """Register an endpoint with ``num_ports`` fiber ports."""
        if name in self._endpoints:
            raise ConfigurationError(f"endpoint {name!r} already registered")
        ep = Endpoint(name, num_ports)
        self._endpoints[name] = ep
        return ep

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise TopologyError(f"unknown endpoint {name!r}") from None

    def ocs(self, ocs_id: OcsId) -> PalomarOcs:
        try:
            return self._palomars[ocs_id]
        except KeyError:
            raise TopologyError(f"unknown OCS {ocs_id}") from None

    @property
    def endpoint_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def wire(
        self, endpoint: str, endpoint_port: int, ocs_id: OcsId, side: str, ocs_port: int
    ) -> Attachment:
        """Patch one endpoint fiber onto an OCS port."""
        device = self.ocs(ocs_id)
        if not 0 <= ocs_port < device.radix:
            raise ConfigurationError(
                f"{ocs_id}: port {ocs_port} out of range [0, {device.radix})"
            )
        ep = self.endpoint(endpoint)
        att = Attachment(endpoint, endpoint_port, ocs_id, side, ocs_port)
        self.wiring.add(att)
        ep.attach(endpoint_port, f"{ocs_id}/{side}{ocs_port}")
        return att

    def wire_full_mesh(self, ocs_id: OcsId) -> None:
        """Wire every registered endpoint to one OCS for any-to-any links.

        Endpoint ``i``'s port 0 lands on north port ``i`` and port 1 on
        south port ``i``.
        """
        names = self.endpoint_names
        device = self.ocs(ocs_id)
        if len(names) > device.radix:
            raise CapacityError(
                f"{len(names)} endpoints exceed {ocs_id} radix {device.radix}"
            )
        for i, name in enumerate(names):
            self.wire(name, 0, ocs_id, "N", i)
            self.wire(name, 1, ocs_id, "S", i)

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #

    def link_name(self, a: str, b: str) -> LinkId:
        """Canonical link id for the pair (order-independent)."""
        return LinkId(f"{min(a, b)}--{max(a, b)}")

    def connect(self, a: str, b: str) -> LinkId:
        """Create a circuit between two endpoints wired to a common OCS.

        Uses endpoint ``a``'s north-side attachment and ``b``'s south-side
        attachment on the first OCS carrying both.
        """
        att_a, att_b = self._find_pair(a, b)
        link_id = self.link_name(a, b)
        self.manager.establish(link_id, att_a.ocs, att_a.ocs_port, att_b.ocs_port)
        return link_id

    def disconnect(self, a: str, b: str) -> None:
        """Tear down the circuit between two endpoints."""
        self.manager.teardown(self.link_name(a, b))

    # ------------------------------------------------------------------ #
    # Resilient transactions
    # ------------------------------------------------------------------ #

    def transaction(
        self,
        policy: Optional[RetryPolicy] = None,
        faults: Optional[ControlPlaneFaults] = None,
        seed: int = 0,
    ) -> ResilientReconfigurer:
        """A resilient reconfigurer bound to this fabric's manager.

        Programming through it retries per-OCS under injected RPC
        timeouts / stuck mirrors, backs off with seeded jitter, and
        rolls back to the exact pre-transaction state on exhaustion.
        """
        return ResilientReconfigurer(
            manager=self.manager,
            policy=policy or RetryPolicy(),
            faults=faults,
            seed=seed,
        )

    def connect_all(
        self,
        pairs: Sequence[Tuple[str, str]],
        policy: Optional[RetryPolicy] = None,
        faults: Optional[ControlPlaneFaults] = None,
        seed: int = 0,
    ) -> Tuple[TransactionResult, Tuple[LinkId, ...]]:
        """Create several endpoint links in ONE resilient transaction.

        All circuits land atomically: under injected control-plane
        faults either every pair is connected (after retries) or none is
        -- and links unrelated to the batch never glitch, even mid-retry.
        Returns the transaction result and the created link ids.
        """
        targets: Dict[OcsId, CrossConnectMap] = {}
        planned: List[Tuple[LinkId, OcsId, int, int]] = []
        for a, b in pairs:
            link_id = self.link_name(a, b)
            att_a, att_b = self._find_pair(a, b)
            target = targets.get(att_a.ocs)
            if target is None:
                target = self.manager.switch(att_a.ocs).state.copy()
                targets[att_a.ocs] = target
            target.connect(att_a.ocs_port, att_b.ocs_port)
            planned.append((link_id, att_a.ocs, att_a.ocs_port, att_b.ocs_port))
        result = self.transaction(policy, faults, seed).reconfigure(targets)
        link_ids = []
        for link_id, ocs_id, north, south in planned:
            self.manager.adopt_link(link_id, ocs_id, north, south)
            link_ids.append(link_id)
        return result, tuple(link_ids)

    def _find_pair(self, a: str, b: str) -> Tuple[Attachment, Attachment]:
        """Locate a north attachment of ``a`` and south attachment of ``b``
        on the same OCS."""
        a_atts = [x for x in self.wiring.attachments if x.endpoint == a and x.side == "N"]
        b_atts = [x for x in self.wiring.attachments if x.endpoint == b and x.side == "S"]
        for att_a in a_atts:
            for att_b in b_atts:
                if att_a.ocs == att_b.ocs:
                    return att_a, att_b
        raise TopologyError(
            f"no common OCS wiring found for {a} (north) and {b} (south)"
        )

    # ------------------------------------------------------------------ #
    # Optics
    # ------------------------------------------------------------------ #

    def path_for_link(self, a: str, b: str) -> OpticalPath:
        """Physics-grounded optical path of an established link."""
        link = self.manager.link(self.link_name(a, b))
        device = self.ocs(link.ocs)
        return OpticalPath.through_ocs(
            spec=self.default_spec,
            ocs_insertion_loss_db=device.insertion_loss_db(link.north, link.south),
            ocs_return_loss_db=device.optics.worst_path_reflection_db(
                link.north, link.south
            ),
        )

    def total_power_w(self) -> float:
        """Aggregate OCS power draw of the fabric."""
        return sum(d.power_w() for d in self._palomars.values())
