"""The remediation loop: telemetry anomaly -> spare-port repair.

§3.2.2's operational story, closed into a loop: the monitoring plane
watches per-circuit insertion loss; when a circuit drifts (pinched fiber,
degrading collimator) the control plane moves it to a spare port pair --
re-qualifying the spare first -- without touching any other circuit.
This is the field-repair path that keeps chassis availability > 99.98%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import CapacityError, ConfigurationError
from repro.ocs.palomar import PALOMAR_RADIX, PALOMAR_USABLE_PORTS, PalomarOcs
from repro.ocs.telemetry import Anomaly


@dataclass(frozen=True)
class RepairAction:
    """One executed remediation."""

    circuit: Tuple[int, int]
    new_circuit: Tuple[int, int]
    reason: str
    loss_before_db: float
    loss_after_db: float

    @property
    def improvement_db(self) -> float:
        return self.loss_before_db - self.loss_after_db


@dataclass
class RepairLoop:
    """Watches one OCS's circuits and remediates anomalies.

    The loop treats the south-side spare range as the repair pool: a
    degraded circuit ``(n, s)`` is re-landed as ``(n, spare)`` -- in the
    real plant a technician moves the endpoint's fiber to the spare port;
    here the optics model gives the new path its own (healthy) loss.

    Args:
        ocs: the switch under management.
        spare_south_ports: repair pool (defaults to the 8 reserved ports).
    """

    ocs: PalomarOcs
    spare_south_ports: List[int] = field(
        default_factory=lambda: list(range(PALOMAR_USABLE_PORTS, PALOMAR_RADIX))
    )
    #: A spare whose prospective path shows more than this much excess
    #: loss over the optics model fails re-qualification and is skipped.
    requalify_fail_db: float = 1.5
    actions: List[RepairAction] = field(default_factory=list)
    _degradation_db: Dict[Tuple[int, int], float] = field(default_factory=dict, repr=False)
    _south_degradation_db: Dict[int, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for p in self.spare_south_ports:
            if not 0 <= p < self.ocs.radix:
                raise ConfigurationError(f"spare port {p} out of range")
        if self.requalify_fail_db <= 0:
            raise ConfigurationError("requalification margin must be positive")

    # ------------------------------------------------------------------ #
    # Plant degradation (failure injection for tests/benches)
    # ------------------------------------------------------------------ #

    def degrade_circuit(self, north: int, south: int, extra_db: float) -> None:
        """Inject plant degradation on a live circuit (e.g. pinched fiber)."""
        if extra_db < 0:
            raise ConfigurationError("degradation must be non-negative")
        if self.ocs.state.south_of(north) != south:
            raise ConfigurationError(f"no circuit N{north} -> S{south}")
        self._degradation_db[(north, south)] = (
            self._degradation_db.get((north, south), 0.0) + extra_db
        )

    def degrade_south_port(self, south: int, extra_db: float) -> None:
        """Inject plant damage on a south pigtail (live or spare).

        Unlike :meth:`degrade_circuit` this needs no live circuit: it
        models a damaged spare that will fail re-qualification when the
        repair loop tries to land a circuit on it.
        """
        if extra_db < 0:
            raise ConfigurationError("degradation must be non-negative")
        if not 0 <= south < self.ocs.radix:
            raise ConfigurationError(f"south port {south} out of range")
        self._south_degradation_db[south] = (
            self._south_degradation_db.get(south, 0.0) + extra_db
        )

    def measured_loss_db(self, north: int, south: int) -> float:
        """Current loss including any injected degradation."""
        return (
            self.ocs.insertion_loss_db(north, south)
            + self._degradation_db.get((north, south), 0.0)
            + self._south_degradation_db.get(south, 0.0)
        )

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def scan(self) -> List[Anomaly]:
        """Feed current measurements to telemetry; returns fired anomalies."""
        fired = []
        for north, south in sorted(self.ocs.state.circuits):
            anomaly = self.ocs.telemetry.observe_loss(
                north, south, self.measured_loss_db(north, south)
            )
            if anomaly is not None:
                fired.append(anomaly)
        return fired

    def port_qualifies(self, north: int, south: int) -> bool:
        """Re-qualify a prospective circuit path (§4.2.3 style).

        The path is graded before carrying production traffic: excess
        loss over the optics model's expectation (i.e. plant damage on
        the south pigtail) beyond ``requalify_fail_db`` fails it.  Used
        both for spares about to take traffic and for original ports a
        quarantined circuit wants to return to.
        """
        excess = self.measured_loss_db(north, south) - self.ocs.insertion_loss_db(
            north, south
        )
        return excess <= self.requalify_fail_db

    # Backwards-compatible internal alias.
    _spare_qualifies = port_qualifies

    def _select_spare(self, north: int, south: int) -> int:
        """First free spare that passes re-qualification.

        Raises :class:`~repro.core.errors.CapacityError` carrying the
        degraded circuit and every spare that was attempted (busy or
        failed re-qualification) when the pool cannot serve the repair.
        """
        attempted: List[int] = []
        for spare in self.spare_south_ports:
            attempted.append(spare)
            if self.ocs.state.north_of(spare) is not None:
                continue
            if self._spare_qualifies(north, spare):
                return spare
        raise CapacityError(
            f"no usable spare for degraded circuit N{north}<->S{south}: "
            f"attempted {attempted if attempted else 'no'} spare port(s)",
            degraded_circuit=(north, south),
            attempted_spares=attempted,
        )

    def move_circuit(self, north: int, to_south: int, reason: str) -> RepairAction:
        """Re-land the circuit on ``north`` at ``to_south`` and record it.

        The endpoint fiber moves with the circuit: plant degradation on
        the old south pigtail stays behind.
        """
        south = self.ocs.state.south_of(north)
        if south is None:
            raise ConfigurationError(f"north port {north} has no circuit to move")
        if self.ocs.state.north_of(to_south) is not None:
            raise ConfigurationError(f"south port {to_south} is busy")
        before = self.measured_loss_db(north, south)
        self.ocs.disconnect(north)
        self.ocs.connect(north, to_south)
        action = RepairAction(
            circuit=(north, south),
            new_circuit=(north, to_south),
            reason=reason,
            loss_before_db=before,
            loss_after_db=self.measured_loss_db(north, to_south),
        )
        self.actions.append(action)
        return action

    def preemptive_move(self, north: int, reason: str = "quarantine") -> RepairAction:
        """Steer a (still-working) circuit to a re-qualified spare.

        The health watchdog's quarantine path: unlike :meth:`remediate`
        no anomaly needs to have fired -- the circuit is moved before it
        degrades into one.  Raises :class:`~repro.core.errors.
        CapacityError` when the pool has no usable spare.
        """
        south = self.ocs.state.south_of(north)
        if south is None:
            raise ConfigurationError(f"north port {north} has no circuit to steer")
        spare = self._select_spare(north, south)
        return self.move_circuit(north, spare, reason)

    def remediate(self, anomaly: Anomaly) -> Optional[RepairAction]:
        """Move the anomalous circuit to a re-qualified spare south port.

        Returns the action, or None when the circuit no longer exists
        (already repaired or torn down).
        """
        north, south = anomaly.circuit
        if self.ocs.state.south_of(north) != south:
            return None
        spare = self._select_spare(north, south)
        return self.move_circuit(north, spare, anomaly.kind)

    def run_once(self) -> List[RepairAction]:
        """One scan-and-remediate pass; returns the executed actions."""
        executed = []
        for anomaly in self.scan():
            action = self.remediate(anomaly)
            if action is not None:
                executed.append(action)
        return executed
