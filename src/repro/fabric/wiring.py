"""Wiring plans: which endpoint fiber lands on which OCS port.

A wiring plan is the *static* part of a lightwave fabric -- the physical
patch from every endpoint port to an OCS port (north or south side).  The
OCS cross-connects are then the *dynamic* part.  Plans validate that no
OCS port or endpoint port is used twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError, TopologyError
from repro.core.ids import OcsId


@dataclass(frozen=True)
class Attachment:
    """One fiber: endpoint port -> OCS port."""

    endpoint: str
    endpoint_port: int
    ocs: OcsId
    side: str  # "N" or "S"
    ocs_port: int

    def __post_init__(self) -> None:
        if self.side not in ("N", "S"):
            raise ConfigurationError(f"side must be 'N' or 'S', got {self.side!r}")
        if self.endpoint_port < 0 or self.ocs_port < 0:
            raise ConfigurationError("port indices must be non-negative")

    def __str__(self) -> str:
        return f"{self.endpoint}:{self.endpoint_port} -> {self.ocs}/{self.side}{self.ocs_port}"


@dataclass
class WiringPlan:
    """The set of attachments forming a fabric's static fiber plant."""

    attachments: List[Attachment] = field(default_factory=list)
    _by_endpoint: Dict[Tuple[str, int], Attachment] = field(
        default_factory=dict, repr=False
    )
    _by_ocs: Dict[Tuple[OcsId, str, int], Attachment] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        seeded, self.attachments = self.attachments, []
        for att in seeded:
            self.add(att)

    def add(self, attachment: Attachment) -> None:
        """Record one fiber, rejecting double-use on either end."""
        ep_key = (attachment.endpoint, attachment.endpoint_port)
        ocs_key = (attachment.ocs, attachment.side, attachment.ocs_port)
        if ep_key in self._by_endpoint:
            raise TopologyError(
                f"endpoint port {attachment.endpoint}:{attachment.endpoint_port} "
                f"already wired to {self._by_endpoint[ep_key].ocs}"
            )
        if ocs_key in self._by_ocs:
            raise TopologyError(
                f"OCS port {attachment.ocs}/{attachment.side}{attachment.ocs_port} "
                f"already wired to {self._by_ocs[ocs_key].endpoint}"
            )
        self.attachments.append(attachment)
        self._by_endpoint[ep_key] = attachment
        self._by_ocs[ocs_key] = attachment

    def for_endpoint(self, endpoint: str, port: int) -> Attachment:
        """The attachment on a given endpoint port."""
        try:
            return self._by_endpoint[(endpoint, port)]
        except KeyError:
            raise TopologyError(f"{endpoint}:{port} is not wired") from None

    def for_ocs_port(self, ocs: OcsId, side: str, port: int) -> Optional[Attachment]:
        """The attachment on a given OCS port, or None if dark."""
        return self._by_ocs.get((ocs, side, port))

    def endpoints(self) -> Tuple[str, ...]:
        """All endpoint names appearing in the plan, sorted."""
        return tuple(sorted({a.endpoint for a in self.attachments}))

    def ports_used(self, ocs: OcsId, side: str) -> Tuple[int, ...]:
        """OCS ports of ``side`` already carrying a fiber, ascending."""
        return tuple(
            sorted(p for (o, s, p) in self._by_ocs if o == ocs and s == side)
        )

    def __len__(self) -> int:
        return len(self.attachments)

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #

    @classmethod
    def full_mesh_ready(
        cls, endpoint_names: Sequence[str], ocs: OcsId, radix: int
    ) -> "WiringPlan":
        """Wire each endpoint's port 0 to the north side and port 1 to the
        south side of one OCS, enabling any endpoint-to-endpoint circuit.

        Endpoint ``i`` lands on north port ``i`` and south port ``i``; a
        circuit N(i) -> S(j) then realizes the link i -> j.
        """
        if len(endpoint_names) > radix:
            raise ConfigurationError(
                f"{len(endpoint_names)} endpoints exceed OCS radix {radix}"
            )
        plan = cls()
        for i, name in enumerate(endpoint_names):
            plan.add(Attachment(name, 0, ocs, "N", i))
            plan.add(Attachment(name, 1, ocs, "S", i))
        return plan
