"""End-to-end optical-path accounting.

An :class:`OpticalPath` walks a light signal from a transmitter through
circulators, fiber spans, and OCS circuits to a receiver, accumulating
insertion loss and collecting the reflection inventory that determines the
link's aggregate MPI level.  The result feeds directly into the
:class:`repro.optics.pam4.Pam4LinkModel` for a physics-grounded BER of a
*specific* fabric path rather than a generic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.optics.circulator import Circulator
from repro.optics.fiber import FiberSpan
from repro.optics.mpi import MpiSource, aggregate_mpi_db, double_reflection_mpi_db
from repro.optics.pam4 import Pam4LinkModel
from repro.optics.transceiver import TransceiverSpec


@dataclass(frozen=True)
class PathElement:
    """One traversed element: its loss and the reflection it contributes."""

    name: str
    loss_db: float
    reflection_db: Optional[float] = None  # None = no meaningful reflector

    def __post_init__(self) -> None:
        if self.loss_db < 0:
            raise ConfigurationError(f"{self.name}: loss must be non-negative")
        if self.reflection_db is not None and self.reflection_db >= 0:
            raise ConfigurationError(f"{self.name}: reflection must be negative dB")


@dataclass
class OpticalPath:
    """A concrete TX -> RX path through the fabric."""

    spec: TransceiverSpec
    elements: List[PathElement] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def through_ocs(
        cls,
        spec: TransceiverSpec,
        ocs_insertion_loss_db: float,
        ocs_return_loss_db: float,
        fiber: Optional[FiberSpan] = None,
        circulator: Optional[Circulator] = None,
    ) -> "OpticalPath":
        """The canonical bidi fabric path: circulator-fiber-OCS-fiber-circulator."""
        if ocs_insertion_loss_db < 0:
            raise ConfigurationError("OCS insertion loss must be non-negative")
        if ocs_return_loss_db >= 0:
            raise ConfigurationError("OCS return loss must be negative dB")
        circ = circulator or Circulator()
        span = fiber or FiberSpan(length_m=30.0)
        path = cls(spec=spec)
        if spec.bidi:
            path.elements.append(
                PathElement("tx-circulator", circ.tx_to_fiber_db, circ.return_loss_db)
            )
        path.elements.append(
            PathElement("fiber-a", span.total_loss_db, -55.0)  # APC connector
        )
        path.elements.append(
            PathElement("ocs", ocs_insertion_loss_db, ocs_return_loss_db)
        )
        path.elements.append(PathElement("fiber-b", span.total_loss_db, -55.0))
        if spec.bidi:
            path.elements.append(
                PathElement("rx-circulator", circ.fiber_to_rx_db, circ.return_loss_db)
            )
        return path

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    @property
    def total_loss_db(self) -> float:
        return sum(e.loss_db for e in self.elements)

    @property
    def received_power_dbm(self) -> float:
        return self.spec.tx_power_dbm - self.total_loss_db

    def reflectors(self) -> Tuple[PathElement, ...]:
        """Elements that contribute a reflection, in path order."""
        return tuple(e for e in self.elements if e.reflection_db is not None)

    def estimated_mpi_db(self, circulator_crosstalk_db: float = -50.0) -> float:
        """Aggregate MPI from every reflector pair plus circulator crosstalk.

        Every ordered pair of reflectors creates one double-reflection
        interferer; circulator crosstalk adds the local-TX leakage term.
        Levels are referenced to the received signal, so intermediate path
        loss between the reflectors is conservatively ignored (short
        intra-datacenter spans).
        """
        sources: List[MpiSource] = []
        refs = self.reflectors()
        for i in range(len(refs)):
            for j in range(i + 1, len(refs)):
                level = double_reflection_mpi_db(
                    refs[i].reflection_db, refs[j].reflection_db
                )
                sources.append(MpiSource(f"{refs[i].name}*{refs[j].name}", level))
        if self.spec.bidi:
            # Local TX leaks into local RX: level set by crosstalk plus the
            # advantage the (unattenuated) local TX has over the received
            # signal, i.e. the full path loss.
            sources.append(
                MpiSource(
                    "circulator-crosstalk",
                    circulator_crosstalk_db + self.total_loss_db,
                )
            )
        return aggregate_mpi_db(sources)

    def ber_model(self, oim_suppression_db: float = 12.0) -> Pam4LinkModel:
        """A PAM4 BER model parameterized by this path's physics."""
        mpi = self.estimated_mpi_db()
        return Pam4LinkModel(
            mpi_db=None if mpi == float("-inf") else mpi,
            oim_suppression_db=oim_suppression_db,
        )

    def ber(self, oim_suppression_db: float = 12.0) -> float:
        """Pre-FEC BER at this path's actual received power."""
        return self.ber_model(oim_suppression_db).ber(self.received_power_dbm)

    def margin_db(self) -> float:
        """Power margin over the transceiver's stated sensitivity."""
        return self.received_power_dbm - self.spec.rx_sensitivity_dbm
