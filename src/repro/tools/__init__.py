"""Command-line utilities: the experiment report generator."""
