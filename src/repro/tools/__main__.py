"""Entry point: ``python -m repro.tools`` prints the headline report."""

import sys

from repro.tools.report import main

if __name__ == "__main__":
    sys.exit(main())
