"""Fleet NOC report: the observability subsystem on one screen.

``python -m repro.tools.noc`` runs the observed fabric drill
(:func:`repro.obs.drill.run_fabric_drill`), then renders what a network
operations center would watch: the metric snapshot, the slowest spans,
per-OCS telemetry summaries, quarantine state, and an SLO section
checked against the committed thresholds in
``benchmarks/slo_thresholds.json``.  With ``--check`` an SLO regression
exits non-zero (the CI gate); ``--trace-out`` / ``--metrics-out`` export
the run's spans and metrics as JSONL for offline queries.

``python -m repro.tools.noc twin`` runs the predictive digital-twin
drill instead (:func:`repro.twin.drill.run_twin_drill`): record a fleet
timeline, train the availability forecaster on a chaos ensemble, and
what-if-replay candidate policies, rendering the forecast scorecard and
per-policy predicted SLO deltas.  ``--timeline-out`` / ``--plans-out`` /
``--aggregates-out`` write the JSONL artifacts; ``--check`` gates the
``twin_*`` thresholds (forecast coverage, forecast skill, replay
divergence).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.obs.drill import DrillReport, run_fabric_drill
from repro.obs.export import export_metrics, export_trace

#: Default location of the committed SLO thresholds (repo root relative).
DEFAULT_THRESHOLDS = Path(__file__).resolve().parents[3] / "benchmarks" / "slo_thresholds.json"


def _split_series(series: str) -> Tuple[str, Dict[str, str]]:
    """``name{k=v,...}`` -> (name, labels)."""
    if "{" not in series:
        return series, {}
    name, _, rest = series.partition("{")
    labels = dict(pair.split("=", 1) for pair in rest.rstrip("}").split(","))
    return name, labels


def compute_slos(report: DrillReport) -> Dict[str, float]:
    """The headline SLOs, straight off the drill's registry."""
    registry = report.obs.metrics
    loss_obs = registry.sum_counters("ocs.loss.observations")
    anomalies = registry.sum_counters("ocs.anomaly.fired")
    hits = registry.sum_counters("sweep.cache.hits")
    misses = registry.sum_counters("sweep.cache.misses")
    lookups = hits + misses
    serve_offered = registry.sum_counters("serve.outcomes")
    serve_shed = registry.sum_counters("serve.outcomes", outcome="shed")
    serve_attempts = registry.sum_counters("serve.attempts")
    serve_deposits = registry.sum_counters("serve.retry.deposits")
    return {
        "reconfig_p99_ms": registry.histogram("fabric.plan.duration_ms").quantile(0.99),
        "recovery_p99_ms": registry.histogram("control.recover.duration_ms").quantile(0.99),
        "ber_anomaly_rate": anomalies / loss_obs if loss_obs else 0.0,
        "sweep_cache_miss_rate": misses / lookups if lookups else 0.0,
        "sweep_chunk_p99_ms": registry.histogram("sweep.chunk.duration_ms").quantile(0.99),
        "serve_p99_ms": registry.histogram("serve.latency_ms", outcome="ok").quantile(0.99),
        "serve_shed_rate": serve_shed / serve_offered if serve_offered else 0.0,
        "serve_retry_amplification": (
            serve_attempts / serve_deposits if serve_deposits else 0.0
        ),
        # Replicated-control-plane HA (published by the failover drill).
        "failover_p99_s": registry.value("serve.failover.p99_s"),
        "committed_ops_lost": registry.value("serve.failover.committed_ops_lost"),
        "failover_unavailability": registry.value("serve.failover.unavailability"),
        # Digital twin (published by the twin drill phase): forecast
        # coverage gated as a miss rate, forecast skill gated as
        # model-minus-naive MAE (<= 0 means the forecaster earns its
        # keep), and what-if replay divergence (must be exactly 0).
        "twin_forecast_miss_rate": registry.value("twin.forecast.miss_rate"),
        "twin_forecast_mae_excess": registry.value("twin.forecast.mae_excess"),
        "twin_plan_divergence": registry.value("twin.plan.divergence"),
    }


def check_slos(
    slos: Dict[str, float], thresholds: Dict[str, float]
) -> List[Tuple[str, float, float, bool]]:
    """(slo, value, max allowed, ok) per threshold; unknown SLOs fail."""
    rows = []
    for name in sorted(thresholds):
        limit = float(thresholds[name])
        value = slos.get(name)
        rows.append((name, value if value is not None else float("nan"),
                     limit, value is not None and value <= limit))
    return rows


def _section(title: str) -> None:
    print()
    print(f"== {title} " + "=" * max(0, 60 - len(title)))


def render_report(report: DrillReport, slo_rows, top: int) -> None:
    tracer, registry = report.obs.tracer, report.obs.metrics
    trace_digest, metrics_digest = report.digests()
    print(f"FLEET NOC REPORT  seed={report.seed}"
          f"  mode={'smoke' if report.smoke else 'full'}")
    print(f"spans={tracer.num_spans}  series={registry.num_series}"
          f"  clock={report.obs.clock.now():.1f} ms")
    print(f"trace digest   {trace_digest}")
    print(f"metrics digest {metrics_digest}")

    _section("SLOs")
    print(render_table(
        ["slo", "value", "max allowed", "status"],
        [[name, f"{value:.4f}", f"{limit:.4f}", "ok" if ok else "REGRESSED"]
         for name, value, limit, ok in slo_rows],
    ))

    _section(f"Slowest spans (top {top})")
    print(render_table(
        ["span", "duration (ms)", "start (ms)", "attrs"],
        [[s.name, f"{s.duration_ms:.1f}", f"{s.start_ms:.1f}",
          ",".join(f"{k}={v}" for k, v in s.attrs) or "-"]
         for s in tracer.slowest(top)],
    ))

    _section("Per-OCS telemetry")
    per_ocs: Dict[str, Dict[str, float]] = {}
    for record in registry.to_records():
        if record["type"] != "counter":
            continue
        name, labels = _split_series(str(record["series"]))
        ocs = labels.get("ocs")
        if ocs is None or not name.startswith("ocs."):
            continue
        per_ocs.setdefault(ocs, {})
        per_ocs[ocs][name] = per_ocs[ocs].get(name, 0.0) + float(record["value"])
    print(render_table(
        ["ocs", "connects", "reconfigs", "disturbed", "loss obs", "anomalies"],
        [[ocs,
          f"{row.get('ocs.circuit.connect', 0):.0f}",
          f"{row.get('ocs.reconfig.transactions', 0):.0f}",
          f"{row.get('ocs.reconfig.circuits_disturbed', 0):.0f}",
          f"{row.get('ocs.loss.observations', 0):.0f}",
          f"{row.get('ocs.anomaly.fired', 0):.0f}"]
         for ocs, row in sorted(per_ocs.items())],
    ))

    _section("Quarantine / health")
    actions = {}
    for record in registry.to_records():
        name, labels = _split_series(str(record["series"]))
        if name == "health.actions":
            actions[labels.get("action", "?")] = float(record["value"])
    held_out = registry.value("health.held_out.fraction")
    if actions:
        print(render_table(
            ["action", "count"],
            [[a, f"{c:.0f}"] for a, c in sorted(actions.items())],
        ))
    print(f"held-out fraction: {held_out:.3f}")

    _section("Metric snapshot (counters and gauges)")
    rows = []
    for record in registry.to_records():
        if record["type"] == "histogram":
            continue
        rows.append([str(record["series"]), record["type"],
                     f"{float(record['value']):g}"])
    print(render_table(["series", "type", "value"], rows))

    _section("Latency histograms")
    hist_rows = []
    for record in registry.to_records():
        if record["type"] != "histogram":
            continue
        name = _split_series(str(record["series"]))[0]
        hist = registry.histogram(name, **_split_series(str(record["series"]))[1])
        hist_rows.append([str(record["series"]), f"{hist.count}",
                          f"{hist.quantile(0.5):.2f}", f"{hist.quantile(0.99):.2f}",
                          f"{hist.max:.2f}"])
    print(render_table(["series", "count", "p50", "p99", "max"], hist_rows))


def render_twin_report(out: Dict[str, object], slo_rows) -> None:
    summary: Dict[str, object] = out["summary"]  # type: ignore[assignment]
    forecast: Dict[str, float] = summary["forecast"]  # type: ignore[assignment]
    print(f"DIGITAL TWIN REPORT  seed={summary['seed']}"
          f"  mode={'smoke' if summary['smoke'] else 'full'}")
    print(f"timeline samples={summary['timeline_samples']}"
          f"  aggregates={summary['aggregates']}"
          f"  ensemble members={summary['ensemble_members']}")
    print(f"timeline digest   {summary['timeline_digest']}")
    print(f"aggregates digest {summary['aggregates_digest']}")

    _section("Twin SLOs")
    print(render_table(
        ["slo", "value", "max allowed", "status"],
        [[name, f"{value:.4f}", f"{limit:.4f}", "ok" if ok else "REGRESSED"]
         for name, value, limit, ok in slo_rows],
    ))

    _section("Availability forecast (held-out chaos ensemble)")
    print(render_table(
        ["metric", "value"],
        [["model", str(summary["forecast_model"])],
         ["model MAE", f"{forecast['model_mae']:.5f}"],
         ["naive last-value MAE", f"{forecast['naive_mae']:.5f}"],
         ["coverage (±{:.2f})".format(forecast["band"]), f"{forecast['coverage']:.3f}"],
         ["held-out members", f"{forecast['n_heldout']:.0f}"],
         ["beats naive", "yes" if forecast["beats_naive"] else "NO"]],
    ))

    _section("What-if plans (predicted SLO deltas vs recorded baseline)")
    rows = []
    for plan in out["plans"]:  # type: ignore[union-attr]
        deltas = plan.deltas
        rows.append([
            plan.policy.name,
            f"{plan.predicted['serve_p99_ms']:.1f}",
            f"{deltas['serve_p99_ms']:+.1f}",
            f"{plan.predicted['serve_shed_rate']:.4f}",
            f"{deltas['serve_shed_rate']:+.4f}",
            f"{plan.predicted['availability']:.4f}",
            f"{deltas['availability']:+.4f}",
            plan.digest()[:12],
        ])
    print(render_table(
        ["policy", "p99 ms", "Δp99", "shed", "Δshed", "avail", "Δavail",
         "digest"],
        rows,
    ))


def twin_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.noc twin",
        description="predictive digital-twin drill: forecast + what-if SLO planning",
    )
    parser.add_argument("--seed", type=int, default=0, help="drill seed")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast drill (the CI parameterization)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any twin SLO exceeds its threshold")
    parser.add_argument("--thresholds", type=Path, default=DEFAULT_THRESHOLDS,
                        help="SLO thresholds JSON (twin_* keys gate)")
    parser.add_argument("--timeline-out", type=Path, default=None,
                        help="write the recorded fleet timeline as JSONL")
    parser.add_argument("--plans-out", type=Path, default=None,
                        help="write the what-if plan reports as JSONL")
    parser.add_argument("--aggregates-out", type=Path, default=None,
                        help="write the windowed aggregates as JSONL")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable summary instead of tables")
    args = parser.parse_args(argv)

    from repro.obs import Observability
    from repro.obs.export import write_jsonl
    from repro.twin.drill import run_twin_drill, twin_slos

    obs = Observability.sim()
    out = run_twin_drill(seed=args.seed, smoke=args.smoke, obs=obs)
    summary: Dict[str, object] = out["summary"]  # type: ignore[assignment]

    thresholds: Dict[str, float] = {}
    if args.thresholds.exists():
        thresholds = json.loads(args.thresholds.read_text())
    twin_thresholds = {
        name: limit for name, limit in thresholds.items()
        if name.startswith("twin_")
    }
    slo_rows = check_slos(twin_slos(summary), twin_thresholds)

    timeline = out["timeline"]
    if args.timeline_out is not None:
        write_jsonl(args.timeline_out, timeline.to_records())
    if args.plans_out is not None:
        write_jsonl(args.plans_out, [p.to_record() for p in out["plans"]])
    if args.aggregates_out is not None:
        write_jsonl(args.aggregates_out, out["aggregates"])

    if args.json:
        print(json.dumps({
            **{k: v for k, v in summary.items()},
            "slo_ok": all(ok for *_, ok in slo_rows),
            "plans": [p.to_record() for p in out["plans"]],
        }, indent=2, sort_keys=True))
    else:
        render_twin_report(out, slo_rows)

    if args.check and not all(ok for *_, ok in slo_rows):
        print("TWIN SLO REGRESSION: one or more twin SLOs exceed their "
              "thresholds", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "twin":
        return twin_main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.noc", description=__doc__
    )
    parser.add_argument("--seed", type=int, default=0, help="drill seed")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast drill (the CI parameterization)")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest spans to show")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any SLO exceeds its threshold")
    parser.add_argument("--thresholds", type=Path, default=DEFAULT_THRESHOLDS,
                        help="SLO thresholds JSON")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write the span tree as JSONL")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="write the metric snapshot as JSONL")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable summary instead of tables")
    args = parser.parse_args(argv)

    report = run_fabric_drill(seed=args.seed, smoke=args.smoke)
    slos = compute_slos(report)
    thresholds: Dict[str, float] = {}
    if args.thresholds.exists():
        thresholds = json.loads(args.thresholds.read_text())
    slo_rows = check_slos(slos, thresholds)

    if args.trace_out is not None:
        export_trace(args.trace_out, report.obs.tracer,
                     seed=report.seed, smoke=report.smoke)
    if args.metrics_out is not None:
        export_metrics(args.metrics_out, report.obs.metrics,
                       seed=report.seed, smoke=report.smoke)

    if args.json:
        trace_digest, metrics_digest = report.digests()
        print(json.dumps({
            "seed": report.seed,
            "smoke": report.smoke,
            "slos": slos,
            "slo_ok": all(ok for *_, ok in slo_rows),
            "notes": report.notes,
            "num_spans": report.obs.tracer.num_spans,
            "num_series": report.obs.metrics.num_series,
            "trace_digest": trace_digest,
            "metrics_digest": metrics_digest,
        }, indent=2, sort_keys=True))
    else:
        render_report(report, slo_rows, top=args.top)

    if args.check and not all(ok for *_, ok in slo_rows):
        print("SLO REGRESSION: one or more SLOs exceed their thresholds",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
