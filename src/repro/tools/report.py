"""One-shot experiment report: every headline number, one command.

``python -m repro.tools.report`` regenerates the paper's headline results
without the pytest harness -- the quickest way for a reader to see the
reproduction in one screen.  (The full per-figure benchmarks live in
``benchmarks/``.)
"""

from __future__ import annotations

import sys
from typing import List, Sequence

from repro.analysis.tables import render_table
from repro.availability.goodput import GoodputModel
from repro.availability.model import TRANSCEIVER_TECHS, fabric_availability
from repro.dcn.blocks import AggregationBlock
from repro.dcn.clos import ClosFabric
from repro.dcn.costmodel import DcnCostModel
from repro.dcn.spinefree import SpineFreeFabric
from repro.ml.models import LLM_ZOO
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import SliceShapeSearch
from repro.ocs.optics_model import summarize_insertion_loss
from repro.ocs.palomar import PalomarOcs
from repro.optics.ber import LinkBerSimulator
from repro.optics.fleet import FleetBerSampler
from repro.tpu.costmodel import FABRIC_KINDS, FabricCostModel


def _section(title: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)


def report_ocs() -> None:
    _section("Palomar OCS optics (Fig 10)")
    ocs = PalomarOcs.build(seed=42)
    s = summarize_insertion_loss(ocs.insertion_loss_matrix_db())
    rl = ocs.return_loss_profile_db()
    print(render_table(
        ["metric", "paper", "measured"],
        [
            ["insertion loss (median)", "< 2 dB", f"{s['median_db']:.2f} dB"],
            ["insertion loss (p99)", "~3 dB", f"{s['p99_db']:.2f} dB"],
            ["return loss (median)", "-46 dB", f"{float(sorted(rl)[len(rl)//2]):.1f} dB"],
        ],
    ))


def report_dsp() -> None:
    _section("Transceiver DSP (Figs 11-13)")
    sim = LinkBerSimulator()
    fleet = FleetBerSampler(num_ports=2048, seed=7).summarize()
    print(render_table(
        ["metric", "paper", "measured"],
        [
            ["OIM gain @ MPI -32 dB", "> 1 dB", f"{sim.oim_sensitivity_gain_db(-32.0):.2f} dB"],
            ["SFEC gain @ MPI -32 dB", "1.6 dB", f"{sim.sfec_sensitivity_gain_db(-32.0):.2f} dB"],
            ["fleet lanes < 2e-4", "all", str(fleet["all_below_threshold"])],
            ["fleet worst margin", "~2 decades", f"{fleet['worst_margin_decades']:.1f} decades"],
        ],
    ))


def report_table1() -> None:
    _section("Superpod fabric cost/power (Table 1)")
    table = FabricCostModel().relative_table()
    paper = {"dcn": "1.24x / 1.10x", "lightwave": "1.06x / 1.01x", "static": "1.00x / 1.00x"}
    print(render_table(
        ["fabric", "paper", "measured"],
        [
            [k, paper[k], f"{table[k][0]:.2f}x / {table[k][1]:.2f}x"]
            for k in FABRIC_KINDS
        ],
    ))


def report_table2() -> None:
    _section("LLM slice shapes (Table 2)")
    search = SliceShapeSearch(TrainingStepModel())
    paper = {"llm0": "8x16x32 (1.54x)", "llm1": "4x4x256 (3.32x)", "llm2": "16x16x16 (1.00x)"}
    rows: List[Sequence[object]] = []
    for key in ("llm0", "llm1", "llm2"):
        r = search.search(LLM_ZOO[key])
        rows.append([
            r.model.name,
            paper[key],
            "x".join(map(str, r.best_shape)) + f" ({r.speedup_vs_baseline:.2f}x)",
        ])
    print(render_table(["model", "paper", "measured"], rows))


def report_fig15() -> None:
    _section("Availability and goodput (Fig 15)")
    rows = [
        [
            TRANSCEIVER_TECHS[k].name,
            TRANSCEIVER_TECHS[k].num_ocses,
            f"{fabric_availability(TRANSCEIVER_TECHS[k].num_ocses, 0.999):.1%}",
        ]
        for k in ("cwdm4_duplex", "cwdm4_bidi", "cwdm8_bidi")
    ]
    print(render_table(["technology", "OCSes", "fabric availability"], rows))
    model = GoodputModel()
    curve = model.curve(0.999, slice_cubes=(16, 32))
    print(render_table(
        ["slice", "reconfigurable", "static", "paper"],
        [
            ["1024 TPUs", f"{curve[16][0]:.0%}", f"{curve[16][1]:.0%}", "75% vs 25%"],
            ["2048 TPUs", f"{curve[32][0]:.0%}", f"{curve[32][1]:.0%}", "50%"],
        ],
    ))


def report_dcn() -> None:
    _section("Spine-free DCN (Fig 1)")
    blocks = [AggregationBlock(i, uplinks=64) for i in range(64)]
    savings = DcnCostModel().savings(
        ClosFabric(blocks, num_spines=16), SpineFreeFabric.uniform(blocks)
    )
    print(render_table(
        ["metric", "paper", "measured"],
        [
            ["CapEx saving", "30%", f"{savings['capex_saving']:.1%}"],
            ["power saving", "41%", f"{savings['power_saving']:.1%}"],
        ],
    ))


def main(argv: Sequence[str] | None = None) -> int:
    del argv
    print("Lightwave Fabrics reproduction -- headline report")
    report_ocs()
    report_dsp()
    report_table1()
    report_table2()
    report_fig15()
    report_dcn()
    print("\nFull per-figure harness: pytest benchmarks/ --benchmark-only -s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
