"""Figure-data exporter: CSV series for every curve-style figure.

``python -m repro.tools.figures --out results/`` writes one CSV per
figure so downstream users can regenerate the paper's plots with any
plotting stack.  Columns are labeled; every file starts with a comment
line naming the figure it reproduces.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Iterable, List, Sequence

import numpy as np

from repro.availability.goodput import GoodputModel
from repro.availability.model import TRANSCEIVER_TECHS, fig15a_curves
from repro.ml.models import LLM_ZOO
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import SliceShapeSearch
from repro.ocs.palomar import PalomarOcs
from repro.optics.ber import LinkBerSimulator
from repro.optics.fleet import FleetBerSampler


def _write(path: Path, comment: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    with path.open("w", newline="") as f:
        f.write(f"# {comment}\n")
        writer = csv.writer(f)
        writer.writerow(header)
        writer.writerows(rows)


def export_fig10(out: Path, seed: int = 42) -> List[Path]:
    """Insertion-loss histogram samples and per-port return loss."""
    ocs = PalomarOcs.build(seed=seed)
    losses = ocs.insertion_loss_matrix_db().ravel()
    p1 = out / "fig10a_insertion_loss.csv"
    _write(
        p1,
        "Fig 10a: insertion loss of all 136x136 Palomar cross-connections (dB)",
        ["path_index", "insertion_loss_db"],
        ((i, f"{v:.4f}") for i, v in enumerate(losses)),
    )
    p2 = out / "fig10b_return_loss.csv"
    _write(
        p2,
        "Fig 10b: return loss per port (dB)",
        ["port", "return_loss_db"],
        ((i, f"{v:.2f}") for i, v in enumerate(ocs.return_loss_profile_db())),
    )
    return [p1, p2]


def export_fig11(out: Path) -> List[Path]:
    """BER waterfalls for the MPI sweep, OIM off/on."""
    sim = LinkBerSimulator()
    powers = np.linspace(-14.0, -4.0, 41)
    curves = sim.mpi_sweep(
        mpi_levels_db=(None, -35.0, -32.0, -29.0), rx_powers_dbm=powers
    )
    path = out / "fig11_ber_vs_power.csv"
    rows = []
    for p_idx, power in enumerate(powers):
        row = [f"{power:.2f}"]
        for mpi in (None, -35.0, -32.0, -29.0):
            for oim_on in (False, True):
                row.append(f"{curves[(mpi, oim_on)].bers[p_idx]:.6e}")
        rows.append(row)
    header = ["rx_power_dbm"]
    for mpi in ("none", "-35dB", "-32dB", "-29dB"):
        for oim in ("oim_off", "oim_on"):
            header.append(f"ber_mpi_{mpi}_{oim}")
    _write(path, "Fig 11: BER vs received power, MPI sweep, +/- OIM", header, rows)
    return [path]


def export_fig12(out: Path) -> List[Path]:
    """Slicer vs post-inner-FEC BER under two MPI conditions."""
    sim = LinkBerSimulator()
    powers = np.linspace(-15.0, -6.0, 37)
    curves = sim.sfec_curves(mpi_levels_db=(-36.0, -32.0), rx_powers_dbm=powers)
    path = out / "fig12_sfec_curves.csv"
    rows = []
    for i, power in enumerate(powers):
        rows.append(
            [
                f"{power:.2f}",
                f"{curves[(-36.0, False)].bers[i]:.6e}",
                f"{curves[(-36.0, True)].bers[i]:.6e}",
                f"{curves[(-32.0, False)].bers[i]:.6e}",
                f"{curves[(-32.0, True)].bers[i]:.6e}",
            ]
        )
    _write(
        path,
        "Fig 12: BER vs power with/without inner soft FEC at two MPI conditions",
        [
            "rx_power_dbm",
            "ber_mpi-36_raw",
            "ber_mpi-36_sfec",
            "ber_mpi-32_raw",
            "ber_mpi-32_sfec",
        ],
        rows,
    )
    return [path]


def export_fig13(out: Path, ports: int = 6144, seed: int = 7) -> List[Path]:
    """Per-port fleet BER (the production scatter)."""
    sampler = FleetBerSampler(num_ports=ports, seed=seed)
    bers = sampler.sample()
    path = out / "fig13_fleet_ber.csv"
    _write(
        path,
        "Fig 13: per-port pre-FEC BER across the superpod fleet (OIM+SFEC on)",
        ["port", "ber"],
        ((i, f"{b:.6e}") for i, b in enumerate(bers)),
    )
    return [path]


def export_fig15(out: Path) -> List[Path]:
    """Fabric availability curves and goodput-vs-slice-size series."""
    avails = np.linspace(0.995, 0.9999, 50)
    curves = fig15a_curves(avails)
    p1 = out / "fig15a_fabric_availability.csv"
    rows = [
        [f"{a:.5f}"] + [f"{curves[k][i]:.5f}" for k in TRANSCEIVER_TECHS]
        for i, a in enumerate(avails)
    ]
    _write(
        p1,
        "Fig 15a: fabric availability vs single-OCS availability",
        ["ocs_availability"] + [f"fabric_{k}" for k in TRANSCEIVER_TECHS],
        rows,
    )
    model = GoodputModel()
    p2 = out / "fig15b_goodput.csv"
    rows = []
    for sa in (0.999, 0.995, 0.99):
        curve = model.curve(sa, slice_cubes=(1, 2, 4, 8, 16, 32))
        for cubes, (reconf, static) in sorted(curve.items()):
            rows.append([f"{sa:.3f}", cubes * 64, f"{reconf:.4f}", f"{static:.4f}"])
    _write(
        p2,
        "Fig 15b: goodput vs slice size at 97% system availability",
        ["server_availability", "slice_tpus", "reconfigurable", "static"],
        rows,
    )
    return [p1, p2]


def export_table2(out: Path) -> List[Path]:
    """Step time of every feasible shape for each LLM (the search surface)."""
    search = SliceShapeSearch(TrainingStepModel())
    path = out / "table2_shape_surface.csv"
    rows = []
    for key in ("llm0", "llm1", "llm2"):
        model = LLM_ZOO[key]
        for shape, t in search.ranked(model, top=10_000):
            rows.append(
                [model.name, f"{shape[0]}x{shape[1]}x{shape[2]}", f"{t:.3f}"]
            )
    _write(
        path,
        "Table 2: step time (s) of every feasible slice shape per model",
        ["model", "shape", "step_time_s"],
        rows,
    )
    return [path]


EXPORTERS = {
    "fig10": export_fig10,
    "fig11": export_fig11,
    "fig12": export_fig12,
    "fig13": export_fig13,
    "fig15": export_fig15,
    "table2": export_table2,
}


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description="Export figure data as CSV.")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument(
        "--only",
        choices=sorted(EXPORTERS),
        nargs="*",
        help="export a subset (default: everything)",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in args.only or sorted(EXPORTERS):
        written += EXPORTERS[name](out)
    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
