"""Text histograms and percentile summaries for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.errors import ConfigurationError


def ascii_histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    fmt: str = "{:8.2f}",
) -> str:
    """Render a horizontal ASCII histogram (one line per bin)."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ConfigurationError("no values to histogram")
    if bins <= 0 or width <= 0:
        raise ConfigurationError("bins and width must be positive")
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines: List[str] = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        low = fmt.format(edges[i])
        high = fmt.format(edges[i + 1])
        lines.append(f"{low} .. {high} | {bar} {count}")
    return "\n".join(lines)


def percentile_summary(
    values: Sequence[float], percentiles: Sequence[float] = (5, 25, 50, 75, 95, 99)
) -> Dict[str, float]:
    """{'p50': ..., ...} plus mean/min/max."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ConfigurationError("no values to summarize")
    out = {f"p{int(p) if float(p).is_integer() else p}": float(np.percentile(data, p)) for p in percentiles}
    out["mean"] = float(data.mean())
    out["min"] = float(data.min())
    out["max"] = float(data.max())
    return out
