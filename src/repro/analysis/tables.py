"""Fixed-width table rendering for benchmark output."""

from __future__ import annotations

from typing import List, Sequence

from repro.core.errors import ConfigurationError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table.

    Cells are stringified; columns auto-size to the widest entry.
    """
    if not headers:
        raise ConfigurationError("need at least one column")
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
