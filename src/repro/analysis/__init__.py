"""Reporting helpers shared by the benchmark harness."""

from repro.analysis.histogram import ascii_histogram, percentile_summary
from repro.analysis.tables import render_table

__all__ = ["ascii_histogram", "percentile_summary", "render_table"]
