"""Traffic engineering over the direct-connect fabric.

Routing on a spine-free mesh uses the direct trunk first and spills the
residual onto two-hop transit paths through intermediate blocks (the
paper's switch-level traffic engineering complementing topology
engineering).  The solver is a greedy water-filler:

1. serve every pair's demand on its direct link up to capacity;
2. route residuals over the two-hop path with the most spare capacity
   (both legs), iterating until no residual can make progress.

Outputs per-pair served bandwidth, link utilizations, and the overall
throughput fraction -- the §4.2 "+30% throughput vs a uniform mesh"
metric comes from comparing engineered vs uniform trunk allocations
under this router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.traffic import TrafficMatrix

Path = Tuple[int, ...]


@dataclass
class RoutingSolution:
    """Result of routing one traffic matrix over one fabric."""

    served_gbps: np.ndarray
    residual_gbps: np.ndarray
    link_load_gbps: np.ndarray
    link_capacity_gbps: np.ndarray
    paths: Dict[Tuple[int, int], List[Tuple[Path, float]]]

    @property
    def total_served_gbps(self) -> float:
        return float(self.served_gbps.sum())

    @property
    def throughput_fraction(self) -> float:
        total = self.served_gbps.sum() + self.residual_gbps.sum()
        return float(self.served_gbps.sum() / total) if total > 0 else 1.0

    @property
    def max_link_utilization(self) -> float:
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                self.link_capacity_gbps > 0,
                self.link_load_gbps / self.link_capacity_gbps,
                0.0,
            )
        return float(util.max())

    def path_for(self, src: int, dst: int) -> List[Tuple[Path, float]]:
        """Weighted paths carrying (src, dst) traffic."""
        return self.paths.get((src, dst), [])


def route_demand(
    fabric: SpineFreeFabric,
    traffic: TrafficMatrix,
    transit_chunk_gbps: float = 10.0,
) -> RoutingSolution:
    """Route ``traffic`` over ``fabric``: direct first, then 2-hop spill."""
    n = fabric.num_blocks
    if traffic.num_blocks != n:
        raise ConfigurationError(
            f"traffic is {traffic.num_blocks} blocks, fabric has {n}"
        )
    if transit_chunk_gbps <= 0:
        raise ConfigurationError("transit chunk must be positive")

    capacity = fabric.capacity_matrix_gbps()
    load = np.zeros_like(capacity)
    demand = traffic.demand_gbps.copy()
    served = np.zeros_like(demand)
    paths: Dict[Tuple[int, int], List[Tuple[Path, float]]] = {}

    # Phase 1: direct. A trunk is bidirectional; model each direction at
    # full trunk rate (full-duplex links).
    for i in range(n):
        for j in range(n):
            if i == j or demand[i, j] <= 0:
                continue
            available = capacity[i, j] - load[i, j]
            take = min(demand[i, j], max(0.0, available))
            if take > 0:
                load[i, j] += take
                served[i, j] += take
                demand[i, j] -= take
                paths.setdefault((i, j), []).append(((i, j), take))

    # Phase 2: two-hop spill, chunked for fairness.
    progress = True
    while progress:
        progress = False
        for i in range(n):
            for j in range(n):
                if i == j or demand[i, j] <= 1e-9:
                    continue
                best_k, best_spare = None, 0.0
                for k in range(n):
                    if k in (i, j):
                        continue
                    spare = min(
                        capacity[i, k] - load[i, k], capacity[k, j] - load[k, j]
                    )
                    if spare > best_spare:
                        best_spare, best_k = spare, k
                if best_k is None or best_spare <= 1e-9:
                    continue
                take = min(demand[i, j], best_spare, transit_chunk_gbps)
                load[i, best_k] += take
                load[best_k, j] += take
                served[i, j] += take
                demand[i, j] -= take
                paths.setdefault((i, j), []).append(((i, best_k, j), take))
                progress = True

    return RoutingSolution(
        served_gbps=served,
        residual_gbps=demand,
        link_load_gbps=load,
        link_capacity_gbps=capacity,
        paths=paths,
    )


def max_servable_scale(
    fabric: SpineFreeFabric,
    traffic: TrafficMatrix,
    tolerance: float = 0.01,
    hi: float = 8.0,
) -> float:
    """Largest demand scaling the fabric serves with no residual.

    The §4.2 "+30% throughput" comparison: an engineered topology admits a
    larger multiple of the long-lived traffic matrix than the uniform
    mesh because direct capacity sits where demand is (transit paths burn
    two links per bit).  Solved by bisection on the scale factor.
    """
    if tolerance <= 0 or hi <= 0:
        raise ConfigurationError("tolerance and upper bound must be positive")

    def servable(scale: float) -> bool:
        scaled = TrafficMatrix(traffic.demand_gbps * scale)
        solution = route_demand(fabric, scaled)
        return solution.residual_gbps.sum() <= 1e-6 * scaled.total_gbps

    lo = 0.0
    if not servable(tolerance):
        return 0.0
    lo = tolerance
    while servable(hi):
        lo, hi = hi, hi * 2
        if hi > 1e4:
            return hi
    while hi - lo > tolerance * lo:
        mid = (lo + hi) / 2
        if servable(mid):
            lo = mid
        else:
            hi = mid
    return lo


def average_hop_count(solution: RoutingSolution) -> float:
    """Traffic-weighted mean path length (direct = 1 hop)."""
    total, weighted = 0.0, 0.0
    for path_list in solution.paths.values():
        for path, gbps in path_list:
            weighted += (len(path) - 1) * gbps
            total += gbps
    return weighted / total if total > 0 else 0.0
