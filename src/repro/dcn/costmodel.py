"""DCN CapEx/power comparison: spine-full vs spine-free (Fig 1, §4.2).

The paper (and Poutievski et al., SIGCOMM'22) report that removing the
spine layer saves ~30% CapEx and ~41% power: the spine switch chassis
disappear, and each uplink needs one transceiver (at the AB) instead of
two (AB end + spine end) because the OCS is passive.

The bill of materials is parameterized so the components are explicit;
the defaults land the paper's ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.errors import ConfigurationError
from repro.dcn.clos import ClosFabric
from repro.dcn.spinefree import SpineFreeFabric
from repro.ocs.palomar import PALOMAR_MAX_POWER_W


@dataclass
class DcnCostModel:
    """CapEx/power for the two fabric archetypes.

    Unit economics (synthetic but in realistic ratios):
    - transceiver: the dominant per-port optics cost;
    - spine chassis: EPS switch hardware + optics trays;
    - OCS: Palomar unit cost, tiny power (no packet processing).
    """

    transceiver_cost_usd: float = 550.0
    transceiver_power_w: float = 12.0
    spine_chassis_cost_usd: float = 256_000.0
    spine_chassis_power_w: float = 16_100.0
    ocs_cost_usd: float = 22_000.0
    ocs_power_w: float = PALOMAR_MAX_POWER_W
    ab_switching_cost_usd: float = 160_000.0
    ab_switching_power_w: float = 6_000.0

    def __post_init__(self) -> None:
        for name in ("transceiver_cost_usd", "spine_chassis_cost_usd", "ocs_cost_usd"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    # ------------------------------------------------------------------ #
    # Totals
    # ------------------------------------------------------------------ #

    def clos_cost_usd(self, fabric: ClosFabric) -> float:
        return (
            fabric.transceiver_count() * self.transceiver_cost_usd
            + fabric.spine_switch_count() * self.spine_chassis_cost_usd
            + fabric.num_blocks * self.ab_switching_cost_usd
        )

    def clos_power_w(self, fabric: ClosFabric) -> float:
        return (
            fabric.transceiver_count() * self.transceiver_power_w
            + fabric.spine_switch_count() * self.spine_chassis_power_w
            + fabric.num_blocks * self.ab_switching_power_w
        )

    def spinefree_cost_usd(self, fabric: SpineFreeFabric) -> float:
        return (
            fabric.transceiver_count() * self.transceiver_cost_usd
            + fabric.ocs_count() * self.ocs_cost_usd
            + fabric.num_blocks * self.ab_switching_cost_usd
        )

    def spinefree_power_w(self, fabric: SpineFreeFabric) -> float:
        return (
            fabric.transceiver_count() * self.transceiver_power_w
            + fabric.ocs_count() * self.ocs_power_w
            + fabric.num_blocks * self.ab_switching_power_w
        )

    # ------------------------------------------------------------------ #
    # Fig 1 comparison
    # ------------------------------------------------------------------ #

    def savings(
        self, clos: ClosFabric, spinefree: SpineFreeFabric
    ) -> Dict[str, float]:
        """{capex_saving, power_saving} fractions of the Clos baseline.

        Paper: ~0.30 CapEx and ~0.41 power.
        """
        if clos.num_blocks != spinefree.num_blocks:
            raise ConfigurationError("compare fabrics with equal block counts")
        capex_clos = self.clos_cost_usd(clos)
        power_clos = self.clos_power_w(clos)
        return {
            "capex_saving": 1.0 - self.spinefree_cost_usd(spinefree) / capex_clos,
            "power_saving": 1.0 - self.spinefree_power_w(spinefree) / power_clos,
        }
