"""Topology engineering: demand-aware trunk allocation (§2.1).

Given a long-lived demand estimate and each block's uplink budget, the
solver assigns OCS-stitched trunks so direct capacity lands where traffic
is.  The algorithm is a marginal-utility greedy:

1. (optionally) guarantee a connectivity floor of one trunk per pair so
   transit routing always has paths;
2. repeatedly grant one trunk to the feasible pair with the highest
   *unserved demand per trunk* until uplink budgets are exhausted.

The greedy is within one trunk of the proportional-fair fractional
allocation and runs in O(pairs * trunks) -- plenty for hundreds of ABs.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock
from repro.dcn.spinefree import TrunkMatrix
from repro.dcn.traffic import TrafficMatrix


def engineer_trunks(
    blocks: Sequence[AggregationBlock],
    traffic: TrafficMatrix,
    min_trunks_per_pair: int = 1,
) -> TrunkMatrix:
    """Allocate trunks to match ``traffic``.

    Returns a symmetric integer matrix whose row sums respect each
    block's uplink budget.
    """
    n = len(blocks)
    if n < 2:
        raise ConfigurationError("need at least two blocks")
    if traffic.num_blocks != n:
        raise ConfigurationError(
            f"traffic is {traffic.num_blocks} blocks, fabric has {n}"
        )
    if min_trunks_per_pair < 0:
        raise ConfigurationError("connectivity floor must be non-negative")
    budgets = np.array([ab.uplinks for ab in blocks], dtype=int)
    if min_trunks_per_pair * (n - 1) > budgets.min():
        raise ConfigurationError(
            f"connectivity floor {min_trunks_per_pair} needs "
            f"{min_trunks_per_pair * (n - 1)} uplinks; smallest block has "
            f"{budgets.min()}"
        )

    trunks = np.full((n, n), min_trunks_per_pair, dtype=int)
    np.fill_diagonal(trunks, 0)
    remaining = budgets - trunks.sum(axis=1)

    # Symmetric demand: a trunk serves both directions.
    demand = traffic.demand_gbps + traffic.demand_gbps.T

    # Max-heap keyed on marginal utility: demand / (trunks + 1).
    heap: List[tuple] = []
    for i in range(n):
        for j in range(i + 1, n):
            if demand[i, j] > 0:
                utility = demand[i, j] / (trunks[i, j] + 1)
                heapq.heappush(heap, (-utility, i, j))

    while heap:
        neg_utility, i, j = heapq.heappop(heap)
        if remaining[i] <= 0 or remaining[j] <= 0:
            continue
        # Re-validate the utility (trunk count may have grown since push).
        current = demand[i, j] / (trunks[i, j] + 1)
        if -neg_utility > current + 1e-12:
            heapq.heappush(heap, (-current, i, j))
            continue
        trunks[i, j] += 1
        trunks[j, i] += 1
        remaining[i] -= 1
        remaining[j] -= 1
        heapq.heappush(heap, (-demand[i, j] / (trunks[i, j] + 1), i, j))

    return trunks


def direct_hit_fraction(trunks: TrunkMatrix, traffic: TrafficMatrix) -> float:
    """Fraction of demand that has *some* direct trunk (reachability
    metric for ablations; capacity adequacy is the router's job)."""
    demand = traffic.demand_gbps
    covered = demand[np.asarray(trunks) > 0].sum()
    total = demand.sum()
    return float(covered / total) if total > 0 else 1.0
