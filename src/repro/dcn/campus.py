"""Campus-scale fabrics: cluster-to-cluster topology engineering over time.

§1/§6: campus networks "must support a range of cluster-to-cluster
communication patterns, shifting with the turnup and turndown of
services".  This module runs that movie: a sequence of epochs, each with
its own traffic matrix (services come and go), over a campus fabric of
cluster-facing trunk bundles stitched by OCSes.

Three operating modes are compared:

- ``uniform``: the demand-oblivious mesh, never touched;
- ``static-engineered``: engineered once for the first epoch, then frozen
  (what a patch-panel build-out would give you);
- ``reconfigurable``: re-engineered every epoch via OCS cross-connect
  moves (the lightwave fabric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock
from repro.dcn.spinefree import SpineFreeFabric, uniform_mesh_trunks
from repro.dcn.topology_engineering import engineer_trunks
from repro.dcn.traffic import TrafficMatrix, gravity_matrix
from repro.dcn.traffic_engineering import max_servable_scale


def service_epochs(
    num_clusters: int,
    num_epochs: int,
    total_gbps: float,
    concentration: float = 1.2,
    seed: int = 0,
) -> List[TrafficMatrix]:
    """A drifting sequence of traffic matrices.

    Each epoch resamples the gravity masses (a service turned up or
    down somewhere), so the hot pairs wander across the campus.
    """
    if num_epochs <= 0:
        raise ConfigurationError("need at least one epoch")
    return [
        gravity_matrix(
            num_clusters, total_gbps, concentration=concentration, seed=seed + e
        )
        for e in range(num_epochs)
    ]


@dataclass(frozen=True)
class EpochResult:
    """Per-epoch outcome for one operating mode.

    ``admissible_scale`` is the largest multiple of the epoch's traffic
    matrix the fabric serves with no residual (the capacity-headroom
    metric; raw served fraction saturates identically for every topology
    under heavy oversubscription because two-hop transit equalizes them).
    """

    epoch: int
    admissible_scale: float
    circuits_moved: int


@dataclass
class CampusStudy:
    """Runs the multi-epoch campus comparison.

    Args:
        blocks: the cluster-facing aggregation blocks.
        epochs: per-epoch traffic matrices.
    """

    blocks: List[AggregationBlock]
    epochs: Sequence[TrafficMatrix]

    def __post_init__(self) -> None:
        if len(self.blocks) < 2:
            raise ConfigurationError("need at least two clusters")
        if not self.epochs:
            raise ConfigurationError("need at least one epoch")
        for tm in self.epochs:
            if tm.num_blocks != len(self.blocks):
                raise ConfigurationError("epoch size does not match cluster count")

    def run_mode(self, mode: str) -> List[EpochResult]:
        """Simulate one operating mode across every epoch."""
        if mode not in ("uniform", "static-engineered", "reconfigurable"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        if mode == "uniform":
            fabric = SpineFreeFabric.uniform(self.blocks)
        else:
            fabric = SpineFreeFabric(
                self.blocks, engineer_trunks(self.blocks, self.epochs[0])
            )
        results: List[EpochResult] = []
        for e, tm in enumerate(self.epochs):
            moved = 0
            if mode == "reconfigurable" and e > 0:
                moved = fabric.reconfigure(engineer_trunks(self.blocks, tm))
            results.append(
                EpochResult(
                    epoch=e,
                    admissible_scale=max_servable_scale(fabric, tm),
                    circuits_moved=moved,
                )
            )
        return results

    def compare(self) -> Dict[str, Dict[str, float]]:
        """Aggregate served fraction and churn per mode."""
        out: Dict[str, Dict[str, float]] = {}
        for mode in ("uniform", "static-engineered", "reconfigurable"):
            results = self.run_mode(mode)
            out[mode] = {
                "mean_admissible": float(
                    np.mean([r.admissible_scale for r in results])
                ),
                "worst_admissible": float(
                    min(r.admissible_scale for r in results)
                ),
                "total_moves": float(sum(r.circuits_moved for r in results)),
            }
        return out
