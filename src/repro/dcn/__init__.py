"""Spine-free datacenter networks with topology engineering (§2.1, §4.2).

- :mod:`repro.dcn.blocks` -- aggregation/spine block models across
  transceiver generations.
- :mod:`repro.dcn.clos` -- the traditional spine-full Clos fabric.
- :mod:`repro.dcn.spinefree` -- the OCS direct-connect fabric.
- :mod:`repro.dcn.traffic` -- traffic-matrix generators.
- :mod:`repro.dcn.topology_engineering` -- demand-aware trunk allocation.
- :mod:`repro.dcn.traffic_engineering` -- direct + transit routing.
- :mod:`repro.dcn.flowsim` -- max-min fair flow-level simulation (FCT).
- :mod:`repro.dcn.costmodel` -- the Fig 1 CapEx/power comparison.
"""

from repro.dcn.blocks import AggregationBlock, BlockGeneration
from repro.dcn.clos import ClosFabric
from repro.dcn.spinefree import SpineFreeFabric, uniform_mesh_trunks
from repro.dcn.traffic import TrafficMatrix, gravity_matrix, hotspot_matrix, uniform_matrix
from repro.dcn.topology_engineering import engineer_trunks
from repro.dcn.traffic_engineering import RoutingSolution, route_demand
from repro.dcn.flowsim import (
    Flow,
    FlowSimulator,
    max_min_rates,
    max_min_rates_reference,
)
from repro.dcn.costmodel import DcnCostModel
from repro.dcn.campus import CampusStudy, service_epochs
from repro.dcn.striping import (
    StripingPlan,
    blast_radius_comparison,
    packed_striping,
    round_robin_striping,
)

__all__ = [
    "AggregationBlock",
    "BlockGeneration",
    "ClosFabric",
    "SpineFreeFabric",
    "uniform_mesh_trunks",
    "TrafficMatrix",
    "uniform_matrix",
    "gravity_matrix",
    "hotspot_matrix",
    "engineer_trunks",
    "RoutingSolution",
    "route_demand",
    "Flow",
    "FlowSimulator",
    "max_min_rates",
    "max_min_rates_reference",
    "DcnCostModel",
    "CampusStudy",
    "service_epochs",
    "StripingPlan",
    "packed_striping",
    "round_robin_striping",
    "blast_radius_comparison",
]
