"""The spine-free direct-connect fabric (Fig 1b).

Aggregation-block uplinks terminate on OCSes instead of spine switches;
cross-connects stitch them into direct AB-to-AB trunks.  The trunk
allocation (how many uplinks point at each peer) is the *topology
engineering* degree of freedom: uniform for unknown traffic, demand-aware
via :mod:`repro.dcn.topology_engineering` for long-lived patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.core.errors import ConfigurationError, TopologyError
from repro.dcn.blocks import AggregationBlock

TrunkMatrix = np.ndarray  # integer trunks[i, j], symmetric, zero diagonal


def _round_robin_matchings(num_blocks: int):
    """Disjoint (near-)perfect matchings via the circle method.

    Yields ``num_blocks - 1`` rounds for even counts (perfect matchings);
    odd counts get a bye each round.
    """
    n = num_blocks if num_blocks % 2 == 0 else num_blocks + 1
    others = list(range(1, n))
    for r in range(n - 1):
        rot = others[r:] + others[:r]
        row = [0] + rot
        pairs = []
        for i in range(n // 2):
            a, b = row[i], row[n - 1 - i]
            if a < num_blocks and b < num_blocks:  # skip the bye
                pairs.append((a, b))
        yield pairs


def uniform_mesh_trunks(num_blocks: int, uplinks: int) -> TrunkMatrix:
    """Spread each block's uplinks evenly over all peers.

    The canonical demand-oblivious allocation.  Remainder trunks (when
    ``uplinks`` does not divide by ``num_blocks - 1``) are placed on
    disjoint round-robin matchings so no row exceeds its uplink budget.
    """
    if num_blocks < 2:
        raise ConfigurationError("need at least two blocks for a mesh")
    if uplinks <= 0:
        raise ConfigurationError("uplinks must be positive")
    base = uplinks // (num_blocks - 1)
    trunks = np.full((num_blocks, num_blocks), base, dtype=int)
    np.fill_diagonal(trunks, 0)
    remainder = uplinks - base * (num_blocks - 1)
    for round_index, pairs in enumerate(_round_robin_matchings(num_blocks)):
        if round_index >= remainder:
            break
        for i, j in pairs:
            trunks[i, j] += 1
            trunks[j, i] += 1
    return trunks


@dataclass
class SpineFreeFabric:
    """A direct-connect fabric over OCSes.

    ``trunks[i, j]`` counts the fiber trunks cross-connected between
    blocks i and j; each trunk carries the pair's interoperable rate.
    """

    blocks: List[AggregationBlock]
    trunks: TrunkMatrix

    def __post_init__(self) -> None:
        n = len(self.blocks)
        if n < 2:
            raise ConfigurationError("need at least two blocks")
        t = np.asarray(self.trunks)
        if t.shape != (n, n):
            raise ConfigurationError(f"trunk matrix must be {n}x{n}, got {t.shape}")
        if not np.array_equal(t, t.T):
            raise ConfigurationError("trunk matrix must be symmetric")
        if np.any(np.diag(t) != 0):
            raise ConfigurationError("no self-trunks allowed")
        if np.any(t < 0):
            raise ConfigurationError("trunk counts must be non-negative")
        for i, ab in enumerate(self.blocks):
            used = int(t[i].sum())
            if used > ab.uplinks:
                raise ConfigurationError(
                    f"{ab}: {used} trunks exceed {ab.uplinks} uplinks"
                )
        self.trunks = t

    @classmethod
    def uniform(cls, blocks: List[AggregationBlock]) -> "SpineFreeFabric":
        """The demand-oblivious uniform mesh."""
        uplinks = min(ab.uplinks for ab in blocks)
        return cls(blocks, uniform_mesh_trunks(len(blocks), uplinks))

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def capacity_gbps(self, i: int, j: int) -> float:
        """Direct capacity between blocks i and j."""
        if i == j:
            return 0.0
        self._check(i)
        self._check(j)
        rate = self.blocks[i].link_rate_gbps(self.blocks[j])
        return float(self.trunks[i, j]) * rate

    def capacity_matrix_gbps(self) -> np.ndarray:
        """Full pairwise direct-capacity matrix."""
        n = self.num_blocks
        out = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i != j and self.trunks[i, j] > 0:
                    out[i, j] = self.capacity_gbps(i, j)
        return out

    def graph(self) -> nx.Graph:
        """AB-level connectivity graph with trunk counts and capacity."""
        g = nx.Graph()
        for ab in self.blocks:
            g.add_node(f"ab-{ab.index}", kind="ab")
        n = self.num_blocks
        for i in range(n):
            for j in range(i + 1, n):
                if self.trunks[i, j] > 0:
                    g.add_edge(
                        f"ab-{i}",
                        f"ab-{j}",
                        trunks=int(self.trunks[i, j]),
                        capacity_gbps=self.capacity_gbps(i, j),
                    )
        return g

    def reconfigure(self, new_trunks: TrunkMatrix) -> int:
        """Adopt a new trunk allocation; returns circuits changed.

        The OCS layer makes this a cross-connect update, not a recable:
        the return value counts the trunk differences (each is one OCS
        circuit to move).
        """
        before = self.trunks.copy()
        self.trunks = new_trunks
        try:
            self.__post_init__()
        except ConfigurationError:
            self.trunks = before
            raise
        return int(np.abs(new_trunks - before).sum() // 2)

    # ------------------------------------------------------------------ #
    # Inventory for the cost model
    # ------------------------------------------------------------------ #

    def transceiver_count(self) -> int:
        """One module per uplink at the AB end only -- the OCS is passive."""
        return sum(ab.uplinks for ab in self.blocks)

    def ocs_count(self, ocs_radix: int = 128) -> int:
        """OCSes needed to terminate every uplink (duplex port per trunk)."""
        total_uplinks = sum(ab.uplinks for ab in self.blocks)
        return -(-total_uplinks // ocs_radix)

    def _check(self, i: int) -> None:
        if not 0 <= i < self.num_blocks:
            raise TopologyError(f"block {i} out of range [0, {self.num_blocks})")
