"""Trunk striping: mapping the trunk matrix onto physical OCSes.

A spine-free fabric's trunks are physical circuits on a fleet of OCSes.
How trunks are *striped* across the fleet decides the blast radius of a
single OCS failure (§3.2.2: OCSes have a large blast radius):

- ``packed``: fill one OCS at a time -- simple, but one failure can take
  out every trunk of some unlucky pair;
- ``striped``: round-robin each pair's trunks across the fleet -- a
  single failure shaves at most ``ceil(t/num_ocs)`` trunks off any pair.

The module builds both placements and quantifies the worst-pair capacity
loss under a single OCS failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.dcn.spinefree import TrunkMatrix

Pair = Tuple[int, int]


@dataclass(frozen=True)
class StripingPlan:
    """Placement of every trunk: {pair: [ocs index per trunk]}."""

    num_ocses: int
    placement: Dict[Pair, Tuple[int, ...]]

    def trunks_on_ocs(self, ocs: int) -> int:
        return sum(p.count(ocs) for p in self.placement.values())

    def surviving_trunks(self, pair: Pair, failed_ocs: int) -> int:
        """Trunks of ``pair`` that survive one OCS failure."""
        placed = self.placement.get(pair, ())
        return len(placed) - placed.count(failed_ocs)

    def worst_pair_loss_fraction(self) -> float:
        """Worst fractional trunk loss any pair suffers under the worst
        single OCS failure."""
        worst = 0.0
        for ocs in range(self.num_ocses):
            for pair, placed in self.placement.items():
                if not placed:
                    continue
                loss = placed.count(ocs) / len(placed)
                worst = max(worst, loss)
        return worst


def _pairs(trunks: TrunkMatrix) -> List[Tuple[Pair, int]]:
    t = np.asarray(trunks)
    n = t.shape[0]
    return [
        ((i, j), int(t[i, j]))
        for i in range(n)
        for j in range(i + 1, n)
        if t[i, j] > 0
    ]


def _check(trunks: TrunkMatrix, num_ocses: int, ocs_ports: int) -> int:
    t = np.asarray(trunks)
    if num_ocses <= 0 or ocs_ports <= 0:
        raise ConfigurationError("need positive OCS count and port budget")
    total = int(t.sum()) // 2
    if total > num_ocses * ocs_ports:
        raise ConfigurationError(
            f"{total} trunks exceed fleet capacity {num_ocses * ocs_ports}"
        )
    return total


def packed_striping(
    trunks: TrunkMatrix, num_ocses: int, ocs_ports: int = 64
) -> StripingPlan:
    """Fill OCSes sequentially (the naive placement)."""
    _check(trunks, num_ocses, ocs_ports)
    placement: Dict[Pair, Tuple[int, ...]] = {}
    ocs, used = 0, 0
    for pair, count in _pairs(trunks):
        placed = []
        for _ in range(count):
            if used >= ocs_ports:
                ocs += 1
                used = 0
            placed.append(ocs)
            used += 1
        placement[pair] = tuple(placed)
    return StripingPlan(num_ocses=num_ocses, placement=placement)


def round_robin_striping(
    trunks: TrunkMatrix, num_ocses: int, ocs_ports: int = 64
) -> StripingPlan:
    """Stripe each pair's trunks across the fleet (the production scheme).

    Trunk ``k`` of a pair lands on OCS ``(hash(pair) + k) % num_ocses``,
    subject to per-OCS port budgets (overflow spills to the next OCS with
    room).
    """
    _check(trunks, num_ocses, ocs_ports)
    load = [0] * num_ocses
    placement: Dict[Pair, Tuple[int, ...]] = {}
    for pair, count in _pairs(trunks):
        start = (pair[0] * 31 + pair[1]) % num_ocses
        placed: List[int] = []
        for k in range(count):
            ocs = (start + k) % num_ocses
            # First pass: a free OCS this pair does not use yet (keeps the
            # pair's trunks failure-disjoint); second pass: any free OCS.
            chosen = None
            for avoid_reuse in (True, False):
                for probe in range(num_ocses):
                    candidate = (ocs + probe) % num_ocses
                    if load[candidate] >= ocs_ports:
                        continue
                    if avoid_reuse and candidate in placed:
                        continue
                    chosen = candidate
                    break
                if chosen is not None:
                    break
            if chosen is None:
                raise ConfigurationError("fleet out of ports during striping")
            placed.append(chosen)
            load[chosen] += 1
        placement[pair] = tuple(placed)
    return StripingPlan(num_ocses=num_ocses, placement=placement)


def blast_radius_comparison(
    trunks: TrunkMatrix, num_ocses: int, ocs_ports: int = 64
) -> Dict[str, float]:
    """Worst-pair loss fraction under one OCS failure, per scheme."""
    return {
        "packed": packed_striping(trunks, num_ocses, ocs_ports).worst_pair_loss_fraction(),
        "striped": round_robin_striping(
            trunks, num_ocses, ocs_ports
        ).worst_pair_loss_fraction(),
    }
