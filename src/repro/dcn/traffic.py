"""Traffic-matrix generators for DCN evaluation.

Three families cover the evaluation space:

- :func:`uniform_matrix` -- the all-pairs-equal pattern a Clos is built
  for (topology engineering cannot beat uniform here).
- :func:`gravity_matrix` -- long-lived skew: block demand proportional to
  the product of endpoint "masses" (§2.1's long-lived traffic demand
  between particular sets of ABs).
- :func:`hotspot_matrix` -- a few elephant pairs over a mouse floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class TrafficMatrix:
    """Demand between aggregation blocks, Gb/s; zero diagonal."""

    demand_gbps: np.ndarray

    def __post_init__(self) -> None:
        d = np.asarray(self.demand_gbps, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ConfigurationError(f"demand must be square, got {d.shape}")
        if np.any(d < 0):
            raise ConfigurationError("demand must be non-negative")
        if np.any(np.diag(d) != 0):
            raise ConfigurationError("self-demand must be zero")
        object.__setattr__(self, "demand_gbps", d)

    @property
    def num_blocks(self) -> int:
        return self.demand_gbps.shape[0]

    @property
    def total_gbps(self) -> float:
        return float(self.demand_gbps.sum())

    def scaled_to(self, total_gbps: float) -> "TrafficMatrix":
        """Rescale so the aggregate demand equals ``total_gbps``."""
        if total_gbps <= 0:
            raise ConfigurationError("target total must be positive")
        if self.total_gbps == 0:
            raise ConfigurationError("cannot scale an all-zero matrix")
        return TrafficMatrix(self.demand_gbps * (total_gbps / self.total_gbps))

    def skew(self) -> float:
        """Max over mean of nonzero entries: 1.0 for uniform, large for
        hotspot-dominated matrices."""
        nz = self.demand_gbps[self.demand_gbps > 0]
        if nz.size == 0:
            return 1.0
        return float(nz.max() / nz.mean())


def uniform_matrix(num_blocks: int, pair_gbps: float = 100.0) -> TrafficMatrix:
    """Equal demand between every ordered pair."""
    if num_blocks < 2:
        raise ConfigurationError("need at least two blocks")
    if pair_gbps < 0:
        raise ConfigurationError("demand must be non-negative")
    d = np.full((num_blocks, num_blocks), pair_gbps, dtype=float)
    np.fill_diagonal(d, 0.0)
    return TrafficMatrix(d)


def gravity_matrix(
    num_blocks: int,
    total_gbps: float,
    concentration: float = 1.0,
    seed: int = 0,
) -> TrafficMatrix:
    """Gravity model: D[i,j] proportional to mass_i * mass_j.

    Masses are log-normal; ``concentration`` is the log-sigma (0 yields
    uniform, ~1 realistic datacenter skew, 2+ heavy concentration).
    """
    if num_blocks < 2:
        raise ConfigurationError("need at least two blocks")
    if concentration < 0:
        raise ConfigurationError("concentration must be non-negative")
    rng = np.random.default_rng(seed)
    mass = rng.lognormal(0.0, concentration, num_blocks)
    d = np.outer(mass, mass).astype(float)
    np.fill_diagonal(d, 0.0)
    return TrafficMatrix(d).scaled_to(total_gbps)


def hotspot_matrix(
    num_blocks: int,
    total_gbps: float,
    num_hotspots: int = 3,
    hotspot_fraction: float = 0.7,
    seed: int = 0,
) -> TrafficMatrix:
    """A few elephant pairs carry ``hotspot_fraction`` of all demand."""
    if num_blocks < 2:
        raise ConfigurationError("need at least two blocks")
    if not 0 <= hotspot_fraction <= 1:
        raise ConfigurationError("hotspot fraction must be in [0, 1]")
    max_pairs = num_blocks * (num_blocks - 1) // 2
    if not 0 < num_hotspots <= max_pairs:
        raise ConfigurationError(f"hotspot count must be in [1, {max_pairs}]")
    rng = np.random.default_rng(seed)
    d = np.ones((num_blocks, num_blocks), dtype=float)
    np.fill_diagonal(d, 0.0)
    d *= total_gbps * (1 - hotspot_fraction) / d.sum()
    pairs = [(i, j) for i in range(num_blocks) for j in range(i + 1, num_blocks)]
    idx = rng.choice(len(pairs), size=num_hotspots, replace=False)
    per_hotspot = total_gbps * hotspot_fraction / (2 * num_hotspots)
    for k in idx:
        i, j = pairs[k]
        d[i, j] += per_hotspot
        d[j, i] += per_hotspot
    return TrafficMatrix(d)
